"""E9 — batch serving throughput: 1 worker vs N over random blocks.

The ROADMAP's production-scale direction needs the batch service
(:mod:`repro.service`) to actually buy wall time from parallelism: this
bench times one batch of seeded random instances through the executor at
1 worker (in-process) and at N workers (process pool) and asserts the
pool run is faster wherever more than one CPU exists (single-core hosts
record both timings but cannot enforce a speedup).  It also
regression-checks the cache: replaying the same batch must be served
entirely from cache, far faster than solving.
"""

import os
import time
from functools import lru_cache

import pytest

from repro.analysis import format_table
from repro.core import AllocationProblem
from repro.service import BatchExecutor, ResultCache
from repro.workloads.random_blocks import random_lifetimes, spawn_rng

JOBS = 48
VARIABLES = 60
HORIZON = 24
WORKERS = min(4, os.cpu_count() or 1)
MULTICORE = WORKERS > 1


@lru_cache(maxsize=None)
def batch_problems() -> tuple[AllocationProblem, ...]:
    problems = []
    for case in range(JOBS):
        rng = spawn_rng(17, "throughput", case)
        lifetimes = random_lifetimes(rng, VARIABLES, HORIZON)
        problems.append(AllocationProblem(lifetimes, 6, HORIZON))
    return tuple(problems)


def run_batch(workers: int, cache: ResultCache | None):
    executor = BatchExecutor(
        workers=workers, cache=cache, chunksize=max(1, JOBS // (workers * 4))
    )
    start = time.perf_counter()
    results = executor.map_blocks(list(batch_problems()))
    return results, time.perf_counter() - start


@lru_cache(maxsize=None)
def timings():
    serial, t_serial = run_batch(1, None)
    pooled, t_pool = run_batch(WORKERS, None) if MULTICORE else (serial, None)
    cache = ResultCache()
    BatchExecutor(workers=1, cache=cache).map_blocks(list(batch_problems()))
    cached, t_cached = run_batch(1, cache)
    return {
        "serial": (serial, t_serial),
        "pool": (pooled, t_pool),
        "cached": (cached, t_cached),
    }


def test_multi_worker_beats_serial(show, bench_report):
    with bench_report(
        "batch_throughput",
        jobs=JOBS,
        variables=VARIABLES,
        horizon=HORIZON,
        workers=WORKERS,
        cpus=os.cpu_count(),
    ):
        runs = timings()
    serial, t_serial = runs["serial"]
    pooled, t_pool = runs["pool"]
    cached, t_cached = runs["cached"]
    rows = [("serial (1 worker)", 1, round(t_serial, 4))]
    if t_pool is not None:
        rows.append((f"pool ({WORKERS} workers)", WORKERS, round(t_pool, 4)))
    rows.append(("cache replay", 1, round(t_cached, 4)))
    show(
        format_table(
            ("configuration", "workers", "seconds"),
            rows,
            title=f"Batch throughput ({JOBS} random instances, "
            f"{os.cpu_count()} CPUs)",
        )
    )
    # Every configuration solves the whole batch, identically.
    assert all(r.ok for r in serial + pooled + cached)
    assert [r.objective for r in serial] == [r.objective for r in pooled]
    assert [r.objective for r in serial] == [r.objective for r in cached]
    # The cache replay skips solving entirely.
    assert all(r.cached for r in cached)
    assert t_cached < t_serial
    if not MULTICORE:
        pytest.skip("single-CPU host: cannot demonstrate a pool speedup")
    # Parallelism must buy wall time on a CPU-bound batch.
    assert t_pool < t_serial, (
        f"{WORKERS} workers ({t_pool:.3f}s) not faster than serial "
        f"({t_serial:.3f}s)"
    )


@pytest.mark.benchmark(group="batch-throughput")
@pytest.mark.parametrize(
    "workers", sorted({1, WORKERS})
)
def test_batch_wall_time(benchmark, workers):
    results = benchmark.pedantic(
        lambda: run_batch(workers, None)[0], rounds=2, iterations=1
    )
    assert all(r.ok for r in results)
