"""Shared helpers for the benchmark suite.

Each ``test_bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md's experiment index).  Benchmarks both *time* the relevant
computation (pytest-benchmark) and *assert the reproduced shape* of the
paper's claim; the regenerated tables are printed so that
``pytest benchmarks/ --benchmark-only -s`` shows them, and EXPERIMENTS.md
records the measured numbers.

Any bench can additionally opt into emitting a ``repro.obs`` run report —
the same ``repro.obs/run-report/v1`` schema ``repro-alloc profile``
produces — by wrapping its measured computation in the ``bench_report``
fixture.  When ``REPRO_BENCH_REPORT_DIR`` is set, the captured trace is
written to ``$REPRO_BENCH_REPORT_DIR/BENCH_<name>.json``, seeding the
perf-trajectory files future PRs regress against::

    REPRO_BENCH_REPORT_DIR=. pytest benchmarks/test_bench_solver_scaling.py
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

import pytest


@pytest.fixture
def show(capsys):
    """Print through pytest's capture so -s reveals regenerated tables."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show


@pytest.fixture
def bench_report():
    """Opt-in run-report capture: ``with bench_report(name, **params): ...``.

    Collects an observability trace (spans + solver counters) around the
    ``with`` body and, when ``REPRO_BENCH_REPORT_DIR`` is set, writes it as
    ``BENCH_<name>.json`` in the run-report schema of
    :mod:`repro.obs.profile`.  Without the environment variable the trace
    is still collected (so counters stay exercised) but nothing is written.
    """
    from repro.obs import trace as obs
    from repro.obs.profile import build_report

    @contextmanager
    def _capture(name: str, **params):
        start = time.perf_counter()
        with obs.collect() as trace:
            yield trace
        wall = time.perf_counter() - start
        out_dir = os.environ.get("REPRO_BENCH_REPORT_DIR")
        if not out_dir:
            return
        report = build_report(
            workload=name, trace=trace, params=params, wall_time_s=wall
        )
        path = Path(out_dir) / f"BENCH_{name}.json"
        path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    return _capture
