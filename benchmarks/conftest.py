"""Shared helpers for the benchmark suite.

Each ``test_bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md's experiment index).  Benchmarks both *time* the relevant
computation (pytest-benchmark) and *assert the reproduced shape* of the
paper's claim; the regenerated tables are printed so that
``pytest benchmarks/ --benchmark-only -s`` shows them, and EXPERIMENTS.md
records the measured numbers.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print through pytest's capture so -s reveals regenerated tables."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show
