"""E6 — graph ablation: the paper's adjacent-region graph vs the
all-non-overlapping graph of [8].

Section 6 of the paper: with the [8]-style graph "we have no guarantee of
using a minimum number of storage locations, unlike the use of the graph
presented in this paper".  This bench sweeps seeded random instances and
measures storage locations (registers used + memory addresses) under both
graph styles at identical energy models.
"""

import random
from functools import lru_cache

import pytest

from repro.analysis import format_table
from repro.core import AllocationProblem, allocate
from repro.core.options import SolveOptions
from repro.energy import ActivityEnergyModel, StaticEnergyModel
from repro.lifetimes import max_density
from repro.workloads.random_blocks import random_lifetimes

HORIZON = 12
SEEDS = range(40)


@lru_cache(maxsize=None)
def sweep():
    rows = []
    for seed in SEEDS:
        rng = random.Random(seed)
        lifetimes = random_lifetimes(rng, count=14, horizon=HORIZON)
        density = max_density(lifetimes.values(), HORIZON)
        registers = max(1, density // 3)
        for model in (StaticEnergyModel(), ActivityEnergyModel()):
            adjacent = allocate(
                AllocationProblem(
                    lifetimes, registers, HORIZON, energy_model=model
                )
            )
            all_pairs = allocate(
                AllocationProblem(
                    lifetimes,
                    registers,
                    HORIZON,
                    energy_model=model,
                    graph_style="all_pairs",
                )
            )
            rows.append((seed, density, adjacent, all_pairs))
    return rows


def test_adjacent_graph_never_uses_more_locations(show):
    rows = sweep()
    worse = [
        (seed, a.storage_locations, b.storage_locations)
        for seed, _, a, b in rows
        if a.storage_locations > b.storage_locations
    ]
    assert worse == []

    at_minimum = sum(
        1 for _, density, a, _ in rows if a.storage_locations == density
    )
    extra_all_pairs = sum(
        1
        for _, _, a, b in rows
        if b.storage_locations > a.storage_locations
    )
    # The paper graph achieves the density bound almost always; the
    # [8]-style graph demonstrably exceeds it on some instances.
    assert at_minimum >= int(0.9 * len(rows))
    assert extra_all_pairs >= 1
    show(
        f"Graph ablation over {len(rows)} instances: adjacent graph at "
        f"the minimum-location bound in {at_minimum}/{len(rows)}; "
        f"all-pairs graph used extra locations {extra_all_pairs} times, "
        "and never fewer than the adjacent graph."
    )


def test_all_pairs_energy_no_worse(show):
    # The flip side of the trade-off: all-pairs is a relaxation, so its
    # energy optimum can only match or beat the adjacent graph.
    rows = sweep()
    for _, _, adjacent, all_pairs in rows:
        assert all_pairs.objective <= adjacent.objective + 1e-9
    gaps = [
        adjacent.objective - all_pairs.objective
        for _, _, adjacent, all_pairs in rows
    ]
    show(
        "Energy gap (adjacent - all_pairs): max "
        f"{max(gaps):.3f}, mean {sum(gaps) / len(gaps):.3f} — the "
        "min-location guarantee costs almost nothing in energy."
    )


@pytest.mark.benchmark(group="graph-ablation")
@pytest.mark.parametrize("style", ["adjacent", "all_pairs"])
def test_construction_and_solve_time(benchmark, style):
    rng = random.Random(7)
    lifetimes = random_lifetimes(rng, count=40, horizon=25)
    problem = AllocationProblem(
        lifetimes, 6, 25, energy_model=StaticEnergyModel(),
        graph_style=style,
    )
    allocation = benchmark.pedantic(
        lambda: allocate(problem.with_options(), SolveOptions(validate=False)),
        rounds=3,
        iterations=1,
    )
    assert allocation.registers_used <= 6
