"""E7 — ablation: the second-pass memory reallocation flow.

The paper's methodology reallocates the memory-resident lifetimes with an
activity-based model after the main pass.  This bench measures memory
data-line switching before (first-pass left-edge addresses) and after the
reallocation flow across seeded instances.
"""

import random
from functools import lru_cache

import pytest

from repro.analysis import format_table, memory_location_switching
from repro.core import AllocationProblem, allocate, reallocate_memory
from repro.energy import ActivityEnergyModel
from repro.workloads.random_blocks import random_lifetimes

HORIZON = 14
SEEDS = range(25)


def left_edge_switching(allocation, model) -> float:
    by_address: dict[int, list] = {}
    for name, address in allocation.memory_addresses.items():
        by_address.setdefault(address, []).append(
            allocation.problem.lifetimes[name]
        )
    chains = [
        sorted(chain, key=lambda lt: lt.start)
        for chain in by_address.values()
    ]
    return memory_location_switching(chains, model)


@lru_cache(maxsize=None)
def sweep():
    model = ActivityEnergyModel()
    rows = []
    for seed in SEEDS:
        rng = random.Random(seed)
        lifetimes = random_lifetimes(
            rng, count=16, horizon=HORIZON, traced=True
        )
        allocation = allocate(
            AllocationProblem(
                lifetimes, 2, HORIZON, energy_model=model
            )
        )
        if not allocation.memory_addresses:
            continue
        layout = reallocate_memory(allocation, model)
        rows.append(
            (
                seed,
                left_edge_switching(allocation, model),
                layout.switching_energy,
                allocation.address_count,
                layout.address_count,
            )
        )
    return rows


def test_realloc_never_increases_switching(show):
    rows = sweep()
    assert rows, "sweep produced no memory-resident instances"
    for seed, before, after, _, _ in rows:
        assert after <= before + 1e-9, f"seed {seed}"
    improved = sum(1 for _, before, after, _, _ in rows if after < before - 1e-9)
    total_before = sum(before for _, before, _, _, _ in rows)
    total_after = sum(after for _, _, after, _, _ in rows)
    show(
        f"Memory reallocation over {len(rows)} instances: switching "
        f"{total_before:.2f} -> {total_after:.2f} "
        f"({total_before / total_after:.2f}x lower), strictly improved on "
        f"{improved} instances."
    )
    assert improved >= 1


def test_realloc_keeps_minimum_addresses():
    for _, _, _, before_addrs, after_addrs in sweep():
        assert after_addrs == before_addrs


@pytest.mark.benchmark(group="memory-realloc")
def test_realloc_time(benchmark):
    model = ActivityEnergyModel()
    rng = random.Random(123)
    lifetimes = random_lifetimes(rng, count=30, horizon=20, traced=True)
    allocation = allocate(
        AllocationProblem(lifetimes, 3, 20, energy_model=model)
    )
    layout = benchmark.pedantic(
        lambda: reallocate_memory(allocation, model), rounds=3, iterations=1
    )
    assert layout.address_count == allocation.address_count
