"""E11 — offset assignment (the paper's closing extension).

"This approach has recently been extended to solve the multiple offset
assignment problem in software synthesis for DSP processors where
performance, code size and power objective functions are supported."

This bench runs the SOA/MOA subsystem over the RSP allocation's real
memory access sequence and seeded random sequences: address-register
update counts for the naive layout vs Liao's heuristic vs (where
tractable) the exact optimum, and the effect of adding address registers.
"""

import random
from functools import lru_cache

import pytest

from repro.analysis import format_table
from repro.core import AllocationProblem, allocate
from repro.energy import ActivityEnergyModel
from repro.moa import (
    CostWeights,
    access_sequence,
    moa_assign,
    sequence_cost,
    soa_liao,
    soa_naive,
)
from repro.workloads.rsp import rsp_schedule

UPDATES = CostWeights(cycles=1.0, words=0.0, energy=0.0)  # count updates


@lru_cache(maxsize=None)
def rsp_sequence() -> tuple[str, ...]:
    schedule = rsp_schedule(rng=random.Random(2024))
    problem = AllocationProblem.from_schedule(
        schedule, register_count=16, energy_model=ActivityEnergyModel()
    )
    return tuple(access_sequence(allocate(problem)))


def test_soa_on_rsp_access_sequence(show):
    sequence = list(rsp_sequence())
    assert sequence, "RSP leaves no memory traffic?"
    naive = sequence_cost(sequence, soa_naive(sequence), UPDATES)
    liao = sequence_cost(sequence, soa_liao(sequence), UPDATES)
    assert liao <= naive
    show(
        f"E11 — RSP access sequence ({len(sequence)} accesses): "
        f"AR updates naive {naive:.0f} -> Liao {liao:.0f}"
    )


def test_moa_adds_registers_monotonically(show):
    sequence = list(rsp_sequence())
    costs = [moa_assign(sequence, k, UPDATES).cost for k in (1, 2, 4)]
    assert costs[1] <= costs[0] + 1e-9
    assert costs[2] <= costs[1] + 1e-9
    show(
        "E11 — MOA on the RSP sequence: AR updates with 1/2/4 address "
        f"registers: {costs[0]:.0f} / {costs[1]:.0f} / {costs[2]:.0f}"
    )


def test_random_sequences_improvement(show):
    rng = random.Random(42)
    rows = []
    for size, length in ((5, 30), (8, 50), (12, 80)):
        variables = [f"v{i}" for i in range(size)]
        sequence = [rng.choice(variables) for _ in range(length)]
        naive = sequence_cost(sequence, soa_naive(sequence), UPDATES)
        liao = sequence_cost(sequence, soa_liao(sequence), UPDATES)
        two_ars = moa_assign(sequence, 2, UPDATES).cost
        assert liao <= naive
        assert two_ars <= liao + 1e-9
        rows.append((f"{size} vars / {length} accesses", naive, liao,
                     two_ars))
    show(
        format_table(
            ("sequence", "naive updates", "Liao SOA", "MOA k=2"),
            rows,
            title="E11 — offset assignment on random access sequences",
        )
    )


@pytest.mark.benchmark(group="offset-assignment")
def test_soa_time(benchmark):
    sequence = list(rsp_sequence())
    offsets = benchmark(lambda: soa_liao(sequence))
    assert len(offsets) == len(set(sequence))


@pytest.mark.benchmark(group="offset-assignment")
def test_moa_time(benchmark):
    sequence = list(rsp_sequence())
    result = benchmark.pedantic(
        lambda: moa_assign(sequence, 2, UPDATES), rounds=3, iterations=1
    )
    assert result.cost >= 0
