"""E5 — the headline claim: 1.4-2.5x improvement over previous research.

Sweeps DSP kernels and seeded random blocks across register counts,
comparing the simultaneous flow allocator against the two-phase prior-art
baseline (the paper's "previous research") under the activity model, and
reports the distribution of improvement factors.
"""

import random
import statistics
from functools import lru_cache

import pytest

from repro.analysis import compare_allocators, format_table
from repro.energy import ActivityEnergyModel
from repro.lifetimes import extract_lifetimes
from repro.scheduling import list_schedule
from repro.workloads import (
    dct4,
    diffeq,
    elliptic_wave_filter,
    fft_butterfly,
    fir_filter,
    iir_biquad,
    lattice_filter,
    matmul2,
    random_dfg,
)

REGISTER_FRACTIONS = (0.25, 0.5)


@lru_cache(maxsize=None)
def workload_instances():
    rng = random.Random(1997)
    blocks = [
        fir_filter(8, rng),
        fir_filter(12, rng),
        iir_biquad(2, rng),
        elliptic_wave_filter(rng),
        dct4(rng),
        diffeq(rng),
        fft_butterfly(2, rng),
        lattice_filter(3, rng),
        matmul2(rng),
        random_dfg(rng, operations=30, traced=True),
        random_dfg(rng, operations=45, traced=True),
        random_dfg(rng, operations=60, traced=True),
    ]
    instances = []
    for block in blocks:
        schedule = list_schedule(block)
        lifetimes = extract_lifetimes(schedule)
        instances.append((block.name, lifetimes, schedule.length))
    return instances


@lru_cache(maxsize=None)
def sweep():
    model = ActivityEnergyModel()
    results = []
    for name, lifetimes, horizon in workload_instances():
        from repro.lifetimes import max_density

        density = max_density(lifetimes.values(), horizon)
        for fraction in REGISTER_FRACTIONS:
            registers = max(1, int(density * fraction))
            comparison = compare_allocators(
                lifetimes, horizon, registers, model,
                baselines=("two-phase", "left-edge", "graph-coloring"),
            )
            results.append((name, registers, comparison))
    return results


def test_improvement_range(show):
    factors = [
        comparison.improvement_over("two-phase")
        for _, _, comparison in sweep()
    ]
    low, median, high = (
        min(factors),
        statistics.median(factors),
        max(factors),
    )
    # The flow must never lose to two-phase, and a meaningful share of the
    # sweep should land in the paper's 1.4-2.5x band.
    assert low >= 1.0 - 1e-9
    assert high >= 1.4
    in_band = sum(1 for f in factors if 1.3 <= f <= 3.0)
    assert in_band >= len(factors) // 4
    rows = [
        (name, registers,
         comparison.improvement_over("two-phase"),
         comparison.improvement_over("left-edge"),
         comparison.improvement_over("graph-coloring"))
        for name, registers, comparison in sweep()
    ]
    show(
        format_table(
            ("workload", "R", "vs two-phase", "vs left-edge",
             "vs coloring"),
            rows,
            title=(
                "Improvement sweep (activity model) — "
                f"min {low:.2f}x, median {median:.2f}x, max {high:.2f}x "
                "(paper: 1.4-2.5x vs previous research)"
            ),
        )
    )


def test_flow_dominates_energy_oblivious_baselines():
    for _, _, comparison in sweep():
        # left-edge / colouring share the flow's access-count freedom, so
        # only activity-optimality separates them; the flow never loses.
        assert comparison.flow.energy <= (
            comparison.baselines["left-edge"].energy + 1e-9
        )
        assert comparison.flow.energy <= (
            comparison.baselines["graph-coloring"].energy + 1e-9
        )


@pytest.mark.benchmark(group="improvement-sweep")
def test_sweep_single_instance_time(benchmark):
    model = ActivityEnergyModel()
    name, lifetimes, horizon = workload_instances()[3]  # EWF
    result = benchmark.pedantic(
        lambda: compare_allocators(
            lifetimes, horizon, 6, model, baselines=("two-phase",)
        ),
        rounds=3,
        iterations=1,
    )
    assert result.flow.energy > 0
