"""E4 — table 1: the RSP application under restricted memory access.

Sweeps the memory operating point over frequency divisors 1, 2 and 4 with
the supply scaled per the CMOS delay model (5 V down to ~2.2 V) — the
paper's treatment — and reports memory/register accesses and energy
relative to the slowest configuration, for both energy models.

Paper's rows (relative to f/4): static E 4.9 / 2 / 1, activity aE
2.8 / 1.6 / 1.  Our synthetic RSP kernel reproduces the activity shape
closely (~2.8 / ~1.5 / 1) and the static ordering; the memory-component
energy alone reproduces the static column's magnitude (the paper's
register file sees far fewer accesses than ours, see EXPERIMENTS.md).
"""

import random
from functools import lru_cache

import pytest

from repro.analysis import format_table
from repro.core import AllocationProblem, allocate
from repro.core.options import SolveOptions
from repro.energy import ActivityEnergyModel, MemoryConfig, StaticEnergyModel
from repro.energy.voltage import max_divisor_supply
from repro.workloads.rsp import rsp_schedule

REGISTERS = 16  # the paper's 16x16 register file
DIVISORS = (1, 2, 4)


@lru_cache(maxsize=None)
def schedule():
    return rsp_schedule(rng=random.Random(2024))


@lru_cache(maxsize=None)
def sweep(model_kind: str):
    rows = []
    for divisor in DIVISORS:
        voltage = round(max_divisor_supply(divisor), 2)
        base_model = (
            StaticEnergyModel()
            if model_kind == "static"
            else ActivityEnergyModel()
        )
        problem = AllocationProblem.from_schedule(
            schedule(),
            register_count=REGISTERS,
            energy_model=base_model.with_voltages(voltage, 5.0),
            memory=MemoryConfig(divisor=divisor, voltage=voltage),
        )
        allocation = allocate(problem)
        rows.append((divisor, voltage, allocation))
    return rows


def relative(rows, component="total"):
    def energy(allocation):
        if component == "memory":
            return allocation.report.mem_energy
        return allocation.objective

    base = energy(rows[-1][2])
    return [energy(allocation) / base for _, _, allocation in rows]


@pytest.mark.benchmark(group="table1")
@pytest.mark.parametrize("divisor", DIVISORS)
def test_table1_solve_time(benchmark, divisor):
    voltage = round(max_divisor_supply(divisor), 2)
    problem = AllocationProblem.from_schedule(
        schedule(),
        register_count=REGISTERS,
        energy_model=ActivityEnergyModel().with_voltages(voltage, 5.0),
        memory=MemoryConfig(divisor=divisor, voltage=voltage),
    )
    allocation = benchmark.pedantic(
        lambda: allocate(problem, SolveOptions(validate=False)),
        rounds=3,
        iterations=1,
    )
    assert allocation.report.mem_accesses > 0


def test_table1_activity_shape(show):
    rows = sweep("activity")
    rel = relative(rows)
    # Paper aE column: 2.8 / 1.6 / 1.
    assert rel[2] == pytest.approx(1.0)
    assert 2.2 <= rel[0] <= 3.4
    assert 1.2 <= rel[1] <= 2.0
    show(
        format_table(
            ("memory freq", "supply V", "mem acc", "reg acc",
             "relative aE", "paper aE"),
            [
                (f"f/{d}", v, a.report.mem_accesses,
                 a.report.reg_accesses, rel[i], paper)
                for i, ((d, v, a), paper) in enumerate(
                    zip(rows, (2.8, 1.6, 1.0))
                )
            ],
            title="Table 1 — RSP application, activity model",
        )
    )


def test_table1_static_shape(show):
    rows = sweep("static")
    rel_total = relative(rows)
    rel_memory = relative(rows, component="memory")
    # Ordering must match the paper; the memory component reproduces the
    # 4.9x magnitude (our register file handles far more traffic, which
    # dilutes the total-energy ratio).
    assert rel_total[0] > rel_total[1] > rel_total[2] == pytest.approx(1.0)
    assert 3.5 <= rel_memory[0] <= 6.5
    show(
        format_table(
            ("memory freq", "supply V", "mem acc", "reg acc",
             "relative E", "relative E (mem only)", "paper E"),
            [
                (f"f/{d}", v, a.report.mem_accesses,
                 a.report.reg_accesses, rel_total[i], rel_memory[i], paper)
                for i, ((d, v, a), paper) in enumerate(
                    zip(rows, (4.9, 2.0, 1.0))
                )
            ],
            title="Table 1 — RSP application, static model",
        )
    )


def test_table1_density_matches_paper():
    from repro.lifetimes import extract_lifetimes, max_density

    lifetimes = extract_lifetimes(schedule())
    assert max_density(lifetimes.values(), schedule().length) == 26


def test_table1_forced_registers_grow_with_divisor():
    rows = sweep("activity")
    reg_accesses = [a.report.reg_accesses for _, _, a in rows]
    # Restricting access times forces more values through the register
    # file (the mechanism behind the paper's falling register column is
    # its tiny register file; ours absorbs the forced traffic).
    assert reg_accesses[0] <= reg_accesses[-1]
