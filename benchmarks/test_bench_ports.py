"""E9 — port requirements of the table-1 solutions (paper section 6/7).

"The memory module required one read/write port for solutions in rows 1
and 2, and required two read ports, one write port for the solution in
the last row of table 1": restricting access times clusters the surviving
memory traffic onto the few access steps, so slower memory needs *more*
ports.  This bench derives port requirements from our table-1 solutions
and checks that read-port demand grows with the frequency divisor, plus
exercises the section-7 port-constraint hook (pinning arc flows to 1).
"""

import random
from functools import lru_cache

import pytest

from repro.analysis import format_table
from repro.analysis.ports import required_ports
from repro.core import AllocationProblem, allocate
from repro.core.ports import allocate_with_port_limit
from repro.energy import ActivityEnergyModel, MemoryConfig
from repro.energy.voltage import max_divisor_supply
from repro.workloads.rsp import rsp_schedule

REGISTERS = 16
DIVISORS = (1, 2, 4)


@lru_cache(maxsize=None)
def solutions():
    schedule = rsp_schedule(rng=random.Random(2024))
    rows = []
    for divisor in DIVISORS:
        voltage = round(max_divisor_supply(divisor), 2)
        problem = AllocationProblem.from_schedule(
            schedule,
            register_count=REGISTERS,
            energy_model=ActivityEnergyModel().with_voltages(voltage, 5.0),
            memory=MemoryConfig(divisor=divisor, voltage=voltage),
        )
        rows.append((divisor, allocate(problem)))
    return rows


def test_read_ports_grow_with_divisor(show):
    rows = [
        (divisor, required_ports(allocation))
        for divisor, allocation in solutions()
    ]
    reads = [req.mem_read_ports for _, req in rows]
    # Paper: 1 R/W port at f and f/2, two read ports at f/4.
    assert reads[-1] > reads[0]
    show(
        format_table(
            ("memory freq", "mem ports", "paper"),
            [
                (f"f/{divisor}", req.describe_memory(), paper)
                for (divisor, req), paper in zip(
                    rows, ("1R/W", "1R/W", "2R + 1W")
                )
            ],
            title="E9 — memory port demand under restricted access "
            "(read ports grow as memory slows, as in the paper; our "
            "write column peaks at the step-1 frame-load burst)",
        )
    )


@pytest.mark.benchmark(group="ports")
def test_port_requirement_analysis_time(benchmark):
    _, allocation = solutions()[0]
    req = benchmark(lambda: required_ports(allocation))
    assert req.mem_rw_ports >= 1


def test_port_constraint_hook_on_rsp(show):
    schedule = rsp_schedule(rng=random.Random(2024))
    problem = AllocationProblem.from_schedule(
        schedule,
        register_count=REGISTERS,
        energy_model=ActivityEnergyModel(),
    )
    free = allocate(problem)
    free_ports = required_ports(free).mem_rw_ports
    result = allocate_with_port_limit(problem, max_mem_ports=free_ports)
    assert result.rounds == 1  # already legal at its own requirement
    show(
        f"E9 — section-7 constraint hook: RSP needs {free_ports} shared "
        f"memory ports unconstrained; re-solving at that budget is a "
        "no-op (1 round, no pins)."
    )
