"""E8 — solver scaling: "extending this problem to very large basic
blocks ... should be a viable future research direction" (section 7).

The paper argues viability from the polynomial complexity of network flow;
this bench measures wall time of construction + solve as the block grows
and checks the growth is polynomial (doubling the size must not blow up
the time super-polynomially).

Since the struct-of-arrays kernel landed the bench also carries two
regression gates (see DESIGN.md "Performance model" and EXPERIMENTS.md):

* ``bench.speedup_vs_seed`` — cumulative ``solver.build_network`` +
  ``solver.flow_solve`` span time across ``SIZES``, divided into the same
  stages measured on the seed's per-arc object kernel
  (``SEED_STAGE_SECONDS``).  Must clear ``REPRO_BENCH_MIN_SPEEDUP``
  (default 10).
* ``bench.sweep_*`` — a voltage sweep solved as one cold solve plus N-1
  ``recost_network`` + warm-started incremental re-solves must beat the
  same sweep as N independent cold solves.

Both gauges land in the committed ``BENCH_solver_scaling.json`` when
``REPRO_BENCH_REPORT_DIR`` is set; the sweep's solver spans are nested
under a ``bench.warm_sweep`` span so the top-level ``solver.*`` stage
totals stay directly comparable with the seed report.
"""

import os
import random
import time
from functools import lru_cache

import pytest

from repro.analysis import format_table
from repro.core import AllocationProblem, allocate
from repro.core.network_builder import build_network, recost_network
from repro.core.options import SolveOptions
from repro.core.solver import solve_built
from repro.energy import MemoryConfig, StaticEnergyModel
from repro.flow.warm_start import WarmStartCache
from repro.obs import trace as obs
from repro.workloads.random_blocks import random_lifetimes

SIZES = (50, 100, 200, 400, 800)

# Validation is measured elsewhere; the bench times the solver alone.
FAST = SolveOptions(validate=False)

# Cumulative span seconds over SIZES measured on the seed's per-arc object
# kernel (commit ad392ad's BENCH_solver_scaling.json).  The committed JSON
# is regenerated from the current kernel; these constants pin the baseline
# the speedup gate compares against.
SEED_STAGE_SECONDS = {
    "solver.build_network": 1.868,
    "solver.flow_solve": 4.215,
}

# A fine-grained DVFS ladder: incremental re-solve work is proportional
# to how far each cost perturbation moves the optimum, so the warm path
# wins when consecutive operating points are close (0.5 V steps) and
# loses that edge on coarse jumps like 3.3 V -> 1.2 V — see the
# crossover discussion in EXPERIMENTS.md E8.
SWEEP_SIZE = 400
SWEEP_VOLTAGES = (5.0, 4.5, 4.0, 3.5, 3.0)


@lru_cache(maxsize=None)
def timings():
    rows = []
    for size in SIZES:
        rng = random.Random(size)
        horizon = max(10, size // 4)
        lifetimes = random_lifetimes(rng, count=size, horizon=horizon)
        registers = max(2, size // 20)
        problem = AllocationProblem(
            lifetimes, registers, horizon, energy_model=StaticEnergyModel()
        )
        start = time.perf_counter()
        allocation = allocate(problem, FAST)
        elapsed = time.perf_counter() - start
        built_arcs = allocation.flow.network.num_arcs
        rows.append((size, registers, built_arcs, elapsed))
    return rows


def _stage_totals(trace) -> dict[str, float]:
    """Sum root-span durations by name (children are not double-counted)."""
    totals: dict[str, float] = {}
    for root in trace.roots:
        totals[root.name] = totals.get(root.name, 0.0) + root.duration
    return totals


def _sweep_problems():
    rng = random.Random(SWEEP_SIZE)
    horizon = max(10, SWEEP_SIZE // 4)
    lifetimes = random_lifetimes(rng, count=SWEEP_SIZE, horizon=horizon)
    registers = max(2, SWEEP_SIZE // 20)
    model = StaticEnergyModel()
    return [
        AllocationProblem(
            lifetimes,
            registers,
            horizon,
            energy_model=model.with_voltages(voltage, 5.0),
            memory=MemoryConfig(voltage=voltage),
        )
        for voltage in SWEEP_VOLTAGES
    ]


@lru_cache(maxsize=None)
def sweep_timings():
    """Time the voltage sweep warm (1 cold + N-1 deltas) and cold (N solves).

    Returns ``(warm_s, cold_s, warm_energies, cold_energies)``.
    """
    problems = _sweep_problems()

    start = time.perf_counter()
    cache = WarmStartCache()
    built = build_network(problems[0])
    warm_energies = [solve_built(built, FAST.replace(warm_cache=cache)).objective]
    for problem in problems[1:]:
        built = recost_network(built, problem)
        warm_energies.append(
            solve_built(built, FAST.replace(warm_cache=cache)).objective
        )
    warm_s = time.perf_counter() - start

    start = time.perf_counter()
    cold_energies = [
        allocate(problem, FAST).objective for problem in problems
    ]
    cold_s = time.perf_counter() - start
    return warm_s, cold_s, warm_energies, cold_energies


def test_scaling_is_polynomial(show, bench_report):
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "10"))
    with bench_report("solver_scaling", sizes=list(SIZES)) as trace:
        rows = timings()
        totals = _stage_totals(trace)
        measured = sum(totals.get(stage, 0.0) for stage in SEED_STAGE_SECONDS)
        speedup = sum(SEED_STAGE_SECONDS.values()) / max(measured, 1e-9)
        obs.gauge("bench.speedup_vs_seed", round(speedup, 2))
        with obs.span("bench.warm_sweep"):
            warm_s, cold_s, warm_energies, cold_energies = sweep_timings()
        obs.gauge("bench.sweep_warm_s", round(warm_s, 4))
        obs.gauge("bench.sweep_cold_s", round(cold_s, 4))
        obs.gauge("bench.sweep_speedup", round(cold_s / max(warm_s, 1e-9), 2))
    show(
        format_table(
            ("variables", "registers", "arcs", "seconds"),
            [(s, r, a, round(t, 4)) for s, r, a, t in rows],
            title="Solver scaling (construction + solve)",
        )
    )
    show(
        f"speedup vs per-arc seed: {speedup:.1f}x "
        f"(build+flow {measured:.3f}s vs {sum(SEED_STAGE_SECONDS.values()):.3f}s)\n"
        f"voltage sweep ({len(SWEEP_VOLTAGES)} points, n={SWEEP_SIZE}): "
        f"warm {warm_s:.3f}s vs cold {cold_s:.3f}s"
    )
    # Crude polynomial check: time ratio between consecutive doublings
    # stays bounded (a cubic would give ~8x; allow slack for noise).
    for (s1, _, _, t1), (s2, _, _, t2) in zip(rows, rows[1:]):
        if t1 > 0.01:  # below that, timer noise dominates
            assert t2 / t1 < 16.0, f"{s1}->{s2} grew {t2 / t1:.1f}x"
    # The largest instance still solves in interactive time.
    assert rows[-1][3] < 60.0
    # The struct-of-arrays kernel must hold its lead over the seed's
    # per-arc kernel.  REPRO_BENCH_MIN_SPEEDUP loosens the floor on
    # throttled CI runners.
    assert speedup >= min_speedup, (
        f"kernel speedup {speedup:.1f}x below the {min_speedup:.1f}x floor"
    )


def test_warm_sweep_beats_cold_solves():
    warm_s, cold_s, warm_energies, cold_energies = sweep_timings()
    assert warm_energies == pytest.approx(cold_energies, abs=1e-6)
    assert warm_s < cold_s, (
        f"warm sweep {warm_s:.3f}s did not beat {cold_s:.3f}s cold"
    )


@pytest.mark.benchmark(group="solver-scaling")
@pytest.mark.parametrize("size", (100, 400))
def test_solve_time(benchmark, size):
    rng = random.Random(size)
    horizon = max(10, size // 4)
    lifetimes = random_lifetimes(rng, count=size, horizon=horizon)
    problem = AllocationProblem(
        lifetimes,
        max(2, size // 20),
        horizon,
        energy_model=StaticEnergyModel(),
    )
    allocation = benchmark.pedantic(
        lambda: allocate(problem, FAST), rounds=3, iterations=1
    )
    assert allocation.registers_used > 0
