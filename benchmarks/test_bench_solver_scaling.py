"""E8 — solver scaling: "extending this problem to very large basic
blocks ... should be a viable future research direction" (section 7).

The paper argues viability from the polynomial complexity of network flow;
this bench measures wall time of construction + solve as the block grows
and checks the growth is polynomial (doubling the size must not blow up
the time super-polynomially).
"""

import random
import time
from functools import lru_cache

import pytest

from repro.analysis import format_table
from repro.core import AllocationProblem, allocate
from repro.energy import StaticEnergyModel
from repro.workloads.random_blocks import random_lifetimes

SIZES = (50, 100, 200, 400, 800)


@lru_cache(maxsize=None)
def timings():
    rows = []
    for size in SIZES:
        rng = random.Random(size)
        horizon = max(10, size // 4)
        lifetimes = random_lifetimes(rng, count=size, horizon=horizon)
        registers = max(2, size // 20)
        problem = AllocationProblem(
            lifetimes, registers, horizon, energy_model=StaticEnergyModel()
        )
        start = time.perf_counter()
        allocation = allocate(problem, validate=False)
        elapsed = time.perf_counter() - start
        built_arcs = allocation.flow.network.num_arcs
        rows.append((size, registers, built_arcs, elapsed))
    return rows


def test_scaling_is_polynomial(show, bench_report):
    with bench_report("solver_scaling", sizes=list(SIZES)):
        rows = timings()
    show(
        format_table(
            ("variables", "registers", "arcs", "seconds"),
            [(s, r, a, round(t, 4)) for s, r, a, t in rows],
            title="Solver scaling (construction + solve)",
        )
    )
    # Crude polynomial check: time ratio between consecutive doublings
    # stays bounded (a cubic would give ~8x; allow slack for noise).
    for (s1, _, _, t1), (s2, _, _, t2) in zip(rows, rows[1:]):
        if t1 > 0.01:  # below that, timer noise dominates
            assert t2 / t1 < 16.0, f"{s1}->{s2} grew {t2 / t1:.1f}x"
    # The largest instance still solves in interactive time.
    assert rows[-1][3] < 60.0


@pytest.mark.benchmark(group="solver-scaling")
@pytest.mark.parametrize("size", (100, 400))
def test_solve_time(benchmark, size):
    rng = random.Random(size)
    horizon = max(10, size // 4)
    lifetimes = random_lifetimes(rng, count=size, horizon=horizon)
    problem = AllocationProblem(
        lifetimes,
        max(2, size // 20),
        horizon,
        energy_model=StaticEnergyModel(),
    )
    allocation = benchmark.pedantic(
        lambda: allocate(problem, validate=False), rounds=3, iterations=1
    )
    assert allocation.registers_used > 0
