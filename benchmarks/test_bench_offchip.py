"""E10 — off-chip memory (paper section 7, closing claim).

"Significantly larger savings in energy are expected when this network
flow technique is applied to offchip memory, where energy dissipation of
memory accesses is several orders of magnitude higher."

This bench repeats the E5 improvement sweep with the off-chip capacitance
table and checks that the improvement factors over the two-phase prior
art strictly dominate the on-chip factors on (almost) every instance.
"""

import random
import statistics
from functools import lru_cache

import pytest

from repro.analysis import compare_allocators, format_table
from repro.energy import ActivityEnergyModel, CapacitanceTable
from repro.lifetimes import extract_lifetimes
from repro.scheduling import list_schedule
from repro.workloads import elliptic_wave_filter, fir_filter, random_dfg


@lru_cache(maxsize=None)
def instances():
    rng = random.Random(777)
    blocks = [
        fir_filter(8, rng),
        elliptic_wave_filter(rng),
        random_dfg(rng, operations=35, traced=True),
        random_dfg(rng, operations=50, traced=True),
    ]
    out = []
    for block in blocks:
        schedule = list_schedule(block)
        out.append(
            (block.name, extract_lifetimes(schedule), schedule.length)
        )
    return out


def factors(table: CapacitanceTable) -> list[tuple[str, float, float]]:
    """Per workload: (name, improvement factor, absolute energy saved)."""
    model = ActivityEnergyModel(table=table)
    out = []
    for name, lifetimes, horizon in instances():
        from repro.lifetimes import max_density

        registers = max(1, max_density(lifetimes.values(), horizon) // 3)
        comparison = compare_allocators(
            lifetimes, horizon, registers, model, baselines=("two-phase",)
        )
        baseline = comparison.baselines["two-phase"].energy
        out.append(
            (
                name,
                comparison.improvement_over("two-phase"),
                baseline - comparison.flow.energy,
            )
        )
    return out


def test_offchip_savings_dominate_onchip(show):
    onchip = factors(CapacitanceTable.onchip_default())
    offchip = factors(CapacitanceTable.offchip_memory())
    rows = [
        (name, on, off, saved_on, saved_off)
        for (name, on, saved_on), (_, off, saved_off) in zip(
            onchip, offchip
        )
    ]
    for name, on, off, saved_on, saved_off in rows:
        # Ratios never regress, and the *absolute* energy removed — the
        # paper's "significantly larger savings" — scales with the
        # off-chip access cost (an order of magnitude here).
        assert off >= on - 1e-9, name
        assert saved_off >= 5.0 * saved_on, name
    median_on = statistics.median(r[3] for r in rows)
    median_off = statistics.median(r[4] for r in rows)
    assert median_off > 5.0 * median_on
    show(
        format_table(
            ("workload", "on-chip factor", "off-chip factor",
             "saved on-chip", "saved off-chip"),
            rows,
            title="E10 — improvement over two-phase, on-chip vs off-chip "
            "memory (paper: 'significantly larger savings' off chip)",
        )
    )


@pytest.mark.benchmark(group="offchip")
def test_offchip_sweep_time(benchmark):
    result = benchmark.pedantic(
        lambda: factors(CapacitanceTable.offchip_memory()),
        rounds=1,
        iterations=1,
    )
    assert result
