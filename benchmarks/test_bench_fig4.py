"""E3 — figure 4: graph ablation + split lifetimes.

(a) two-phase on the all-non-overlapping graph [8];
(b) simultaneous on the same graph, no splits — minimum accesses the
    unsplit representation permits;
(c) simultaneous on the paper's graph with split lifetimes — strictly
    fewer memory accesses at the minimum storage-location count (paper:
    1.35x energy improvement over (a)).
"""

import pytest

from repro.analysis import format_table, improvement_factor
from repro.baselines import two_phase_allocate
from repro.core import AllocationProblem, allocate
from repro.energy import PairwiseSwitchingModel
from repro.workloads.paper_examples import (
    FIGURE4_ACTIVITIES,
    FIGURE4_HORIZON,
    figure4_lifetimes,
)

REGISTERS = 1


def run_fig4():
    lifetimes = figure4_lifetimes()
    model = PairwiseSwitchingModel(FIGURE4_ACTIVITIES)
    a = two_phase_allocate(
        lifetimes,
        FIGURE4_HORIZON,
        REGISTERS,
        model,
        binding_style="all_pairs",
        partition_rule="max_switching",
    )
    b = allocate(
        AllocationProblem(
            lifetimes,
            REGISTERS,
            FIGURE4_HORIZON,
            energy_model=model,
            graph_style="all_pairs",
            split_at_reads=False,
        )
    )
    c = allocate(
        AllocationProblem(
            lifetimes, REGISTERS, FIGURE4_HORIZON, energy_model=model
        )
    )
    return a, b, c


@pytest.mark.benchmark(group="fig4")
def test_fig4_three_way(benchmark, show):
    a, b, c = benchmark(run_fig4)

    # Accesses fall monotonically: (a) 7, (b) 5, (c) 4.
    assert a.report.mem_accesses == 7
    assert b.report.mem_accesses == 5
    assert c.report.mem_accesses == 4
    # (c) achieves the minimum storage-location count.
    assert c.storage_locations == 2

    ratio_c = improvement_factor(a, c)
    ratio_b = improvement_factor(a, b)
    # Paper reports 1.35x for (c) over (a); our reconstruction lands ~1.6.
    assert 1.2 <= ratio_c <= 1.9
    assert ratio_c >= ratio_b

    show(
        format_table(
            ("solution", "energy", "mem acc", "locations"),
            [
                ("(a) two-phase, all-pairs", a.objective,
                 a.report.mem_accesses, a.storage_locations),
                ("(b) simultaneous, all-pairs", b.objective,
                 b.report.mem_accesses, b.storage_locations),
                ("(c) simultaneous, split", c.objective,
                 c.report.mem_accesses, c.storage_locations),
            ],
            title=f"Figure 4 — (a)/(c) = {ratio_c:.2f}x (paper: 1.35x)",
        )
    )


def test_fig4_split_chain_shape():
    _, _, c = run_fig4()
    [chain] = c.chains
    # The register carries d, e, the first segment of f, then b, c —
    # exactly the split-lifetime solution of figure 4c.
    assert [(seg.name, seg.index) for seg in chain] == [
        ("d", 0), ("e", 0), ("f", 0), ("b", 0), ("c", 0),
    ]
