"""E1 — figure 1: network construction on the worked example.

Times the interval-graph -> flow-network construction and re-asserts the
topology facts of section 5.1 (density regions, bipartite handoffs between
adjacent regions, split/forced arcs under restricted access times).
"""

import pytest

from repro.core.network_builder import build_network
from repro.core.problem import AllocationProblem
from repro.energy import MemoryConfig, StaticEnergyModel
from repro.workloads.paper_examples import FIGURE1_HORIZON, figure1_lifetimes


def make_problem(restricted: bool) -> AllocationProblem:
    memory = (
        MemoryConfig(divisor=2, voltage=5.0) if restricted else MemoryConfig()
    )
    return AllocationProblem(
        figure1_lifetimes(),
        register_count=2,
        horizon=FIGURE1_HORIZON,
        energy_model=StaticEnergyModel(),
        memory=memory,
    )


@pytest.mark.benchmark(group="fig1-construction")
def test_fig1_network_construction(benchmark, show, bench_report):
    problem = make_problem(restricted=False)
    with bench_report("fig1_construction"):
        built = benchmark(lambda: build_network(problem))
    pairs = {
        (a.data[1].name if a.data[1] else "s",
         a.data[2].name if a.data[2] else "t")
        for a in built.network.arcs
        if a.data and a.data[0] == "handoff"
    }
    assert problem.density_regions == [(2, 2), (5, 5)]
    for src in ("a", "b"):
        for dst in ("d", "e"):
            assert (src, dst) in pairs
    show(
        "Figure 1 reproduction: density regions "
        f"{problem.density_regions}, handoff arcs: {sorted(pairs)}"
    )


@pytest.mark.benchmark(group="fig1-construction")
def test_fig1_restricted_access_construction(benchmark):
    problem = make_problem(restricted=True)
    built = benchmark(lambda: build_network(problem))
    forced = [
        arc
        for arc in built.network.arcs
        if arc.data and arc.data[0] == "segment" and arc.lower == 1
    ]
    forced_names = sorted(arc.data[1].key for arc in forced)
    # Figure 1c's bold arcs: e (whole) and the top segment of c.
    assert ("c", 0) in forced_names
    assert ("e", 0) in forced_names
