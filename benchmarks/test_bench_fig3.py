"""E2 — figure 3: two-phase prior art vs simultaneous allocation.

Paper's claims: the optimal prior-art binding has total switching 2.4; the
simultaneous solution has fewer memory accesses (4 vs 6), lower memory
switching, and 1.4x (static) / 1.3x (activity) lower energy.
"""

import pytest

from repro.analysis import format_table, improvement_factor
from repro.baselines import chang_pedram_binding, two_phase_allocate
from repro.core import AllocationProblem, allocate, reallocate_memory
from repro.energy import PairwiseSwitchingModel, StaticEnergyModel
from repro.workloads.paper_examples import (
    FIGURE3_ACTIVITIES,
    FIGURE3_HORIZON,
    figure3_lifetimes,
)

REGISTERS = 1


def run_fig3(model):
    lifetimes = figure3_lifetimes()
    baseline = two_phase_allocate(
        lifetimes,
        FIGURE3_HORIZON,
        REGISTERS,
        model,
        partition_rule="max_switching",
    )
    flow = allocate(
        AllocationProblem(
            lifetimes, REGISTERS, FIGURE3_HORIZON, energy_model=model
        )
    )
    return baseline, flow


@pytest.mark.benchmark(group="fig3")
def test_fig3_binding_switching_is_2_4(benchmark):
    model = PairwiseSwitchingModel(FIGURE3_ACTIVITIES)
    binding = benchmark(
        lambda: chang_pedram_binding(
            figure3_lifetimes(), FIGURE3_HORIZON, model
        )
    )
    assert binding.total_cost == pytest.approx(2.4)


@pytest.mark.benchmark(group="fig3")
def test_fig3_static_energy_improvement(benchmark, show):
    model = StaticEnergyModel()
    baseline, flow = benchmark(lambda: run_fig3(model))
    ratio = improvement_factor(baseline, flow)
    # Paper: 1.4x with the static model.
    assert 1.25 <= ratio <= 1.55
    show(
        format_table(
            ("solution", "energy", "mem acc", "reg acc"),
            [
                ("two-phase (fig 3a)", baseline.objective,
                 baseline.report.mem_accesses, baseline.report.reg_accesses),
                ("simultaneous (fig 3b)", flow.objective,
                 flow.report.mem_accesses, flow.report.reg_accesses),
            ],
            title=f"Figure 3 / static model — improvement {ratio:.2f}x "
            "(paper: 1.4x)",
        )
    )


@pytest.mark.benchmark(group="fig3")
def test_fig3_activity_energy_improvement(benchmark, show):
    model = PairwiseSwitchingModel(FIGURE3_ACTIVITIES)
    baseline, flow = benchmark(lambda: run_fig3(model))
    ratio = improvement_factor(baseline, flow)
    # Paper: 1.3x with the activity model; our reconstruction lands ~1.45.
    assert 1.2 <= ratio <= 1.6
    assert flow.report.mem_accesses == 4
    assert baseline.report.mem_accesses == 6
    show(
        f"Figure 3 / activity model — improvement {ratio:.2f}x "
        "(paper: 1.3x); memory accesses 4 vs 6 as in the paper"
    )


def test_fig3_memory_switching(show):
    model = PairwiseSwitchingModel(FIGURE3_ACTIVITIES)
    baseline, flow = run_fig3(model)
    layout = reallocate_memory(flow, model)
    # Two-phase pushes chain {d,e,f} to memory; its location switching:
    from repro.analysis import memory_location_switching

    baseline_chains = [
        [figure3_lifetimes()[n] for n in ("d", "e", "f")]
    ]
    baseline_switching = memory_location_switching(baseline_chains, model)
    show(
        "Figure 3 memory switching — two-phase "
        f"{baseline_switching:.3f} vs simultaneous "
        f"{layout.switching_energy:.3f} (paper: 1.5x lower; our "
        "reconstruction trades 2 fewer memory accesses for comparable "
        "per-location switching)"
    )
    # The simultaneous solution wins on *accesses* (4 vs 6) and total
    # energy; its per-location switching stays in the same band.
    assert layout.switching_energy <= 1.5 * baseline_switching
    assert flow.report.mem_accesses < baseline.report.mem_accesses
