"""E12 — memory hierarchy: the off-chip claim, quantified per capacity.

Paper §7: "Significantly larger savings in energy are expected when this
network flow technique is applied to offchip memory."  E10 showed the
claim across the two-phase comparison; this bench applies the flow
machinery *itself* one level down — partitioning the memory image between
a capacity-limited on-chip scratchpad and off-chip memory — and sweeps
the scratchpad capacity on the RSP application.
"""

import random
from functools import lru_cache

import pytest

from repro.analysis import format_table
from repro.core import (
    AllocationProblem,
    allocate,
    partition_memory_hierarchy,
)
from repro.energy import ActivityEnergyModel, CapacitanceTable, StaticEnergyModel
from repro.workloads.rsp import rsp_schedule

ONCHIP = StaticEnergyModel()
OFFCHIP = StaticEnergyModel(table=CapacitanceTable.offchip_memory())
CAPACITIES = (0, 1, 2, 4, 8, 12)


@lru_cache(maxsize=None)
def rsp_allocation():
    schedule = rsp_schedule(rng=random.Random(2024))
    problem = AllocationProblem.from_schedule(
        schedule, register_count=16, energy_model=ActivityEnergyModel()
    )
    return allocate(problem)


@lru_cache(maxsize=None)
def sweep():
    allocation = rsp_allocation()
    return [
        (
            capacity,
            partition_memory_hierarchy(
                allocation, capacity, ONCHIP, OFFCHIP
            ),
        )
        for capacity in CAPACITIES
    ]


def test_capacity_sweep_shape(show):
    rows = sweep()
    energies = [result.total_energy for _, result in rows]
    # Monotone: more scratch never hurts.
    assert energies == sorted(energies, reverse=True)
    # Zero capacity = the all-off-chip baseline.
    assert rows[0][1].saving_factor == pytest.approx(1.0)
    # A modest scratchpad already buys a large factor (the paper's
    # "significantly larger savings" regime).
    assert rows[-1][1].saving_factor >= 5.0
    show(
        format_table(
            ("scratch locations", "on-chip vars", "off-chip vars",
             "memory energy", "saving"),
            [
                (capacity, len(result.scratch), len(result.offchip),
                 result.total_energy, f"{result.saving_factor:.2f}x")
                for capacity, result in rows
            ],
            title="E12 — RSP memory image across the hierarchy "
            "(flow-optimal scratchpad contents per capacity)",
        )
    )


def test_scratch_prefers_hot_variables():
    # With one location, the chosen chain must save at least as much as
    # any single variable could.
    allocation = rsp_allocation()
    one = partition_memory_hierarchy(allocation, 1, ONCHIP, OFFCHIP)
    zero = partition_memory_hierarchy(allocation, 0, ONCHIP, OFFCHIP)
    best_single = max(
        zero.baseline_energy
        - partition_memory_hierarchy(
            allocation, 0, ONCHIP, OFFCHIP
        ).total_energy,
        0.0,
    )
    saved = zero.total_energy - one.total_energy
    assert saved >= best_single  # chain >= any single variable


@pytest.mark.benchmark(group="hierarchy")
def test_partition_time(benchmark):
    allocation = rsp_allocation()
    result = benchmark(
        lambda: partition_memory_hierarchy(allocation, 4, ONCHIP, OFFCHIP)
    )
    assert result.scratch_capacity == 4
