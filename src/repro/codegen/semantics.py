"""Concrete semantics of the IR opcodes.

Fixed-width two's-complement arithmetic so the instruction simulator and
the reference evaluator agree bit-for-bit.  Shift is a logical right shift
by one (the scaling step of fixed-point DSP kernels); CMP yields 0/1.
"""

from __future__ import annotations

from repro.exceptions import GraphError
from repro.ir.operations import OpCode

__all__ = ["evaluate_opcode", "mask_of"]


def mask_of(width: int) -> int:
    """All-ones mask of *width* bits (the unsigned value range)."""
    return (1 << width) - 1


def _to_signed(value: int, width: int) -> int:
    sign = 1 << (width - 1)
    return (value & mask_of(width)) - ((value & sign) << 1)


def evaluate_opcode(
    opcode: OpCode, operands: list[int], width: int
) -> int:
    """Apply *opcode* to *operands* (unsigned encodings) at *width* bits."""
    mask = mask_of(width)

    def need(count: int) -> None:
        if len(operands) != count:
            raise GraphError(
                f"{opcode.value} expects {count} operands, "
                f"got {len(operands)}"
            )

    if opcode is OpCode.ADD:
        need(2)
        return (operands[0] + operands[1]) & mask
    if opcode is OpCode.SUB:
        need(2)
        return (operands[0] - operands[1]) & mask
    if opcode is OpCode.MUL:
        need(2)
        return (operands[0] * operands[1]) & mask
    if opcode is OpCode.MAC:
        need(3)
        return (operands[0] * operands[1] + operands[2]) & mask
    if opcode is OpCode.SHIFT:
        need(1)
        return (operands[0] & mask) >> 1
    if opcode is OpCode.AND:
        need(2)
        return operands[0] & operands[1] & mask
    if opcode is OpCode.OR:
        need(2)
        return (operands[0] | operands[1]) & mask
    if opcode is OpCode.XOR:
        need(2)
        return (operands[0] ^ operands[1]) & mask
    if opcode is OpCode.NEG:
        need(1)
        return (-operands[0]) & mask
    if opcode is OpCode.ABS:
        need(1)
        return abs(_to_signed(operands[0], width)) & mask
    if opcode is OpCode.CMP:
        need(2)
        return int(
            _to_signed(operands[0], width) < _to_signed(operands[1], width)
        )
    if opcode is OpCode.MOVE:
        need(1)
        return operands[0] & mask
    raise GraphError(f"opcode {opcode.value} has no datapath semantics")
