"""Symbolic instruction stream produced by lowering an allocation.

Operands are physical locations: register indices (the flow solution's
chains) or memory addresses (the left-edge / reallocation layout).  The
instruction kinds mirror what the paper's methodology calls "detailed
instruction mapping and data layout": compute ops whose operands may be
registers or memory ("substituting in instructions with a memory
operand"), explicit LOAD/STORE for spills and reloads ("adding loads and
stores"), and register-to-register moves for piggyback handoffs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ir.operations import OpCode

__all__ = ["Reg", "Mem", "Operand", "Kind", "Instruction", "Program"]


@dataclass(frozen=True)
class Reg:
    """A physical register of the file."""

    index: int

    def __str__(self) -> str:
        return f"R{self.index}"


@dataclass(frozen=True)
class Mem:
    """A memory location (address plus the variable it holds, for
    readability)."""

    address: int
    variable: str = ""

    def __str__(self) -> str:
        tag = f":{self.variable}" if self.variable else ""
        return f"M[{self.address}{tag}]"


Operand = Reg | Mem


class Kind(enum.Enum):
    """Instruction kinds."""

    INPUT = "input"  # value arrives from outside (no datapath op)
    OP = "op"  # functional-unit operation
    OUTPUT = "output"  # value leaves the block
    LOAD = "load"  # explicit memory -> register reload
    STORE = "store"  # explicit register -> memory spill
    MOVE = "move"  # register-to-register / piggyback copy


@dataclass
class Instruction:
    """One lowered instruction.

    Attributes:
        kind: Instruction kind.
        step: Control step at whose top edge operands are sampled.
        write_step: Step at whose bottom edge the destination is written
            (equals *step* except for multi-cycle ops).
        opcode: Datapath opcode (``OP`` instructions only).
        dest: Destination location, if any.
        operands: Source locations in positional order.
        variable: The value concerned (for listings and debugging).
        piggyback: ``MOVE`` only — the source access is shared with a
            consumer read and costs no extra memory access.
    """

    kind: Kind
    step: int
    write_step: int
    variable: str
    opcode: OpCode | None = None
    dest: Operand | None = None
    operands: list[Operand] = field(default_factory=list)
    piggyback: bool = False

    def format(self) -> str:
        args = ", ".join(str(op) for op in self.operands)
        target = f"{self.dest} <- " if self.dest is not None else ""
        name = self.opcode.value if self.opcode else self.kind.value
        tail = f"  ; {self.variable}"
        if self.piggyback:
            tail += " (piggyback)"
        return f"{target}{name}({args}){tail}"


@dataclass
class Program:
    """A lowered basic block."""

    block_name: str
    length: int
    instructions: list[Instruction]

    def at_step(self, step: int) -> list[Instruction]:
        return [i for i in self.instructions if i.step == step]

    @property
    def code_size(self) -> int:
        """Executable instructions (sources/sinks excluded)."""
        return sum(
            1
            for i in self.instructions
            if i.kind in (Kind.OP, Kind.LOAD, Kind.STORE, Kind.MOVE)
        )

    @property
    def loads(self) -> int:
        return sum(1 for i in self.instructions if i.kind is Kind.LOAD)

    @property
    def stores(self) -> int:
        return sum(1 for i in self.instructions if i.kind is Kind.STORE)

    @property
    def memory_reads(self) -> int:
        """In-block memory read accesses the program performs."""
        reads = self.loads
        for i in self.instructions:
            if i.kind in (Kind.OP, Kind.OUTPUT):
                reads += sum(1 for op in i.operands if isinstance(op, Mem))
        return reads

    @property
    def memory_writes(self) -> int:
        """In-block memory write accesses the program performs."""
        writes = self.stores
        for i in self.instructions:
            if i.kind in (Kind.OP, Kind.INPUT) and isinstance(i.dest, Mem):
                writes += 1
        return writes

    def format(self) -> str:
        lines = [f"; block {self.block_name} ({self.code_size} instructions)"]
        for step in range(1, self.length + 2):
            todo = self.at_step(step)
            if not todo:
                continue
            lines.append(f"step {step}:")
            for instruction in todo:
                lines.append(f"  {instruction.format()}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()
