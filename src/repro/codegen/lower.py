"""Lowering: schedule + allocation -> instruction stream.

The paper's methodology ends with "detailed instruction mapping and data
layout (for example adding loads and stores, or substituting in
instructions with a memory operand etc)".  This module performs that
step: every scheduled operation becomes an instruction whose operands are
the physical locations the allocation chose, and the flow solution's
spills, reloads and piggyback handoffs become explicit STORE / LOAD /
MOVE instructions at the correct control steps.
"""

from __future__ import annotations

from repro.core.allocation import Allocation
from repro.core.memory_realloc import MemoryLayout
from repro.core.pipeline import PipelineResult
from repro.exceptions import AllocationError
from repro.codegen.program import Instruction, Kind, Mem, Operand, Program, Reg
from repro.ir.operations import OpCode
from repro.lifetimes.intervals import Segment
from repro.scheduling.schedule import Schedule

__all__ = ["lower", "lower_allocation"]


class _Locator:
    """Resolves where a variable's value lives at a given time."""

    def __init__(
        self,
        allocation: Allocation,
        addresses: dict[str, int],
    ) -> None:
        self.allocation = allocation
        self.problem = allocation.problem
        self.addresses = dict(addresses)
        self._scratch = (
            max(self.addresses.values()) + 1 if self.addresses else 0
        )

    def address_of(self, name: str) -> int:
        """Memory address of *name*, allocating scratch space for values
        that only touch memory through a spill."""
        if name not in self.addresses:
            self.addresses[name] = self._scratch
            self._scratch += 1
        return self.addresses[name]

    def segment_serving_read(self, name: str, step: int) -> Segment:
        for seg in self.problem.segments[name]:
            if step in seg.reads:
                return seg
        raise AllocationError(
            f"no segment of {name!r} serves a read at step {step}"
        )

    def read_location(self, name: str, step: int) -> Operand:
        seg = self.segment_serving_read(name, step)
        register = self.allocation.residency.get(seg.key)
        if register is not None:
            return Reg(register)
        return Mem(self.address_of(name), name)

    def write_location(self, name: str) -> Operand:
        first = self.problem.segments[name][0]
        register = self.allocation.residency.get(first.key)
        if register is not None:
            return Reg(register)
        return Mem(self.address_of(name), name)

    def first_access_at_or_after(self, step: int) -> int:
        access = self.problem.access_times
        if access is None:
            return step
        later = [m for m in access if m >= step]
        return min(later) if later else self.problem.horizon + 1


def lower(result: PipelineResult, use_layout: bool = True) -> Program:
    """Lower a pipeline result (optionally with its reallocated layout)."""
    layout = result.memory_layout if use_layout else None
    return lower_allocation(result.schedule, result.allocation, layout)


def lower_allocation(
    schedule: Schedule,
    allocation: Allocation,
    layout: MemoryLayout | None = None,
) -> Program:
    """Lower *allocation* (solved over *schedule*) to instructions.

    Args:
        schedule: The schedule the allocation's lifetimes came from.
        allocation: The solved allocation.
        layout: Optional second-pass memory layout; defaults to the
            allocation's left-edge addresses.

    Returns:
        The lowered :class:`Program`.
    """
    problem = allocation.problem
    addresses = (
        dict(layout.addresses) if layout else dict(allocation.memory_addresses)
    )
    locator = _Locator(allocation, addresses)
    instructions: list[Instruction] = []

    for op in schedule.as_ordered_list():
        step = schedule.read_step(op)
        if op.opcode is OpCode.OUTPUT:
            instructions.append(
                Instruction(
                    kind=Kind.OUTPUT,
                    step=step,
                    write_step=step,
                    variable=op.inputs[0],
                    operands=[locator.read_location(op.inputs[0], step)],
                )
            )
            continue
        assert op.output is not None
        write_step = schedule.write_step(op)
        if op.opcode in (OpCode.INPUT, OpCode.CONST):
            instructions.append(
                Instruction(
                    kind=Kind.INPUT,
                    step=step,
                    write_step=write_step,
                    variable=op.output,
                    dest=locator.write_location(op.output),
                )
            )
            continue
        instructions.append(
            Instruction(
                kind=Kind.OP,
                step=step,
                write_step=write_step,
                variable=op.output,
                opcode=op.opcode,
                dest=locator.write_location(op.output),
                operands=[
                    locator.read_location(name, step) for name in op.inputs
                ],
            )
        )

    # Spills, reloads and piggyback moves from the register chains.
    for chain in allocation.chains:
        for position, seg in enumerate(chain):
            register = allocation.residency[seg.key]
            previous = chain[position - 1] if position else None
            intra = (
                previous is not None
                and previous.name == seg.name
                and previous.index + 1 == seg.index
            )
            if not intra and not seg.is_first:
                if seg.starts_at_access_cut:
                    instructions.append(
                        Instruction(
                            kind=Kind.LOAD,
                            step=seg.start,
                            write_step=seg.start,
                            variable=seg.name,
                            dest=Reg(register),
                            operands=[
                                Mem(locator.address_of(seg.name), seg.name)
                            ],
                        )
                    )
                else:
                    # Entry at a read cut: the value rides the consumer's
                    # read (no extra memory access).
                    prior = problem.segments[seg.name][seg.index - 1]
                    prior_register = allocation.residency.get(prior.key)
                    source: Operand
                    if prior_register is not None:
                        source = Reg(prior_register)
                    else:
                        source = Mem(
                            locator.address_of(seg.name), seg.name
                        )
                    instructions.append(
                        Instruction(
                            kind=Kind.MOVE,
                            step=seg.start,
                            write_step=seg.start,
                            variable=seg.name,
                            dest=Reg(register),
                            operands=[source],
                            piggyback=True,
                        )
                    )
            exits = (
                position + 1 == len(chain)
                or chain[position + 1].name != seg.name
                or chain[position + 1].index != seg.index + 1
            )
            if exits and not seg.is_last:
                spill_step = locator.first_access_at_or_after(seg.end)
                instructions.append(
                    Instruction(
                        kind=Kind.STORE,
                        step=spill_step,
                        write_step=spill_step,
                        variable=seg.name,
                        dest=Mem(locator.address_of(seg.name), seg.name),
                        operands=[Reg(register)],
                    )
                )

    instructions.sort(key=lambda i: (i.step, i.kind.value, i.variable))
    return Program(
        block_name=schedule.block.name,
        length=schedule.length,
        instructions=instructions,
    )
