"""Reference evaluation of basic blocks.

Directly interprets the dataflow graph — no schedule, no storage — to
produce the ground-truth values the lowered instruction stream must
reproduce.  Used by the simulator tests as the oracle.
"""

from __future__ import annotations

from typing import Mapping

from repro.codegen.semantics import evaluate_opcode, mask_of
from repro.exceptions import GraphError
from repro.ir.basic_block import BasicBlock
from repro.ir.operations import OpCode

__all__ = ["evaluate_block"]


def evaluate_block(
    block: BasicBlock, inputs: Mapping[str, int]
) -> dict[str, int]:
    """Evaluate *block* on concrete *inputs*.

    Args:
        block: The block to evaluate.
        inputs: Value per ``INPUT``/``CONST`` variable (unsigned encoding
            within the variable's width).

    Returns:
        The value of every defined variable.

    Raises:
        GraphError: On missing inputs or out-of-range values.
    """
    values: dict[str, int] = {}
    for op in block:
        if op.output is None:
            continue  # sinks compute nothing
        width = block.variable(op.output).width
        if op.opcode in (OpCode.INPUT, OpCode.CONST):
            if op.output not in inputs:
                raise GraphError(
                    f"no value supplied for source {op.output!r}"
                )
            value = inputs[op.output]
            if not 0 <= value <= mask_of(width):
                raise GraphError(
                    f"value {value} for {op.output!r} exceeds "
                    f"{width} bits"
                )
            values[op.output] = value
            continue
        operands = [values[name] for name in op.inputs]
        values[op.output] = evaluate_opcode(op.opcode, operands, width)
    return values
