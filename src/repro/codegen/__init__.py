"""Instruction mapping and simulation (the methodology's final stage)."""

from repro.codegen.lower import lower, lower_allocation
from repro.codegen.program import (
    Instruction,
    Kind,
    Mem,
    Program,
    Reg,
)
from repro.codegen.reference import evaluate_block
from repro.codegen.semantics import evaluate_opcode, mask_of
from repro.codegen.simulator import MachineState, simulate, verify_program

__all__ = [
    "Instruction",
    "Kind",
    "MachineState",
    "Mem",
    "Program",
    "Reg",
    "evaluate_block",
    "evaluate_opcode",
    "lower",
    "lower_allocation",
    "mask_of",
    "simulate",
    "verify_program",
]
