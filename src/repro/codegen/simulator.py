"""Cycle-based simulation of lowered programs.

Executes a :class:`~repro.codegen.program.Program` against concrete input
values on a simple machine (a register file and a flat memory) honouring
the package's timing conventions: operand sampling at the top edge of an
instruction's issue step, destination writes at the bottom edge of its
write step.  The simulator is the repository's strongest end-to-end check:
if the allocator, the splitter, the address assigner or the lowering were
wrong about *where a value lives when*, the simulated outputs would
diverge from the reference dataflow evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.codegen.program import Instruction, Kind, Mem, Program, Reg
from repro.codegen.reference import evaluate_block
from repro.codegen.semantics import evaluate_opcode
from repro.core.allocation import Allocation
from repro.exceptions import AllocationError
from repro.ir.basic_block import BasicBlock

__all__ = ["MachineState", "simulate", "verify_program"]


@dataclass
class MachineState:
    """Final machine state of a simulation.

    Attributes:
        registers: Register index → last written value.
        memory: Address → last written value.
        outputs: Values sampled by OUTPUT instructions, per variable.
    """

    registers: dict[int, int] = field(default_factory=dict)
    memory: dict[int, int] = field(default_factory=dict)
    outputs: dict[str, int] = field(default_factory=dict)


def _sample(state: MachineState, operand, instruction: Instruction) -> int:
    if isinstance(operand, Reg):
        if operand.index not in state.registers:
            raise AllocationError(
                f"{instruction.format()} reads uninitialised {operand}"
            )
        return state.registers[operand.index]
    if isinstance(operand, Mem):
        if operand.address not in state.memory:
            raise AllocationError(
                f"{instruction.format()} reads uninitialised {operand}"
            )
        return state.memory[operand.address]
    raise AllocationError(f"unknown operand {operand!r}")


def simulate(
    program: Program,
    block: BasicBlock,
    inputs: Mapping[str, int],
) -> MachineState:
    """Run *program* with the given source values.

    Args:
        program: The lowered instruction stream.
        block: The originating block (supplies widths and source values'
            names; ``INPUT``/``CONST`` instructions take their value from
            *inputs*).
        inputs: Value per source variable.

    Returns:
        The final :class:`MachineState`.

    Raises:
        AllocationError: On reads of never-written locations — i.e. a
            lowering or allocation bug.
    """
    state = MachineState()
    pending: dict[int, list[tuple[Instruction, int]]] = {}
    last_step = max(
        (i.write_step for i in program.instructions), default=0
    )
    for step in range(1, last_step + 1):
        # Top edge: sample operands of instructions issuing now.
        for instruction in program.at_step(step):
            if instruction.kind is Kind.INPUT:
                name = instruction.variable
                if name not in inputs:
                    raise AllocationError(
                        f"no input value for source {name!r}"
                    )
                value = inputs[name]
            elif instruction.kind is Kind.OP:
                operands = [
                    _sample(state, op, instruction)
                    for op in instruction.operands
                ]
                width = block.variable(instruction.variable).width
                assert instruction.opcode is not None
                value = evaluate_opcode(
                    instruction.opcode, operands, width
                )
            elif instruction.kind is Kind.OUTPUT:
                state.outputs[instruction.variable] = _sample(
                    state, instruction.operands[0], instruction
                )
                continue
            else:  # LOAD / STORE / MOVE copy one value
                value = _sample(
                    state, instruction.operands[0], instruction
                )
            pending.setdefault(instruction.write_step, []).append(
                (instruction, value)
            )
        # Bottom edge: apply destination writes landing this step.
        for instruction, value in pending.pop(step, ()):  # type: ignore[arg-type]
            dest = instruction.dest
            if dest is None:
                continue
            if isinstance(dest, Reg):
                state.registers[dest.index] = value
            else:
                state.memory[dest.address] = value
    if pending:
        raise AllocationError(
            f"writes left unapplied past step {last_step}: {sorted(pending)}"
        )
    return state


def verify_program(
    program: Program,
    block: BasicBlock,
    allocation: Allocation,
    inputs: Mapping[str, int],
) -> MachineState:
    """Simulate and check every observable value against the reference.

    Checks (raising :class:`AllocationError` on the first mismatch):

    * every OUTPUT-sampled value equals the reference evaluation;
    * every live-out variable's value, read from its final storage
      location (register chain or memory address), equals the reference.
    """
    reference = evaluate_block(block, inputs)
    state = simulate(program, block, inputs)
    for name, value in state.outputs.items():
        if value != reference[name]:
            raise AllocationError(
                f"output {name!r}: simulated {value}, "
                f"reference {reference[name]}"
            )
    problem = allocation.problem
    for name in block.live_out:
        final = problem.segments[name][-1]
        register = allocation.residency.get(final.key)
        if register is not None:
            observed = state.registers.get(register)
        else:
            # The program's own memory destinations are authoritative
            # (they reflect whichever layout the lowering used).
            address = None
            for instruction in program.instructions:
                if (
                    isinstance(instruction.dest, Mem)
                    and instruction.dest.variable == name
                ):
                    address = instruction.dest.address
            observed = (
                state.memory.get(address) if address is not None else None
            )
        if observed != reference[name]:
            raise AllocationError(
                f"live-out {name!r}: simulated {observed}, "
                f"reference {reference[name]}"
            )
    return state
