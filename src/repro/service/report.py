"""Batch reports: the versioned output document of a service run.

:func:`build_batch_report` folds a list of
:class:`~repro.service.executor.JobResult` into the
``repro.service/batch-report/v1`` document: per-job records plus batch
totals (status counts, cache hit rate, retry/fallback spend, per-solver
provenance counts, wall times).  :func:`report_to_json` and
:func:`render_batch_text` are the two output formats of the
``repro-alloc batch`` subcommand; the CI batch-smoke job parses the JSON
form to assert its cache-hit-rate floor.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

from repro.service.cache import ResultCache
from repro.service.executor import JobResult

__all__ = ["REPORT_SCHEMA", "build_batch_report", "render_batch_text", "report_to_json"]

#: Schema identifier of a batch report document.
REPORT_SCHEMA = "repro.service/batch-report/v1"


def build_batch_report(
    results: Sequence[JobResult],
    cache: ResultCache | None = None,
    wall_time_s: float = 0.0,
    workers: int = 1,
    manifest: str | None = None,
) -> dict[str, Any]:
    """Fold job results into a ``repro.service/batch-report/v1`` dict.

    Args:
        results: Gathered job results, in submission order.
        cache: The batch's result cache, for hit/miss statistics.
        wall_time_s: End-to-end batch wall time.
        workers: Worker processes the batch ran with.
        manifest: Manifest path or label, for provenance.
    """
    statuses = {
        "ok": 0,
        "failed": 0,
        "infeasible": 0,
        "timeout": 0,
        "rejected": 0,
    }
    by_solver: dict[str, int] = {}
    retries = 0
    fallbacks = 0
    certified = 0
    cached = 0
    solve_wall = 0.0
    for result in results:
        statuses[result.status] = statuses.get(result.status, 0) + 1
        if result.cached:
            cached += 1
        if result.solver is not None:
            by_solver[result.solver] = by_solver.get(result.solver, 0) + 1
        retries += result.retries
        fallbacks += result.fallbacks
        certified += result.certified
        solve_wall += result.wall_time_s
    totals: dict[str, Any] = {
        "jobs": len(results),
        **statuses,
        "cached": cached,
        "solved": len(results) - cached,
        "retries": retries,
        "fallbacks": fallbacks,
        "certified": certified,
        "by_solver": dict(sorted(by_solver.items())),
        "solve_wall_s": round(solve_wall, 6),
    }
    if cache is not None:
        totals["cache"] = cache.stats()
    return {
        "schema": REPORT_SCHEMA,
        "manifest": manifest,
        "workers": workers,
        "wall_time_s": round(wall_time_s, 6),
        "totals": totals,
        "jobs": [result.to_dict() for result in results],
    }


def report_to_json(report: Mapping[str, Any], indent: int = 2) -> str:
    """Serialise a batch report to JSON text (trailing newline)."""
    return json.dumps(report, indent=indent, sort_keys=True) + "\n"


def render_batch_text(report: Mapping[str, Any]) -> str:
    """Human-readable one-screen summary of a batch report."""
    totals = report["totals"]
    lines = [
        f"batch report ({report['schema']})",
        f"  manifest: {report.get('manifest') or '-'}",
        f"  workers:  {report['workers']}  "
        f"wall: {report['wall_time_s']:.3f}s  "
        f"(solve {totals['solve_wall_s']:.3f}s)",
        f"  jobs:     {totals['jobs']}  ok {totals['ok']}  "
        f"failed {totals['failed']}  infeasible {totals['infeasible']}  "
        f"timeout {totals['timeout']}  "
        f"rejected {totals.get('rejected', 0)}",
        f"  cache:    {totals['cached']} served / "
        f"{totals['solved']} solved",
    ]
    if "cache" in totals:
        stats = totals["cache"]
        lines.append(
            f"            lookups {stats['hits']} hit / "
            f"{stats['misses']} miss "
            f"(rate {stats['hit_rate']:.2%})"
        )
    lines.append(
        f"  ladder:   retries {totals['retries']}  "
        f"fallbacks {totals['fallbacks']}  "
        f"certified {totals['certified']}"
    )
    if totals["by_solver"]:
        solvers = "  ".join(
            f"{name}:{count}" for name, count in totals["by_solver"].items()
        )
        lines.append(f"  solvers:  {solvers}")
    width = max(
        [len(str(job["job_id"])) for job in report["jobs"]] or [3]
    )
    for job in report["jobs"]:
        origin = "cache" if job["cached"] else (job["solver"] or "-")
        energy = (
            f"{job['objective']:.2f}"
            if job.get("objective") is not None
            else "-"
        )
        line = (
            f"  {str(job['job_id']).ljust(width)}  "
            f"{job['status']:<10}  E={energy:<10}  via {origin}"
        )
        if job.get("error"):
            line += f"  ({job['error']})"
        lines.append(line)
    return "\n".join(lines) + "\n"
