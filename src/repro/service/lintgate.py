"""Admission-time lint gating with cached SARIF-ready verdicts.

The serving path runs the static analyser (:mod:`repro.lint`) over every
job *before* it reaches the solver queue: a manifest that is provably
bad — an RA6xx infeasibility certificate, a schedule/lifetime
disagreement, a broken cost model — is rejected up front with the full
diagnostic report instead of burning a solver slot to rediscover the
problem the hard way.

Verdicts are cached in the shared :class:`~repro.service.cache`
store under the instance's canonical sha256 digest, with one twist: the
canonical form captures lifetimes but not the schedule they came from,
and the schedule-aware rules (RA1xx, RA602) analyse the schedule.  A
verdict therefore stores a **schedule fingerprint** (sha256 over the
scheduled operations; empty for schedule-less instances) and a lookup
with a different fingerprint is a miss.  Without this, two manifests
with isomorphic lifetimes but different schedules would share a verdict
and one of them would be wrong.

Counters: ``service.lint.checked`` / ``service.lint.blocked`` per job,
plus the cache's ``service.lint.cache_hit`` / ``service.lint.cache_miss``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.lint import LintConfig, LintReport, Severity, run_lint
from repro.obs import trace as obs
from repro.service.cache import CachedLint, ResultCache
from repro.service.canonical import canonicalize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.problem import AllocationProblem
    from repro.scheduling.schedule import Schedule
    from repro.service.canonical import CanonicalInstance

__all__ = ["LintGate", "LintVerdict", "schedule_fingerprint"]


def schedule_fingerprint(schedule: "Schedule | None") -> str:
    """Stable digest of a schedule's operations (empty when ``None``).

    Two schedules fingerprint equally iff they place the same operations
    (name, inputs, output, delay) at the same steps — exactly the facts
    the schedule-aware lint rules consume.
    """
    if schedule is None:
        return ""
    ops = sorted(
        (
            op.name,
            tuple(op.inputs),
            op.output,
            op.delay,
            schedule.read_step(op),
            schedule.write_step(op),
        )
        for op in schedule.block
    )
    payload = json.dumps(
        [list(map(_plain, row)) for row in ops], sort_keys=False
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _plain(value: Any) -> Any:
    return list(value) if isinstance(value, tuple) else value


@dataclass(frozen=True)
class LintVerdict:
    """The admission gate's decision for one job.

    Attributes:
        label: The job's display label.
        key: Canonical cache key of the instance.
        fingerprint: Schedule fingerprint the verdict was computed for.
        report: The full lint report.
        blocking: Whether findings reach the gate's severity threshold
            (the job must not be solved).
        cached: Whether the verdict was served from the lint cache.
    """

    label: str
    key: str
    fingerprint: str
    report: LintReport
    blocking: bool
    cached: bool = False

    def run_properties(self) -> dict[str, Any]:
        """SARIF run property bag attributing this verdict to its job."""
        return {
            "job": self.label,
            "digest": self.key,
            "scheduleFingerprint": self.fingerprint or None,
            "blocking": self.blocking,
            "cached": self.cached,
        }


class LintGate:
    """Reusable admission gate: lint, cache, and classify jobs.

    Args:
        cache: Shared result cache whose lint layer stores verdicts
            (``None`` disables caching; every check re-analyses).
        fail_on: Severity threshold at which a verdict blocks the job.
            Parsed leniently — unknown names fail *closed* to ``error``
            (see :meth:`repro.lint.Severity.coerce`) — and ``"never"``
            disables blocking while still producing reports.
        config: Lint rule-set configuration shared by every check.
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        fail_on: "str | Severity" = Severity.ERROR,
        config: LintConfig | None = None,
    ) -> None:
        self.cache = cache
        self.never = isinstance(fail_on, str) and fail_on == "never"
        self.threshold = (
            Severity.ERROR if self.never else Severity.coerce(fail_on)
        )
        self.config = config or LintConfig()

    def check(
        self,
        problem: "AllocationProblem",
        schedule: "Schedule | None" = None,
        label: str = "",
        canonical: "CanonicalInstance | None" = None,
    ) -> LintVerdict:
        """Lint one job (through the verdict cache) and classify it.

        Args:
            problem: The instance about to be admitted.
            schedule: Its schedule, when the job kind has one (enables
                the schedule-aware rules and keys the fingerprint).
            label: Display label used in reports.
            canonical: Pre-computed canonical form, when the caller
                already paid for it (the executor canonicalizes every
                job anyway); computed here otherwise.
        """
        if canonical is None:
            canonical = canonicalize(problem)
        fingerprint = schedule_fingerprint(schedule)
        report: LintReport | None = None
        cached = False
        if self.cache is not None:
            entry = self.cache.get_lint(canonical.key, fingerprint)
            if entry is not None:
                try:
                    report = LintReport.from_dict(dict(entry.report))
                    cached = True
                except Exception:
                    report = None  # corrupt verdict: re-analyse
        if report is None:
            report = run_lint(problem, schedule=schedule, config=self.config)
            if self.cache is not None:
                self.cache.put_lint(
                    CachedLint(
                        key=canonical.key,
                        fingerprint=fingerprint,
                        report=report.to_dict(),
                    )
                )
        blocking = (
            not self.never and bool(report.at_least(self.threshold))
        )
        obs.count("service.lint.checked")
        if blocking:
            obs.count("service.lint.blocked")
        return LintVerdict(
            label=label,
            key=canonical.key,
            fingerprint=fingerprint,
            report=report,
            blocking=blocking,
            cached=cached,
        )
