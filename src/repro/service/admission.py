"""Admission control for the allocation server: backpressure made explicit.

The long-lived server (:mod:`repro.service.server`) must never fall over
under a burst and must never drop work silently.  This module implements
the two admission mechanisms it needs, as plain synchronous objects the
(single-threaded) event loop calls directly:

* :class:`TokenBucket` — a per-client rate limiter.  Tokens refill at
  ``rate`` per second up to ``burst``; a request costing more tokens
  than are available is rejected with the exact number of seconds until
  the deficit refills (the server turns that into a ``Retry-After``
  header).  The bucket can never grant more than ``burst + rate * T``
  jobs over any window of ``T`` seconds — the invariant the property
  tests in ``tests/service/test_admission.py`` pin down.
* :class:`AdmissionController` — a bounded queue with round-robin
  fairness.  Jobs are queued per client and dequeued one request at a
  time, rotating over clients with backlog, so one chatty client cannot
  starve the others.  The total number of queued *jobs* (requests are
  weighted by their job count) never exceeds ``capacity``; overload is
  answered with an explicit :class:`Verdict` carrying the shed reason
  and a retry hint, and counted — both internally (:meth:`stats`) and on
  the ``service.admission.*`` / ``service.shed`` observability counters.

Every rejection is explicit: :meth:`AdmissionController.admit` returns a
:class:`Verdict` for *every* submission, admitted or not, so the server
can map each rejection to an HTTP 503 with ``Retry-After`` and the shed
counters always reconcile with the client-visible responses (the "zero
silent drops" acceptance bar).
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.exceptions import ServiceError
from repro.obs import trace as obs

__all__ = ["AdmissionController", "TokenBucket", "Verdict"]

#: Floating-point slack when deciding whether a bucket can afford a grant.
_TOKEN_EPS = 1e-9

#: Fallback per-job service-time estimate (seconds) before any job has
#: completed, used to size ``Retry-After`` hints for queue-full sheds.
_DEFAULT_SERVICE_S = 0.05


class TokenBucket:
    """A token bucket: ``rate`` tokens/second, at most ``burst`` banked.

    The bucket starts full.  :meth:`try_acquire` either grants the
    requested tokens (returning ``0.0``) or leaves the bucket untouched
    and returns the number of seconds until the deficit would refill.

    Args:
        rate: Sustained refill rate in tokens per second (> 0).
        burst: Bucket capacity — the largest instantaneous grant (>= 1).
        clock: Monotonic time source (injectable for tests).
    """

    __slots__ = ("rate", "burst", "_clock", "_tokens", "_last")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ServiceError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ServiceError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
        self._last = now

    @property
    def tokens(self) -> float:
        """Tokens currently available (after refilling to now)."""
        self._refill(self._clock())
        return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take *tokens* if available.

        A cost above ``burst`` can never be granted (the bucket cannot
        hold that many tokens); the returned wait is then the time the
        deficit would take to refill *without* the cap — a finite
        back-off hint, but retries will keep failing until the caller
        splits the request.  That is deliberate: granting oversized
        requests would break the ``burst + rate * T`` admission bound.

        Returns:
            ``0.0`` when the grant succeeded, otherwise the seconds
            until the bucket would hold enough tokens (the grant did
            not happen and the bucket is unchanged).
        """
        if tokens <= 0:
            raise ServiceError(f"token cost must be positive, got {tokens}")
        self._refill(self._clock())
        if self._tokens + _TOKEN_EPS >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate


@dataclass(frozen=True)
class Verdict:
    """Outcome of one admission decision.

    Attributes:
        admitted: Whether the request was queued.
        reason: Shed reason when rejected — ``"rate_limited"``,
            ``"queue_full"`` or ``"draining"``; ``None`` when admitted.
        retry_after: Suggested client back-off in seconds (0 when
            admitted); the server rounds this up into ``Retry-After``.
    """

    admitted: bool
    reason: str | None = None
    retry_after: float = 0.0


class AdmissionController:
    """Bounded, client-fair admission queue with explicit load shedding.

    One controller fronts one server process.  ``admit`` runs the full
    gauntlet — drain flag, per-client token bucket, queue capacity — and
    either enqueues the request or returns a rejection verdict; ``next``
    dequeues the next request round-robin across clients with backlog.

    Capacity is measured in *jobs*: a batch request submitting ``k``
    manifest jobs occupies ``k`` units of the queue (and costs ``k``
    rate-limiter tokens), so a single huge batch cannot sneak past a
    limit tuned for singleton requests.

    Args:
        capacity: Maximum total queued jobs (>= 1).
        rate: Per-client sustained admission rate in jobs/second;
            ``None`` disables rate limiting.
        burst: Per-client burst allowance (defaults to ``max(rate, 1)``).
        clock: Monotonic time source shared by all client buckets.
        max_clients: Bound on tracked client buckets (LRU-evicted).
    """

    def __init__(
        self,
        capacity: int,
        rate: float | None = None,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = 1024,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"capacity must be >= 1, got {capacity}")
        if max_clients < 1:
            raise ServiceError(
                f"max_clients must be >= 1, got {max_clients}"
            )
        self.capacity = capacity
        self.rate = rate
        self.burst = float(burst) if burst is not None else (
            max(float(rate), 1.0) if rate is not None else None
        )
        self.draining = False
        self.queued = 0
        self.admitted_jobs = 0
        self.shed_jobs = 0
        self.shed_by_reason: dict[str, int] = {}
        self._clock = clock
        self._max_clients = max_clients
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self._queues: dict[str, deque[tuple[Any, int]]] = {}
        self._rotation: deque[str] = deque()
        self._service_ewma = _DEFAULT_SERVICE_S

    # -- admission ------------------------------------------------------
    def _bucket(self, client: str) -> TokenBucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            assert self.rate is not None and self.burst is not None
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[client] = bucket
            while len(self._buckets) > self._max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client)
        return bucket

    def _shed(self, reason: str, weight: int, retry_after: float) -> Verdict:
        self.shed_jobs += weight
        self.shed_by_reason[reason] = (
            self.shed_by_reason.get(reason, 0) + weight
        )
        obs.count("service.shed", weight)
        obs.count(f"service.shed.{reason}", weight)
        return Verdict(False, reason, max(retry_after, 0.0))

    def admit(self, client: str, request: Any, weight: int = 1) -> Verdict:
        """Run *request* through the admission gauntlet.

        Args:
            client: Stable client identity (header or peer address).
            request: Opaque payload handed back by :meth:`next`.
            weight: Job count of the request (queue/rate cost).

        Returns:
            An admitted verdict (request is now queued) or a rejection
            carrying the shed ``reason`` and a ``retry_after`` hint.
        """
        if weight < 1:
            raise ServiceError(f"weight must be >= 1, got {weight}")
        if self.draining:
            return self._shed("draining", weight, self._eta(self.queued))
        if self.rate is not None:
            wait = self._bucket(client).try_acquire(float(weight))
            if wait > 0.0:
                return self._shed("rate_limited", weight, wait)
        if self.queued + weight > self.capacity:
            return self._shed("queue_full", weight, self._eta(self.queued))
        queue = self._queues.get(client)
        if queue is None:
            queue = self._queues[client] = deque()
            self._rotation.append(client)
        queue.append((request, weight))
        self.queued += weight
        self.admitted_jobs += weight
        obs.count("service.admission.admitted", weight)
        obs.gauge("service.admission.queued", self.queued)
        return Verdict(True)

    # -- dispatch -------------------------------------------------------
    def next(self) -> tuple[str, Any] | None:
        """Dequeue the next request, round-robin over backlogged clients.

        Returns ``(client, request)`` or ``None`` when the queue is
        empty.  A client with remaining backlog goes to the back of the
        rotation after yielding one request, which is what bounds any
        client's share of the dispatcher to ``1 / active clients``.
        """
        while self._rotation:
            client = self._rotation.popleft()
            queue = self._queues.get(client)
            if not queue:
                self._queues.pop(client, None)
                continue
            request, weight = queue.popleft()
            self.queued -= weight
            if queue:
                self._rotation.append(client)
            else:
                del self._queues[client]
            obs.gauge("service.admission.queued", self.queued)
            return client, request
        return None

    def observe_service_time(self, seconds: float, jobs: int = 1) -> None:
        """Feed a completed request's wall time into the retry estimator."""
        if jobs < 1 or seconds < 0:
            return
        per_job = seconds / jobs
        self._service_ewma = 0.8 * self._service_ewma + 0.2 * per_job

    def _eta(self, backlog_jobs: int) -> float:
        """Estimated seconds until *backlog_jobs* queued jobs complete."""
        return min(
            60.0, max(0.1, (backlog_jobs + 1) * self._service_ewma)
        )

    def start_drain(self) -> None:
        """Stop admitting: every later submission sheds as ``draining``."""
        self.draining = True

    # -- accounting -----------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Queue depth, client count and admission/shed accounting."""
        return {
            "capacity": self.capacity,
            "queued": self.queued,
            "clients": len(self._queues),
            "admitted_jobs": self.admitted_jobs,
            "shed_jobs": self.shed_jobs,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "draining": self.draining,
            "rate": self.rate,
            "burst": self.burst,
        }
