"""Batch manifests: declarative job lists for the allocation service.

A manifest is a JSON document (schema ``repro.service/manifest/v1``)
naming the instances a batch should solve::

    {
      "schema": "repro.service/manifest/v1",
      "defaults": {"registers": 4, "model": "static"},
      "jobs": [
        {"kind": "figure", "name": "fig3"},
        {"kind": "kernel", "name": "fir", "taps": 8},
        {"kind": "random", "count": 100, "variables": 10, "horizon": 12},
        {"kind": "instance", "path": "cases/fir8.json"}
      ]
    }

Job kinds:

* ``kernel`` — a synthesised DSP kernel from the shared registry
  (:func:`repro.workloads.registry.kernel_block`), scheduled with the
  list scheduler.  ``count > 1`` replicates the job with derived seeds.
* ``figure`` — a paper worked example (``fig1``/``fig3``/``fig4``);
  figures 3 and 4 carry their pairwise switching-activity tables.
* ``instance`` — a serialised ``repro-instance-v1`` document
  (:mod:`repro.workloads.serialize`), path relative to the manifest.
* ``random`` — seeded random lifetime sets
  (:func:`repro.workloads.random_blocks.random_lifetimes`); ``count``
  independent instances derived from one seed.

Per-job keys override ``defaults``; both recognise ``registers``,
``model`` (``static``/``activity``), ``divisor`` (restricted memory
operating point — the supply voltage follows the divisor), ``voltage``
(explicit memory supply override: a *cost-only* perturbation that keeps
the flow-network topology intact, which is what lets the serving layer's
:class:`~repro.flow.warm_start.WarmStartCache` re-solve sweep points
incrementally), ``seed``, ``taps``, and for random jobs ``variables``,
``horizon``, ``traced``.  When ``registers`` is omitted the instance's
maximum lifetime density is used (every variable can be
register-resident if the flow wants it).

Schema v2 (``repro.service/manifest/v2``) additionally recognises a
``storage`` operating-point key (in ``defaults`` or per job): either a
full ``repro/storage-spec/v1`` document (``{"levels": [...]}``) or the
banked shorthand ``{"banks": N, "period": P, "ports": ..., "capacity":
..., "voltages": [...], "stagger": ...}`` expanding through
:meth:`~repro.core.storage.StorageSpec.banked`.  v1 documents parse
verbatim (``storage`` defaults to the implicit two-level hierarchy) and
are rejected if they try to carry a ``storage`` key.

Manifests usually arrive as files (:func:`load_manifest`), but the
allocation server receives them as request bodies —
:func:`parse_manifest` validates an already-decoded document.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.core.problem import AllocationProblem
from repro.core.storage import StorageSpec
from repro.energy import (
    ActivityEnergyModel,
    MemoryConfig,
    PairwiseSwitchingModel,
    StaticEnergyModel,
)
from repro.exceptions import ReproError, ServiceError
from repro.lifetimes import extract_lifetimes, max_density
from repro.scheduling import list_schedule
from repro.workloads.random_blocks import derive_seed, random_lifetimes, spawn_rng
from repro.workloads.registry import figure_example, kernel_block
from repro.workloads.serialize import problem_from_dict

__all__ = [
    "BuiltWorkload",
    "Manifest",
    "WorkloadSpec",
    "load_manifest",
    "parse_manifest",
]

#: Original schema identifier (no ``storage`` operating point).
SCHEMA_V1 = "repro.service/manifest/v1"

#: Current schema identifier (adds the ``storage`` operating point).
SCHEMA_V2 = "repro.service/manifest/v2"

#: Accepted schema identifiers, oldest first.
SCHEMAS = (SCHEMA_V1, SCHEMA_V2)

#: Backwards-compatible alias for the v1 identifier (historical name).
SCHEMA = SCHEMA_V1

_KINDS = ("kernel", "figure", "instance", "random")


@dataclass(frozen=True)
class WorkloadSpec:
    """One manifest job line (declarative, not yet built).

    Attributes:
        kind: ``kernel``, ``figure``, ``instance`` or ``random``.
        name: Workload name (kernel/figure kinds).
        path: Instance file path (instance kind).
        count: Replication factor (seeds are derived per replica).
        label: Display label override (auto-generated when empty).
        params: Remaining per-job keys, merged over manifest defaults.
    """

    kind: str
    name: str = ""
    path: str | None = None
    count: int = 1
    label: str = ""
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class BuiltWorkload:
    """A manifest job materialised into a solvable instance.

    Attributes:
        label: Display label (unique within the batch by construction).
        problem: The allocation instance to solve.
        schedule: The schedule the lifetimes were extracted from, for
            job kinds that have one (kernels); enables the
            schedule-aware lint rules (RA1xx, RA602) at admission time.
    """

    label: str
    problem: AllocationProblem
    schedule: Any = None


def _operating_point(params: Mapping[str, Any]):
    """Energy model + memory config for a job's parameter set."""
    divisor = int(params.get("divisor", 1))
    voltage = params.get("voltage")
    model_name = str(params.get("model", "static"))
    if model_name == "activity":
        model = ActivityEnergyModel()
    elif model_name == "static":
        model = StaticEnergyModel()
    else:
        raise ServiceError(
            f"unknown energy model {model_name!r} (static/activity)"
        )
    memory = MemoryConfig()
    if divisor > 1:
        memory = MemoryConfig.scaled(divisor)
    if voltage is not None:
        # Explicit supply override: costs change, access times (and
        # therefore the network topology) do not — the warm-startable
        # sweep case.
        memory = MemoryConfig(
            divisor=memory.divisor,
            voltage=float(voltage),
            offset=memory.offset,
        )
    if divisor > 1 or voltage is not None:
        model = model.with_voltages(memory.voltage, model.reg_voltage)
    return model, memory


def _storage_spec(params: Mapping[str, Any]) -> StorageSpec | None:
    """Expand a job's ``storage`` key into a :class:`StorageSpec`.

    Accepts a full ``repro/storage-spec/v1`` document or the banked
    shorthand (``banks``/``period``/``ports``/``capacity``/``voltages``/
    ``stagger``); returns ``None`` when the job has no ``storage`` key.
    """
    data = params.get("storage")
    if data is None:
        return None
    if isinstance(data, StorageSpec):
        return data
    if not isinstance(data, Mapping):
        raise ServiceError("storage must be a JSON object")
    try:
        if "levels" in data:
            return StorageSpec.from_dict(data)
        voltages = data.get("voltages")
        return StorageSpec.banked(
            int(data.get("banks", 2)),
            int(data.get("period", 2)),
            ports=(
                int(data["ports"]) if data.get("ports") is not None else None
            ),
            capacity=(
                int(data["capacity"])
                if data.get("capacity") is not None
                else None
            ),
            voltages=(
                [float(v) for v in voltages] if voltages is not None else None
            ),
            stagger=bool(data.get("stagger", True)),
        )
    except (ReproError, ValueError, TypeError, KeyError) as exc:
        raise ServiceError(f"bad storage operating point: {exc}") from None


def _storage_voltages(model, storage: StorageSpec | None):
    """Charge *model* at the hierarchy's reference supply.

    The storage spec's reference bank replaces the classic memory
    operating point (``AllocationProblem`` re-derives ``memory`` from
    it), so the model must follow — exactly as ``divisor``/``voltage``
    jobs rescale through :func:`_operating_point`.
    """
    if storage is None:
        return model
    return model.with_voltages(storage.reference.voltage, model.reg_voltage)


def _registers(params: Mapping[str, Any], lifetimes, horizon: int) -> int:
    explicit = params.get("registers")
    if explicit is not None:
        return int(explicit)
    return max(1, max_density(lifetimes.values(), horizon))


def _build_kernel(spec: WorkloadSpec, params: Mapping[str, Any], index: int):
    seed = int(params.get("seed", 2024))
    if spec.count > 1:
        seed = derive_seed(seed, spec.name, index)
    block = kernel_block(
        spec.name, taps=int(params.get("taps", 8)), seed=seed
    )
    schedule = list_schedule(block)
    model, memory = _operating_point(params)
    storage = _storage_spec(params)
    lifetimes = extract_lifetimes(schedule)
    problem = AllocationProblem.from_schedule(
        schedule,
        register_count=_registers(params, lifetimes, schedule.length),
        energy_model=_storage_voltages(model, storage),
        memory=memory,
        storage=storage,
    )
    label = spec.label or spec.name
    if spec.count > 1:
        label = f"{label}#{index}"
    return BuiltWorkload(label, problem, schedule=schedule)


def _build_figure(spec: WorkloadSpec, params: Mapping[str, Any]):
    lifetimes, horizon, activities = figure_example(spec.name)
    model, memory = _operating_point(params)
    storage = _storage_spec(params)
    if activities is not None:
        model = PairwiseSwitchingModel(activities)
        if memory.restricted or params.get("voltage") is not None:
            model = model.with_voltages(memory.voltage, model.reg_voltage)
    problem = AllocationProblem(
        lifetimes,
        _registers(params, lifetimes, horizon),
        horizon,
        energy_model=_storage_voltages(model, storage),
        memory=memory,
        storage=storage,
    )
    return BuiltWorkload(spec.label or spec.name, problem)


def _build_instance(spec: WorkloadSpec, base: Path):
    assert spec.path is not None
    path = Path(spec.path)
    if not path.is_absolute():
        path = base / path
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        problem = problem_from_dict(data)
    except OSError as exc:
        raise ServiceError(f"cannot read instance {path}: {exc}") from None
    except (ValueError, ReproError) as exc:
        raise ServiceError(f"bad instance {path}: {exc}") from None
    return BuiltWorkload(spec.label or path.stem, problem)


def _build_random(spec: WorkloadSpec, params: Mapping[str, Any], index: int):
    seed = int(params.get("seed", 0))
    label = spec.label or spec.name or "random"
    rng = spawn_rng(seed, "manifest", label, index)
    horizon = int(params.get("horizon", 12))
    lifetimes = random_lifetimes(
        rng,
        int(params.get("variables", 8)),
        horizon,
        traced=bool(params.get("traced", False)),
    )
    model, memory = _operating_point(params)
    storage = _storage_spec(params)
    problem = AllocationProblem(
        lifetimes,
        _registers(params, lifetimes, horizon),
        horizon,
        energy_model=_storage_voltages(model, storage),
        memory=memory,
        storage=storage,
    )
    suffix = f"#{index}" if spec.count > 1 else ""
    return BuiltWorkload(f"{label}{suffix}", problem)


@dataclass(frozen=True)
class Manifest:
    """A parsed batch manifest: defaults plus job specs.

    Attributes:
        specs: Declarative job lines, in document order.
        defaults: Manifest-wide parameter defaults.
        base: Directory relative instance paths resolve against.
    """

    specs: tuple[WorkloadSpec, ...]
    defaults: Mapping[str, Any] = field(default_factory=dict)
    base: Path = Path(".")
    schema: str = SCHEMA_V1

    def job_count(self) -> int:
        """Jobs :meth:`build` will produce (replicas expanded), cheaply.

        The admission queue weighs a request by this number before
        anything is materialised, so a huge batch is shed up front
        instead of after paying its construction cost.
        """
        return sum(spec.count for spec in self.specs)

    def build(self) -> list[BuiltWorkload]:
        """Materialise every job into a labelled problem instance.

        Replicated jobs (``count > 1``) expand in place, so the result
        order matches the manifest's job order.
        """
        built: list[BuiltWorkload] = []
        for spec in self.specs:
            params = {**self.defaults, **spec.params}
            for index in range(spec.count):
                if spec.kind == "kernel":
                    built.append(_build_kernel(spec, params, index))
                elif spec.kind == "figure":
                    built.append(_build_figure(spec, params))
                elif spec.kind == "instance":
                    built.append(_build_instance(spec, self.base))
                else:
                    built.append(_build_random(spec, params, index))
        return built


def _parse_spec(data: Mapping[str, Any], position: int) -> WorkloadSpec:
    """Validate and normalise one ``jobs[]`` entry."""
    if not isinstance(data, Mapping):
        raise ServiceError(f"jobs[{position}] is not an object")
    kind = str(data.get("kind", ""))
    if kind not in _KINDS:
        raise ServiceError(
            f"jobs[{position}]: unknown kind {kind!r}; expected {_KINDS}"
        )
    name = str(data.get("name", ""))
    path = data.get("path")
    count = int(data.get("count", 1))
    if count < 1:
        raise ServiceError(f"jobs[{position}]: count must be >= 1")
    if kind in ("kernel", "figure") and not name:
        raise ServiceError(f"jobs[{position}]: {kind} jobs need a name")
    if kind == "instance" and not path:
        raise ServiceError(f"jobs[{position}]: instance jobs need a path")
    if kind == "figure" and count != 1:
        raise ServiceError(
            f"jobs[{position}]: figure jobs are deterministic; count "
            "must be 1"
        )
    params = {
        key: value
        for key, value in data.items()
        if key not in ("kind", "name", "path", "count", "label")
    }
    return WorkloadSpec(
        kind=kind,
        name=name,
        path=str(path) if path is not None else None,
        count=count,
        label=str(data.get("label", "")),
        params=params,
    )


def parse_manifest(
    data: Any,
    base: str | Path = ".",
    source: str = "<manifest>",
) -> Manifest:
    """Validate an already-decoded manifest document.

    Args:
        data: The decoded JSON value (must be a mapping carrying one of
            the ``repro.service/manifest/v1``/``v2`` schemas; only v2
            documents may use the ``storage`` operating-point key).
        base: Directory relative ``instance`` paths resolve against.
        source: Label used in error messages (a path or ``<request>``).

    Raises:
        ServiceError: Wrong shape, wrong schema or a malformed job line.
    """
    if not isinstance(data, Mapping):
        raise ServiceError(f"manifest {source} must be a JSON object")
    schema = data.get("schema")
    if schema not in SCHEMAS:
        raise ServiceError(
            f"manifest {source}: schema {schema!r} is not one of "
            f"{list(SCHEMAS)}"
        )
    jobs = data.get("jobs")
    if not isinstance(jobs, list) or not jobs:
        raise ServiceError(
            f"manifest {source}: jobs must be a non-empty list"
        )
    defaults = data.get("defaults", {})
    if not isinstance(defaults, Mapping):
        raise ServiceError(f"manifest {source}: defaults must be an object")
    specs = tuple(
        _parse_spec(job, position) for position, job in enumerate(jobs)
    )
    if schema == SCHEMA_V1:
        carriers = [
            f"jobs[{position}]"
            for position, spec in enumerate(specs)
            if "storage" in spec.params
        ]
        if "storage" in defaults:
            carriers.insert(0, "defaults")
        if carriers:
            raise ServiceError(
                f"manifest {source}: {', '.join(carriers)} carry a "
                f"'storage' operating point, which needs schema "
                f"{SCHEMA_V2}"
            )
    return Manifest(
        specs=specs, defaults=dict(defaults), base=Path(base), schema=schema
    )


def load_manifest(path: str | Path) -> Manifest:
    """Parse and validate the manifest document at *path*.

    Raises:
        ServiceError: Unreadable file, bad JSON, wrong schema or a
            malformed job line.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ServiceError(f"cannot read manifest {path}: {exc}") from None
    except ValueError as exc:
        raise ServiceError(f"manifest {path} is not JSON: {exc}") from None
    return parse_manifest(data, base=path.parent, source=str(path))
