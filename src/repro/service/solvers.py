"""Graceful-degradation solver ladder with retry and fault injection.

The batch executor never fails a whole batch because one solve went
wrong: each job walks a *ladder* of solving strategies, retrying each
rung with bounded exponential backoff before falling through to the
next, and records exactly which rung produced its result:

1. ``ssp`` — the production successive-shortest-path allocator
   (:func:`repro.core.solver.allocate`), exact;
2. ``cycle_canceling`` — the independent Klein cycle-cancelling solver
   run over the same network (through the lower-bound transformation
   when segments are forced), exact;
3. ``two_phase`` — the Chang–Pedram-style two-phase baseline, an
   *approximate* last resort (skipped when the instance has restricted
   access times or forced segments, which baselines cannot honour).

Infeasibility is not retried or degraded: every rung agrees on it, so
the first :class:`~repro.exceptions.InfeasibleFlowError` settles the
job.  For tests and chaos drills, *inject_faults* forces named rungs to
raise :class:`SolverFault` for a configurable number of attempts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.options import SolveOptions
from repro.core.problem import AllocationProblem
from repro.core.network_builder import build_network
from repro.core.solver import allocate, extract_allocation
from repro.exceptions import InfeasibleFlowError, ServiceError
from repro.flow.cycle_canceling import solve_by_cycle_canceling
from repro.flow.lower_bounds import transform_lower_bounds
from repro.flow.validate import check_flow
from repro.flow.warm_start import WarmStartCache
from repro.obs import trace as obs
from repro.service.cache import CachedResult
from repro.service.canonical import CanonicalInstance

__all__ = [
    "DEFAULT_LADDER",
    "LadderOutcome",
    "SolveSummary",
    "SolverFault",
    "run_ladder",
]

#: Rung order of the graceful-degradation ladder.
DEFAULT_LADDER = ("ssp", "cycle_canceling", "two_phase")


class SolverFault(ServiceError):
    """An (injected or simulated) solver failure on one ladder rung."""


@dataclass(frozen=True)
class SolveSummary:
    """Solution summary in *instance* variable space.

    The plain-data result the executor ships between processes and the
    report serialises; :meth:`to_cached` / :meth:`from_cached` convert
    to and from the canonical-space cache entry.

    Attributes:
        solver: Ladder rung that produced the solution.
        exact: Whether that rung is an exact optimiser.
        objective: Absolute storage energy.
        mem_accesses: Memory accesses of the solution.
        reg_accesses: Register-file accesses of the solution.
        registers_used: Registers actually holding values.
        unused_registers: Registers the solution leaves empty.
        address_count: Distinct memory addresses used.
        residency: ``(variable, segment index, register)`` triples.
        memory_addresses: ``(variable, address)`` pairs.
    """

    solver: str
    exact: bool
    objective: float
    mem_accesses: int
    reg_accesses: int
    registers_used: int
    unused_registers: int
    address_count: int
    residency: tuple[tuple[str, int, int], ...] = ()
    memory_addresses: tuple[tuple[str, int], ...] = ()

    @classmethod
    def from_allocation(cls, allocation, solver: str) -> "SolveSummary":
        """Summarise a flow :class:`~repro.core.allocation.Allocation`."""
        return cls(
            solver=solver,
            exact=True,
            # total_energy == objective except under a multi-bank
            # storage hierarchy, where per-bank deltas are added on top.
            objective=allocation.total_energy,
            mem_accesses=allocation.report.mem_accesses,
            reg_accesses=allocation.report.reg_accesses,
            registers_used=allocation.registers_used,
            unused_registers=allocation.unused_registers,
            address_count=allocation.address_count,
            residency=tuple(
                sorted(
                    (name, index, register)
                    for (name, index), register in allocation.residency.items()
                )
            ),
            memory_addresses=tuple(
                sorted(allocation.memory_addresses.items())
            ),
        )

    @classmethod
    def from_baseline(cls, result, register_count: int) -> "SolveSummary":
        """Summarise a two-phase baseline result (approximate rung)."""
        return cls(
            solver="two_phase",
            exact=False,
            objective=result.objective,
            mem_accesses=result.report.mem_accesses,
            reg_accesses=result.report.reg_accesses,
            registers_used=result.registers_used,
            unused_registers=max(0, register_count - result.registers_used),
            address_count=result.address_count,
            residency=tuple(
                sorted(
                    (lifetime.name, 0, register)
                    for register, chain in enumerate(result.chains)
                    for lifetime in chain
                )
            ),
            memory_addresses=tuple(
                sorted(result.memory_addresses.items())
            ),
        )

    def to_cached(self, canonical: CanonicalInstance) -> CachedResult:
        """The canonical-space cache entry of this summary."""
        renaming = canonical.renaming
        return CachedResult(
            key=canonical.key,
            solver=self.solver,
            exact=self.exact,
            objective=self.objective,
            mem_accesses=self.mem_accesses,
            reg_accesses=self.reg_accesses,
            registers_used=self.registers_used,
            unused_registers=self.unused_registers,
            address_count=self.address_count,
            residency=tuple(
                (renaming.get(name, name), index, register)
                for name, index, register in self.residency
            ),
            memory_addresses=tuple(
                (renaming.get(name, name), address)
                for name, address in self.memory_addresses
            ),
        )

    @classmethod
    def from_cached(
        cls, entry: CachedResult, canonical: CanonicalInstance
    ) -> "SolveSummary":
        """Rebuild a summary, remapped into an instance's own names."""
        remapped = entry.remap(canonical.inverse())
        return cls(
            solver=entry.solver,
            exact=entry.exact,
            objective=entry.objective,
            mem_accesses=entry.mem_accesses,
            reg_accesses=entry.reg_accesses,
            registers_used=entry.registers_used,
            unused_registers=entry.unused_registers,
            address_count=entry.address_count,
            residency=remapped.residency,
            memory_addresses=remapped.memory_addresses,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (tuples become lists)."""
        return {
            "solver": self.solver,
            "exact": self.exact,
            "objective": self.objective,
            "mem_accesses": self.mem_accesses,
            "reg_accesses": self.reg_accesses,
            "registers_used": self.registers_used,
            "unused_registers": self.unused_registers,
            "address_count": self.address_count,
            "residency": [list(item) for item in self.residency],
            "memory_addresses": [
                list(item) for item in self.memory_addresses
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolveSummary":
        """Rebuild a summary serialised by :meth:`to_dict`."""
        return cls(
            solver=str(data["solver"]),
            exact=bool(data["exact"]),
            objective=float(data["objective"]),
            mem_accesses=int(data["mem_accesses"]),
            reg_accesses=int(data["reg_accesses"]),
            registers_used=int(data["registers_used"]),
            unused_registers=int(data["unused_registers"]),
            address_count=int(data["address_count"]),
            residency=tuple(
                (str(name), int(index), int(register))
                for name, index, register in data.get("residency", ())
            ),
            memory_addresses=tuple(
                (str(name), int(address))
                for name, address in data.get("memory_addresses", ())
            ),
        )


@dataclass
class LadderOutcome:
    """Everything one walk of the ladder produced.

    Attributes:
        status: ``"ok"``, ``"infeasible"`` or ``"failed"`` (every rung
            exhausted).
        summary: The solution summary when ``status == "ok"``.
        attempts: Chronological attempt log — one entry per try with the
            rung name, 1-based attempt number and error (``None`` on
            success).
        retries: Same-rung re-tries performed.
        fallbacks: Rung transitions taken after a rung was exhausted.
        error: Message of the last failure when the ladder failed.
        certified: Whether an optimality certificate was checked on the
            returned solution.
    """

    status: str
    summary: SolveSummary | None = None
    attempts: list[dict] = field(default_factory=list)
    retries: int = 0
    fallbacks: int = 0
    error: str | None = None
    certified: bool = False


def _solve_ssp(
    problem: AllocationProblem,
    certify: bool,
    warm_cache: WarmStartCache | None = None,
) -> SolveSummary:
    """Rung 1: the production SSP allocator (optionally warm-started)."""
    options = SolveOptions(certify=certify, warm_cache=warm_cache)
    return SolveSummary.from_allocation(allocate(problem, options), "ssp")


def _solve_cycle_canceling(
    problem: AllocationProblem,
    certify: bool,
    warm_cache: WarmStartCache | None = None,
) -> SolveSummary:
    """Rung 2: independent cycle-cancelling solve of the same network."""
    storage = problem.storage
    if storage is not None and (
        not storage.is_degenerate
        or storage.reference.capacity is not None
        or storage.reference.ports is not None
    ):
        raise SolverFault(
            "cycle-cancelling rung solves the union network only and "
            "cannot honour bank placement or capacity/port limits"
        )
    built = build_network(problem)
    if built.network.has_lower_bounds():
        transform = transform_lower_bounds(
            built.network, built.source, built.sink, built.flow_value
        )
        inner = solve_by_cycle_canceling(
            transform.network,
            transform.super_source,
            transform.super_sink,
            transform.demand,
        )
        flow = transform.recover(inner)
    else:
        flow = solve_by_cycle_canceling(
            built.network, built.source, built.sink, built.flow_value
        )
    check_flow(flow, built.source, built.sink, built.flow_value)
    if certify:
        from repro.verify.certificates import certify_flow

        certify_flow(flow)
    return SolveSummary.from_allocation(
        extract_allocation(built, flow), "cycle_canceling"
    )


def _solve_two_phase(
    problem: AllocationProblem,
    certify: bool,
    warm_cache: WarmStartCache | None = None,
) -> SolveSummary:
    """Rung 3: approximate two-phase baseline (graceful degradation)."""
    if problem.memory.restricted or problem.forced_segments:
        raise SolverFault(
            "two-phase baseline cannot honour restricted access times "
            "or forced segments"
        )
    if problem.storage is not None:
        raise SolverFault(
            "two-phase baseline cannot honour a storage hierarchy"
        )
    from repro.baselines.two_phase import two_phase_allocate

    result = two_phase_allocate(
        problem.lifetimes,
        problem.horizon,
        problem.register_count,
        problem.energy_model,
    )
    return SolveSummary.from_baseline(result, problem.register_count)


_RUNGS: dict[
    str,
    Callable[
        [AllocationProblem, bool, WarmStartCache | None], SolveSummary
    ],
] = {
    "ssp": _solve_ssp,
    "cycle_canceling": _solve_cycle_canceling,
    "two_phase": _solve_two_phase,
}


def run_ladder(
    problem: AllocationProblem,
    *,
    ladder: tuple[str, ...] = DEFAULT_LADDER,
    max_retries: int = 1,
    backoff_base: float = 0.0,
    backoff_cap: float = 1.0,
    inject_faults: Mapping[str, int] | None = None,
    certify: bool = False,
    warm_cache: WarmStartCache | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> LadderOutcome:
    """Solve *problem* down the degradation ladder.

    Each rung is tried up to ``max_retries + 1`` times with bounded
    exponential backoff (``min(backoff_cap, backoff_base * 2**attempt)``
    seconds between tries) before falling through to the next rung.

    Args:
        problem: The instance to solve.
        ladder: Rung names to walk, in order (subset of
            :data:`DEFAULT_LADDER`).
        max_retries: Same-rung retries after the first attempt.
        backoff_base: First retry delay in seconds (0 disables sleeping).
        backoff_cap: Upper bound on any single retry delay.
        inject_faults: Rung name → number of leading attempts to fail
            with :class:`SolverFault` (negative = every attempt).  Used
            by tests and the ``--inject-fault`` chaos option.
        certify: Verify an optimality certificate on exact-rung
            solutions (approximate rungs are never certified).
        warm_cache: Optional :class:`~repro.flow.warm_start.WarmStartCache`
            shared across ladder walks; the SSP rung re-solves cost-only
            perturbations of a seen topology incrementally (the other
            rungs ignore it).  Results are identical with or without.
        sleep: Backoff sleeper (injectable for tests).

    Returns:
        The :class:`LadderOutcome`; ``status`` is ``"failed"`` only when
        every rung was exhausted.

    Raises:
        ServiceError: If *ladder* names an unknown rung.
    """
    for name in ladder:
        if name not in _RUNGS:
            raise ServiceError(
                f"unknown ladder rung {name!r}; expected one of "
                f"{sorted(_RUNGS)}"
            )
    faults = dict(inject_faults or {})
    fault_counts: dict[str, int] = {}
    outcome = LadderOutcome(status="failed")

    for rung_index, name in enumerate(ladder):
        rung = _RUNGS[name]
        if rung_index > 0:
            outcome.fallbacks += 1
            obs.count("service.fallback")
        for attempt in range(max_retries + 1):
            if attempt > 0:
                outcome.retries += 1
                obs.count("service.retry")
                delay = min(backoff_cap, backoff_base * (2 ** (attempt - 1)))
                if delay > 0:
                    sleep(delay)
            try:
                budget = faults.get(name, 0)
                used = fault_counts.get(name, 0)
                obs.count(f"service.rung.{name}.attempts")
                if budget < 0 or used < budget:
                    fault_counts[name] = used + 1
                    raise SolverFault(f"injected fault in {name!r}")
                certify_here = certify and name != "two_phase"
                with obs.span(f"service.solve.{name}"):
                    summary = rung(problem, certify_here, warm_cache)
            except InfeasibleFlowError as exc:
                # Infeasibility is a property of the instance; no rung
                # can do better, so settle the job immediately.
                outcome.attempts.append(
                    {"solver": name, "attempt": attempt + 1,
                     "error": f"infeasible: {exc}"}
                )
                outcome.status = "infeasible"
                outcome.error = str(exc)
                return outcome
            except Exception as exc:  # noqa: BLE001 - the ladder is the
                # error boundary: any rung failure must degrade, not
                # propagate and kill the batch.
                outcome.attempts.append(
                    {"solver": name, "attempt": attempt + 1,
                     "error": f"{type(exc).__name__}: {exc}"}
                )
                outcome.error = f"{type(exc).__name__}: {exc}"
                continue
            outcome.attempts.append(
                {"solver": name, "attempt": attempt + 1, "error": None}
            )
            obs.count(f"service.rung.{name}.ok")
            outcome.status = "ok"
            outcome.summary = summary
            outcome.error = None
            outcome.certified = certify_here
            return outcome
    return outcome
