"""Canonical instance form and content-addressed cache keys.

Two allocation problems that differ only in variable *names* have the
same optimal energy, the same register/memory split and isomorphic
bindings — serving layers should solve them once.  This module computes a
deterministic canonical form for an
:class:`~repro.core.problem.AllocationProblem`:

* every variable is reduced to a name-free record (write time, read
  times, live-out flag, width, value trace, forced-segment pins) and the
  records are sorted by content, which yields a stable renaming
  ``original name -> x0, x1, ...`` that is invariant under renaming of
  the input;
* the energy model is reduced to its normalised parameter fingerprint
  (via :func:`repro.workloads.serialize.energy_model_to_dict`), with
  pairwise switching activities remapped through the same renaming;
* the memory operating point and every modelling switch are embedded
  verbatim.

The canonical form is serialised to compact, key-sorted JSON and hashed
with SHA-256 into the cache key :class:`repro.service.cache.ResultCache`
indexes on.  Any perturbation of an energy-model parameter, the memory
operating point, the register count or a lifetime changes the key; pure
renames do not.

Correctness over recall: equal keys always denote isomorphic instances
(the canonical form *is* an instance, and every problem hashing to it is
a pure renaming of it), so a cache hit can never serve wrong energies.
The reverse is almost — not perfectly — true: under a
:class:`~repro.energy.models.PairwiseSwitchingModel`, variables with
*identical lifetimes* but different activity rows tie in the content
sort, and a rename may then produce a different key.  Such a miss is
conservative (the instance is simply re-solved); name-free models
(static, trace-based activity) are exactly renaming-invariant.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.problem import AllocationProblem
from repro.energy.models import PairwiseSwitchingModel
from repro.workloads.serialize import energy_model_to_dict

__all__ = [
    "CanonicalInstance",
    "cache_key",
    "canonical_form",
    "canonicalize",
]

#: Schema identifier embedded in (and hashed with) every canonical form.
SCHEMA = "repro.service/canonical/v1"


@dataclass(frozen=True)
class CanonicalInstance:
    """A problem's canonical form, cache key and variable renaming.

    Attributes:
        key: Content hash (``sha256:`` + hex digest) of the canonical
            form — the cache key.
        form: The canonical JSON-ready dict (name-free variable records
            in canonical order).
        renaming: Original variable name → canonical name (``x0``,
            ``x1``, ... in canonical order).
    """

    key: str
    form: Mapping[str, Any]
    renaming: Mapping[str, str]

    def inverse(self) -> dict[str, str]:
        """Canonical name → original variable name."""
        return {canon: name for name, canon in self.renaming.items()}


def _variable_record(
    problem: AllocationProblem, name: str
) -> dict[str, Any]:
    """Name-free content record of one variable (sort unit)."""
    lifetime = problem.lifetimes[name]
    forced = sorted(
        index
        for forced_name, index in problem.forced_segments
        if forced_name == name
    )
    return {
        "write": lifetime.write_time,
        "reads": list(lifetime.read_times),
        "live_out": lifetime.live_out,
        "width": lifetime.variable.width,
        "trace": list(lifetime.variable.trace),
        "forced": forced,
    }


def _model_fingerprint(
    problem: AllocationProblem, renaming: Mapping[str, str]
) -> dict[str, Any]:
    """Normalised energy-model parameters, renaming-invariant.

    Built-in models serialise to their parameter dicts; pairwise
    switching activities are remapped through *renaming* (pairs naming
    unknown variables are kept verbatim — they can never be charged).
    Custom model classes fall back to an opaque ``repr`` fingerprint:
    correct (distinct reprs never collide into one key) though not
    renaming-invariant.
    """
    model = problem.energy_model
    data = energy_model_to_dict(model)
    if data is None:
        return {"kind": "opaque", "repr": repr(model)}
    if isinstance(model, PairwiseSwitchingModel):
        data["activities"] = sorted(
            [renaming.get(v1, v1), renaming.get(v2, v2), activity]
            for v1, v2, activity in data["activities"]
        )
    return data


def canonicalize(problem: AllocationProblem) -> CanonicalInstance:
    """Compute the canonical form, cache key and renaming of *problem*.

    The renaming sorts variables by their name-free content record
    (ties — truly interchangeable variables — broken by original name,
    which cannot affect the canonical form).
    """
    records = {
        name: _variable_record(problem, name) for name in problem.lifetimes
    }
    ordered = sorted(
        records,
        key=lambda name: (
            json.dumps(records[name], sort_keys=True, separators=(",", ":")),
            name,
        ),
    )
    renaming = {name: f"x{i}" for i, name in enumerate(ordered)}
    form: dict[str, Any] = {
        "schema": SCHEMA,
        "register_count": problem.register_count,
        "horizon": problem.horizon,
        "graph_style": problem.graph_style,
        "split_at_reads": problem.split_at_reads,
        "allow_unused_registers": problem.allow_unused_registers,
        "memory": {
            "divisor": problem.memory.divisor,
            "voltage": problem.memory.voltage,
            "offset": problem.memory.offset,
        },
        "energy_model": _model_fingerprint(problem, renaming),
        "variables": [records[name] for name in ordered],
    }
    if problem.storage is not None:
        # Only embedded when a hierarchy is attached, so the cache keys
        # of plain (2-level implicit) instances are unchanged across the
        # storage-spec introduction.
        form["storage"] = problem.storage.to_dict()
    digest = hashlib.sha256(
        json.dumps(form, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
    ).hexdigest()
    return CanonicalInstance(
        key=f"sha256:{digest}", form=form, renaming=renaming
    )


def canonical_form(problem: AllocationProblem) -> dict[str, Any]:
    """The canonical JSON-ready dict of *problem* (see module docs)."""
    return dict(canonicalize(problem).form)


def cache_key(problem: AllocationProblem) -> str:
    """The content-addressed cache key of *problem*."""
    return canonicalize(problem).key
