"""Batch allocation service: canonical caching + parallel execution.

This package turns the single-shot solver into a high-throughput serving
layer (the ROADMAP's production-scale direction).  Three pillars:

* :mod:`repro.service.canonical` — a deterministic canonical form for
  :class:`~repro.core.problem.AllocationProblem` (stable, name-free
  variable ordering; normalised energy-model parameters) hashed into a
  content-addressed cache key, so instances identical up to variable
  renaming share one key;
* :mod:`repro.service.cache` — an in-memory LRU over canonical results
  with an optional on-disk JSON store, returning cached allocations with
  provenance (which solver produced them, when they were inserted);
* :mod:`repro.service.executor` — a batch executor
  (``submit``/``map_blocks``/``gather``) over a ``ProcessPoolExecutor``
  with per-job timeouts, bounded exponential-backoff retry, and the
  graceful-degradation solver ladder of :mod:`repro.service.solvers`
  (SSP → cycle-cancelling → two-phase baseline).

:mod:`repro.service.manifest` loads JSON workload manifests and
:mod:`repro.service.report` emits the versioned
``repro.service/batch-report/v1`` document the ``repro-alloc batch``
subcommand prints.

The long-lived serving layer sits on top: :mod:`repro.service.admission`
(token-bucket rate limiting + bounded fair queueing with explicit load
shedding) and :mod:`repro.service.server` (the asyncio HTTP gateway
behind ``repro-alloc serve``, with graceful drain and ``/healthz`` +
``/metrics`` endpoints), backed by the prefix-sharded persistent
:class:`~repro.service.cache.ShardedResultCache`.
"""

from repro.service.admission import AdmissionController, TokenBucket, Verdict
from repro.service.cache import CachedResult, ResultCache, ShardedResultCache
from repro.service.canonical import (
    CanonicalInstance,
    cache_key,
    canonical_form,
    canonicalize,
)
from repro.service.executor import BatchExecutor, JobResult
from repro.service.manifest import (
    BuiltWorkload,
    Manifest,
    WorkloadSpec,
    load_manifest,
    parse_manifest,
)
from repro.service.report import (
    REPORT_SCHEMA,
    build_batch_report,
    render_batch_text,
    report_to_json,
)
from repro.service.server import AllocationServer, ServerConfig, serve
from repro.service.solvers import (
    DEFAULT_LADDER,
    LadderOutcome,
    SolverFault,
    SolveSummary,
    run_ladder,
)

__all__ = [
    "AdmissionController",
    "AllocationServer",
    "BatchExecutor",
    "BuiltWorkload",
    "CachedResult",
    "CanonicalInstance",
    "DEFAULT_LADDER",
    "JobResult",
    "LadderOutcome",
    "Manifest",
    "REPORT_SCHEMA",
    "ResultCache",
    "ServerConfig",
    "ShardedResultCache",
    "SolveSummary",
    "SolverFault",
    "TokenBucket",
    "Verdict",
    "WorkloadSpec",
    "build_batch_report",
    "cache_key",
    "canonical_form",
    "canonicalize",
    "load_manifest",
    "parse_manifest",
    "render_batch_text",
    "report_to_json",
    "run_ladder",
    "serve",
]
