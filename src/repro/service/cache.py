"""Result cache: in-memory LRU + optional on-disk JSON store.

Caches solved allocations under their canonical cache key (see
:mod:`repro.service.canonical`).  Entries are stored in *canonical*
variable space — residency and memory addresses use the canonical names
``x0, x1, ...`` — so one entry serves every instance isomorphic to the
canonical form; :meth:`CachedResult.remap` translates an entry back into
a specific instance's variable names through the inverse renaming.

Layers:

* a bounded in-memory LRU (an :class:`collections.OrderedDict` in
  move-to-end discipline) for hot keys;
* an optional on-disk store (one ``<digest>.json`` file per key under a
  directory) shared between processes and runs — the CI batch-smoke job
  relies on a second run over the same manifest being served from disk.

:class:`ShardedResultCache` extends the disk store for long-lived
serving: entries spread over ``16 ** shard_width`` subdirectories keyed
by the leading hex characters of the canonical digest, so concurrent
worker processes hammering different keys touch different directories
and a directory listing never has to scan one giant flat store.  Writes
are crash- and race-safe in both layouts: each write goes to a
process-unique temporary file first and is published with an atomic
rename, so a concurrent reader sees either the old complete entry or
the new complete entry, never a torn one.

Beside solved allocations the cache also stores **lint verdicts**
(:class:`CachedLint`): the admission gate's static-analysis report for a
canonical instance, written as a sibling ``<digest>.lint.json`` entry so
it shares the sharding and atomic-rename discipline of result entries.
Lint verdicts are keyed by the canonical key *plus* a schedule
fingerprint — the canonical form captures the lifetimes but not the
schedule they came from, and the schedule-aware rules (RA1xx, RA602)
would otherwise serve a stale verdict to an instance with identical
lifetimes but a different schedule.

Every lookup bumps the ``service.cache.hit`` / ``service.cache.miss``
(results) or ``service.lint.cache_hit`` / ``service.lint.cache_miss``
(verdicts) observability counters (:mod:`repro.obs`).
"""

from __future__ import annotations

import itertools
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.exceptions import ServiceError
from repro.obs import trace as obs

__all__ = ["CachedLint", "CachedResult", "ResultCache", "ShardedResultCache"]

#: Per-process sequence making concurrent temp-file names unique.
_TMP_COUNTER = itertools.count()

#: Schema identifier of one serialised cache entry.
ENTRY_SCHEMA = "repro.service/cache-entry/v1"

#: Schema identifier of one serialised lint verdict.
LINT_SCHEMA = "repro.service/lint-entry/v1"


@dataclass(frozen=True)
class CachedResult:
    """One cached allocation outcome, in canonical variable space.

    Attributes:
        key: Canonical cache key the entry is stored under.
        solver: Ladder rung that produced the result (provenance).
        exact: Whether the producing solver is exact (``False`` for the
            two-phase baseline fallback).
        objective: Absolute storage energy of the solution.
        mem_accesses: Memory accesses of the solution.
        reg_accesses: Register-file accesses of the solution.
        registers_used: Registers actually holding values.
        unused_registers: Bypass (empty-register) flow units.
        address_count: Distinct memory addresses used.
        residency: ``(canonical name, segment index, register)`` triples
            for register-resident segments.
        memory_addresses: ``(canonical name, address)`` pairs for
            memory-resident variables.
    """

    key: str
    solver: str
    exact: bool
    objective: float
    mem_accesses: int
    reg_accesses: int
    registers_used: int
    unused_registers: int
    address_count: int
    residency: tuple[tuple[str, int, int], ...] = ()
    memory_addresses: tuple[tuple[str, int], ...] = ()

    def remap(self, inverse: Mapping[str, str]) -> "CachedResult":
        """The same result expressed in an instance's own variable names.

        Args:
            inverse: Canonical name → instance name (see
                :meth:`repro.service.canonical.CanonicalInstance.inverse`).
        """
        return replace(
            self,
            residency=tuple(
                (inverse.get(name, name), index, register)
                for name, index, register in self.residency
            ),
            memory_addresses=tuple(
                (inverse.get(name, name), address)
                for name, address in self.memory_addresses
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view of the entry."""
        return {
            "schema": ENTRY_SCHEMA,
            "key": self.key,
            "solver": self.solver,
            "exact": self.exact,
            "objective": self.objective,
            "mem_accesses": self.mem_accesses,
            "reg_accesses": self.reg_accesses,
            "registers_used": self.registers_used,
            "unused_registers": self.unused_registers,
            "address_count": self.address_count,
            "residency": [list(item) for item in self.residency],
            "memory_addresses": [
                list(item) for item in self.memory_addresses
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CachedResult":
        """Rebuild an entry serialised by :meth:`to_dict`."""
        if data.get("schema") != ENTRY_SCHEMA:
            raise ServiceError(
                f"unknown cache entry schema {data.get('schema')!r}"
            )
        try:
            return cls(
                key=str(data["key"]),
                solver=str(data["solver"]),
                exact=bool(data["exact"]),
                objective=float(data["objective"]),
                mem_accesses=int(data["mem_accesses"]),
                reg_accesses=int(data["reg_accesses"]),
                registers_used=int(data["registers_used"]),
                unused_registers=int(data["unused_registers"]),
                address_count=int(data["address_count"]),
                residency=tuple(
                    (str(name), int(index), int(register))
                    for name, index, register in data.get("residency", ())
                ),
                memory_addresses=tuple(
                    (str(name), int(address))
                    for name, address in data.get("memory_addresses", ())
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed cache entry: {exc}") from None


@dataclass(frozen=True)
class CachedLint:
    """One cached lint verdict for a canonical instance.

    Attributes:
        key: Canonical cache key the verdict is stored under.
        fingerprint: Schedule fingerprint the verdict was computed
            against (empty string when the instance had no schedule).  A
            lookup with a different fingerprint is a miss — the RA1xx /
            RA602 rules depend on the schedule, which the canonical key
            does not capture.
        report: The ``repro.lint/report/v1`` document (diagnostics in
            canonical variable space are *not* attempted — lint verdicts
            describe the instance as submitted, so the report is stored
            verbatim and only served to byte-identical schedules).
    """

    key: str
    fingerprint: str
    report: Mapping[str, Any]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view of the verdict."""
        return {
            "schema": LINT_SCHEMA,
            "key": self.key,
            "fingerprint": self.fingerprint,
            "report": dict(self.report),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CachedLint":
        """Rebuild a verdict serialised by :meth:`to_dict`."""
        if data.get("schema") != LINT_SCHEMA:
            raise ServiceError(
                f"unknown lint entry schema {data.get('schema')!r}"
            )
        try:
            return cls(
                key=str(data["key"]),
                fingerprint=str(data["fingerprint"]),
                report=dict(data["report"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed lint entry: {exc}") from None


@dataclass
class ResultCache:
    """LRU result cache with an optional on-disk JSON store.

    Attributes:
        capacity: Maximum in-memory entries (least recently used entries
            are evicted first; the disk store, when configured, is
            unbounded).
        directory: On-disk store directory, or ``None`` for memory-only
            operation.  Created on first write.
        hits: Number of successful lookups so far.
        misses: Number of failed lookups so far.
    """

    capacity: int = 1024
    directory: Path | str | None = None
    hits: int = 0
    misses: int = 0
    lint_hits: int = 0
    lint_misses: int = 0
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _lint_entries: OrderedDict = field(
        default_factory=OrderedDict, repr=False
    )

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ServiceError(f"capacity must be >= 1, got {self.capacity}")
        if self.directory is not None:
            self.directory = Path(self.directory)

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _digest(key: str) -> str:
        # Keys are "sha256:<hex>"; the digest part is filename-safe.
        return key.split(":", 1)[-1]

    def _path(self, key: str) -> Path:
        """Where a new entry for *key* is written."""
        assert self.directory is not None
        return Path(self.directory) / f"{self._digest(key)}.json"

    def _candidate_paths(self, key: str) -> Iterable[Path]:
        """Paths a lookup probes, in preference order."""
        return (self._path(key),)

    def get(self, key: str) -> CachedResult | None:
        """Look up *key*; promote on hit, fall back to the disk store."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            obs.count("service.cache.hit")
            return entry
        if self.directory is not None:
            for path in self._candidate_paths(key):
                if not path.is_file():
                    continue
                try:
                    entry = CachedResult.from_dict(
                        json.loads(path.read_text(encoding="utf-8"))
                    )
                except (OSError, ValueError, ServiceError):
                    entry = None  # corrupt entries count as misses
                if entry is not None and entry.key == key:
                    self._remember(key, entry)
                    self.hits += 1
                    obs.count("service.cache.hit")
                    return entry
        self.misses += 1
        obs.count("service.cache.miss")
        return None

    def put(self, entry: CachedResult) -> None:
        """Insert *entry* under its own key (memory and, if set, disk)."""
        self._remember(entry.key, entry)
        if self.directory is not None:
            path = self._path(entry.key)
            path.parent.mkdir(parents=True, exist_ok=True)
            text = json.dumps(entry.to_dict(), indent=2, sort_keys=True)
            # Write to a process-unique temp name, then atomically
            # rename: concurrent writers of the same key race benignly
            # (last rename wins, both contents are complete) and
            # concurrent readers never see a torn entry.
            tmp = path.parent / (
                f".{path.stem}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
            )
            tmp.write_text(text + "\n", encoding="utf-8")
            tmp.replace(path)

    def _remember(self, key: str, entry: CachedResult) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    # lint verdicts
    # ------------------------------------------------------------------
    def _lint_path(self, key: str) -> Path:
        """Where the lint verdict for *key* lives on disk.

        Derived from :meth:`_path` so the sharded layout is inherited:
        the verdict is a ``<digest>.lint.json`` sibling of the result
        entry.
        """
        path = self._path(key)
        return path.with_name(f"{self._digest(key)}.lint.json")

    def get_lint(self, key: str, fingerprint: str = "") -> CachedLint | None:
        """Look up the lint verdict of (*key*, *fingerprint*).

        A stored verdict with a different schedule fingerprint is a
        miss: the canonical key alone does not capture the schedule the
        schedule-aware rules analysed.
        """
        entry = self._lint_entries.get(key)
        if entry is None and self.directory is not None:
            path = self._lint_path(key)
            if path.is_file():
                try:
                    entry = CachedLint.from_dict(
                        json.loads(path.read_text(encoding="utf-8"))
                    )
                except (OSError, ValueError, ServiceError):
                    entry = None  # corrupt verdicts count as misses
                if entry is not None and entry.key != key:
                    entry = None
        if entry is not None and entry.fingerprint == fingerprint:
            self._remember_lint(key, entry)
            self.lint_hits += 1
            obs.count("service.lint.cache_hit")
            return entry
        self.lint_misses += 1
        obs.count("service.lint.cache_miss")
        return None

    def put_lint(self, entry: CachedLint) -> None:
        """Insert lint verdict *entry* (memory and, if set, disk)."""
        self._remember_lint(entry.key, entry)
        if self.directory is not None:
            path = self._lint_path(entry.key)
            path.parent.mkdir(parents=True, exist_ok=True)
            text = json.dumps(entry.to_dict(), indent=2, sort_keys=True)
            tmp = path.parent / (
                f".{path.stem}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
            )
            tmp.write_text(text + "\n", encoding="utf-8")
            tmp.replace(path)

    def _remember_lint(self, key: str, entry: CachedLint) -> None:
        self._lint_entries[key] = entry
        self._lint_entries.move_to_end(key)
        while len(self._lint_entries) > self.capacity:
            self._lint_entries.popitem(last=False)

    def stats(self) -> dict[str, int | float]:
        """Hit/miss counters plus the current hit rate."""
        total = self.hits + self.misses
        lint_total = self.lint_hits + self.lint_misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "hit_rate": self.hits / total if total else 0.0,
            "lint_hits": self.lint_hits,
            "lint_misses": self.lint_misses,
            "lint_entries": len(self._lint_entries),
            "lint_hit_rate": (
                self.lint_hits / lint_total if lint_total else 0.0
            ),
        }


@dataclass
class ShardedResultCache(ResultCache):
    """Disk-backed result cache sharded by canonical-key prefix.

    The flat :class:`ResultCache` store keeps every entry in one
    directory; a long-lived server with several worker processes
    filling it would funnel all directory mutations through that single
    inode.  This subclass spreads entries over ``16 ** shard_width``
    subdirectories named by the leading hex characters of the canonical
    digest (``<dir>/<prefix>/<digest>.json``), so writers of different
    keys almost always touch different directories.  Per-entry
    atomicity is inherited from the base class (unique temp file +
    rename), which is what makes concurrent overlapping writers safe —
    see ``tests/service/test_cache.py``.

    Lookups also probe the flat legacy path, so a store written by a
    pre-sharding ``repro-alloc batch`` run keeps serving hits.

    Attributes:
        shard_width: Hex characters of the digest used as the shard
            directory name (1–4; 2 = 256 shards, the default).
    """

    shard_width: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.directory is None:
            raise ServiceError("ShardedResultCache requires a directory")
        if not 1 <= self.shard_width <= 4:
            raise ServiceError(
                f"shard_width must be in 1..4, got {self.shard_width}"
            )

    def _path(self, key: str) -> Path:
        """Sharded location: ``<dir>/<digest prefix>/<digest>.json``."""
        assert self.directory is not None
        digest = self._digest(key)
        return (
            Path(self.directory)
            / digest[: self.shard_width]
            / f"{digest}.json"
        )

    def _candidate_paths(self, key: str) -> Iterable[Path]:
        """The sharded path first, then the flat pre-sharding layout."""
        assert self.directory is not None
        return (
            self._path(key),
            Path(self.directory) / f"{self._digest(key)}.json",
        )

    def shard_for(self, key: str) -> str:
        """Shard directory name *key* lives in (digest prefix)."""
        return self._digest(key)[: self.shard_width]

    def stats(self) -> dict[str, int | float]:
        """Base stats plus on-disk shard occupancy."""
        data = super().stats()
        directory = Path(self.directory) if self.directory else None
        shards = 0
        disk_entries = 0
        lint_disk = 0
        if directory is not None and directory.is_dir():
            for child in directory.iterdir():
                if child.is_dir() and len(child.name) == self.shard_width:
                    shards += 1
                    for item in child.glob("*.json"):
                        if item.name.endswith(".lint.json"):
                            lint_disk += 1
                        else:
                            disk_entries += 1
        data["shards"] = shards
        data["disk_entries"] = disk_entries
        data["lint_disk_entries"] = lint_disk
        return data
