"""Result cache: in-memory LRU + optional on-disk JSON store.

Caches solved allocations under their canonical cache key (see
:mod:`repro.service.canonical`).  Entries are stored in *canonical*
variable space — residency and memory addresses use the canonical names
``x0, x1, ...`` — so one entry serves every instance isomorphic to the
canonical form; :meth:`CachedResult.remap` translates an entry back into
a specific instance's variable names through the inverse renaming.

Layers:

* a bounded in-memory LRU (an :class:`collections.OrderedDict` in
  move-to-end discipline) for hot keys;
* an optional on-disk store (one ``<digest>.json`` file per key under a
  directory) shared between processes and runs — the CI batch-smoke job
  relies on a second run over the same manifest being served from disk.

Every lookup bumps the ``service.cache.hit`` / ``service.cache.miss``
observability counters (:mod:`repro.obs`).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import ServiceError
from repro.obs import trace as obs

__all__ = ["CachedResult", "ResultCache"]

#: Schema identifier of one serialised cache entry.
ENTRY_SCHEMA = "repro.service/cache-entry/v1"


@dataclass(frozen=True)
class CachedResult:
    """One cached allocation outcome, in canonical variable space.

    Attributes:
        key: Canonical cache key the entry is stored under.
        solver: Ladder rung that produced the result (provenance).
        exact: Whether the producing solver is exact (``False`` for the
            two-phase baseline fallback).
        objective: Absolute storage energy of the solution.
        mem_accesses: Memory accesses of the solution.
        reg_accesses: Register-file accesses of the solution.
        registers_used: Registers actually holding values.
        unused_registers: Bypass (empty-register) flow units.
        address_count: Distinct memory addresses used.
        residency: ``(canonical name, segment index, register)`` triples
            for register-resident segments.
        memory_addresses: ``(canonical name, address)`` pairs for
            memory-resident variables.
    """

    key: str
    solver: str
    exact: bool
    objective: float
    mem_accesses: int
    reg_accesses: int
    registers_used: int
    unused_registers: int
    address_count: int
    residency: tuple[tuple[str, int, int], ...] = ()
    memory_addresses: tuple[tuple[str, int], ...] = ()

    def remap(self, inverse: Mapping[str, str]) -> "CachedResult":
        """The same result expressed in an instance's own variable names.

        Args:
            inverse: Canonical name → instance name (see
                :meth:`repro.service.canonical.CanonicalInstance.inverse`).
        """
        return replace(
            self,
            residency=tuple(
                (inverse.get(name, name), index, register)
                for name, index, register in self.residency
            ),
            memory_addresses=tuple(
                (inverse.get(name, name), address)
                for name, address in self.memory_addresses
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view of the entry."""
        return {
            "schema": ENTRY_SCHEMA,
            "key": self.key,
            "solver": self.solver,
            "exact": self.exact,
            "objective": self.objective,
            "mem_accesses": self.mem_accesses,
            "reg_accesses": self.reg_accesses,
            "registers_used": self.registers_used,
            "unused_registers": self.unused_registers,
            "address_count": self.address_count,
            "residency": [list(item) for item in self.residency],
            "memory_addresses": [
                list(item) for item in self.memory_addresses
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CachedResult":
        """Rebuild an entry serialised by :meth:`to_dict`."""
        if data.get("schema") != ENTRY_SCHEMA:
            raise ServiceError(
                f"unknown cache entry schema {data.get('schema')!r}"
            )
        try:
            return cls(
                key=str(data["key"]),
                solver=str(data["solver"]),
                exact=bool(data["exact"]),
                objective=float(data["objective"]),
                mem_accesses=int(data["mem_accesses"]),
                reg_accesses=int(data["reg_accesses"]),
                registers_used=int(data["registers_used"]),
                unused_registers=int(data["unused_registers"]),
                address_count=int(data["address_count"]),
                residency=tuple(
                    (str(name), int(index), int(register))
                    for name, index, register in data.get("residency", ())
                ),
                memory_addresses=tuple(
                    (str(name), int(address))
                    for name, address in data.get("memory_addresses", ())
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed cache entry: {exc}") from None


@dataclass
class ResultCache:
    """LRU result cache with an optional on-disk JSON store.

    Attributes:
        capacity: Maximum in-memory entries (least recently used entries
            are evicted first; the disk store, when configured, is
            unbounded).
        directory: On-disk store directory, or ``None`` for memory-only
            operation.  Created on first write.
        hits: Number of successful lookups so far.
        misses: Number of failed lookups so far.
    """

    capacity: int = 1024
    directory: Path | str | None = None
    hits: int = 0
    misses: int = 0
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ServiceError(f"capacity must be >= 1, got {self.capacity}")
        if self.directory is not None:
            self.directory = Path(self.directory)

    def __len__(self) -> int:
        return len(self._entries)

    def _path(self, key: str) -> Path:
        # Keys are "sha256:<hex>"; the digest part is filename-safe.
        assert self.directory is not None
        return Path(self.directory) / f"{key.split(':', 1)[-1]}.json"

    def get(self, key: str) -> CachedResult | None:
        """Look up *key*; promote on hit, fall back to the disk store."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            obs.count("service.cache.hit")
            return entry
        if self.directory is not None:
            path = self._path(key)
            if path.is_file():
                try:
                    entry = CachedResult.from_dict(
                        json.loads(path.read_text(encoding="utf-8"))
                    )
                except (OSError, ValueError, ServiceError):
                    entry = None  # corrupt entries count as misses
                if entry is not None and entry.key == key:
                    self._remember(key, entry)
                    self.hits += 1
                    obs.count("service.cache.hit")
                    return entry
        self.misses += 1
        obs.count("service.cache.miss")
        return None

    def put(self, entry: CachedResult) -> None:
        """Insert *entry* under its own key (memory and, if set, disk)."""
        self._remember(entry.key, entry)
        if self.directory is not None:
            directory = Path(self.directory)
            directory.mkdir(parents=True, exist_ok=True)
            path = self._path(entry.key)
            text = json.dumps(entry.to_dict(), indent=2, sort_keys=True)
            # Write-then-rename so concurrent readers never see a torn
            # entry (corrupt files degrade to misses anyway).
            tmp = path.with_suffix(".tmp")
            tmp.write_text(text + "\n", encoding="utf-8")
            tmp.replace(path)

    def _remember(self, key: str, entry: CachedResult) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def stats(self) -> dict[str, int | float]:
        """Hit/miss counters plus the current hit rate."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "hit_rate": self.hits / total if total else 0.0,
        }
