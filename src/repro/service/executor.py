"""Parallel batch executor over the cache and the solver ladder.

:class:`BatchExecutor` is the serving engine: jobs are submitted as
:class:`~repro.core.problem.AllocationProblem` instances, deduplicated
through the canonical cache (:mod:`repro.service.canonical` /
:mod:`repro.service.cache`), and the remaining misses are solved — in
process for ``workers == 1``, or fanned out over a
``concurrent.futures.ProcessPoolExecutor`` with configurable chunking —
through the retry/fallback ladder of :mod:`repro.service.solvers`.

Observability: a ``service.batch`` span wraps each gather;
``service.jobs`` / ``service.failures`` / ``service.retry`` /
``service.fallback`` and the cache hit/miss counters accumulate, the
``service.queue_depth`` gauge tracks outstanding work while the pool
drains, and each worker process's wall time accumulates into
``service.worker.<pid>.wall_s``.

Timeouts are enforced per dispatched chunk (``timeout * chunk length``
seconds) on the parent side; a chunk that blows its deadline marks its
jobs ``"timeout"`` without sinking the batch.  The in-process path
cannot preempt a running solve, so timeouts require ``workers > 1``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.core.options import SolveOptions
from repro.core.problem import AllocationProblem
from repro.exceptions import ServiceError
from repro.flow.warm_start import WarmStartCache
from repro.obs import trace as obs
from repro.service.cache import ResultCache
from repro.service.canonical import canonicalize
from repro.service.lintgate import LintGate, LintVerdict
from repro.service.solvers import (
    DEFAULT_LADDER,
    SolveSummary,
    run_ladder,
)
from repro.workloads.random_blocks import spawn_rng

__all__ = ["BatchExecutor", "JobResult"]


@dataclass
class JobResult:
    """Outcome of one batch job.

    Attributes:
        job_id: Caller-visible job identifier.
        index: 0-based submission position within the batch.
        key: Canonical cache key of the instance.
        status: ``"ok"``, ``"infeasible"``, ``"failed"``, ``"timeout"``
            or ``"rejected"`` (blocked by the admission lint gate
            before reaching a solver).
        cached: Whether the result was served from the cache.
        solver: Ladder rung (or cached provenance) that produced the
            result; ``None`` when no rung succeeded.
        summary: Full solution summary in the instance's own variable
            names (``None`` unless ``status == "ok"``).
        attempts: Chronological ladder attempt log (empty for hits).
        retries: Same-rung retries spent on the job.
        fallbacks: Rung transitions spent on the job.
        certified: Whether an optimality certificate was spot-checked.
        wall_time_s: Solve wall time (0 for cache hits).
        worker: PID of the process that solved the job, if any.
        error: Failure message when the job did not succeed.
    """

    job_id: str
    index: int
    key: str
    status: str
    cached: bool = False
    solver: str | None = None
    summary: SolveSummary | None = None
    attempts: list[dict] = field(default_factory=list)
    retries: int = 0
    fallbacks: int = 0
    certified: bool = False
    wall_time_s: float = 0.0
    worker: int | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the job produced a solution."""
        return self.status == "ok"

    @property
    def objective(self) -> float | None:
        """Absolute storage energy, when solved."""
        return self.summary.objective if self.summary else None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view for the batch report.

        Summaries are flattened to their headline numbers; the full
        residency/address maps stay on the in-memory object only.
        """
        data: dict[str, Any] = {
            "job_id": self.job_id,
            "index": self.index,
            "key": self.key,
            "status": self.status,
            "cached": self.cached,
            "solver": self.solver,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "certified": self.certified,
            "attempts": list(self.attempts),
            "wall_time_s": self.wall_time_s,
            "worker": self.worker,
            "error": self.error,
        }
        if self.summary is not None:
            data.update(
                {
                    "exact": self.summary.exact,
                    "objective": self.summary.objective,
                    "mem_accesses": self.summary.mem_accesses,
                    "reg_accesses": self.summary.reg_accesses,
                    "registers_used": self.summary.registers_used,
                    "address_count": self.summary.address_count,
                }
            )
        return data


def _execute_job(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Worker entry point: lint gate + ladder walk for one job.

    Runs in the worker process (or inline for ``workers == 1``); both
    arguments and the returned record are plain picklable data.
    """
    start = time.perf_counter()
    problem: AllocationProblem = payload["problem"]
    record: dict[str, Any] = {
        "status": "failed",
        "summary": None,
        "attempts": [],
        "retries": 0,
        "fallbacks": 0,
        "certified": False,
        "error": None,
        "worker": os.getpid(),
    }
    lint = payload.get("lint")
    try:
        if lint is not None:
            from repro.lint import gate_problem

            gate_problem(problem, fail_on=lint)
        outcome = run_ladder(
            problem,
            ladder=tuple(payload.get("ladder", DEFAULT_LADDER)),
            max_retries=int(payload.get("max_retries", 1)),
            backoff_base=float(payload.get("backoff_base", 0.0)),
            backoff_cap=float(payload.get("backoff_cap", 1.0)),
            inject_faults=payload.get("inject_faults"),
            certify=bool(payload.get("certify", False)),
            warm_cache=payload.get("warm_cache"),
        )
        record.update(
            {
                "status": outcome.status,
                "summary": (
                    outcome.summary.to_dict() if outcome.summary else None
                ),
                "attempts": outcome.attempts,
                "retries": outcome.retries,
                "fallbacks": outcome.fallbacks,
                "certified": outcome.certified,
                "error": outcome.error,
            }
        )
    except Exception as exc:  # noqa: BLE001 - worker boundary: failures
        # become job records, never batch-level crashes.
        record["error"] = f"{type(exc).__name__}: {exc}"
    record["wall_time_s"] = time.perf_counter() - start
    return record


def _execute_chunk(
    payloads: Sequence[Mapping[str, Any]],
) -> list[dict[str, Any]]:
    """Worker entry point for one chunk of jobs (amortises IPC)."""
    return [_execute_job(payload) for payload in payloads]


class BatchExecutor:
    """High-throughput batch front end of the allocator.

    Usage::

        executor = BatchExecutor(workers=4, cache=ResultCache())
        executor.submit(problem_a, job_id="fir-8")
        executor.submit(problem_b)
        results = executor.gather()          # submission order

    or, in one call, ``executor.map_blocks(problems)``.

    Args:
        workers: Worker processes; 1 solves in-process (no pool).
        cache: Shared :class:`~repro.service.cache.ResultCache`
            (``None`` disables caching entirely).
        ladder: Solver rung order (see
            :data:`repro.service.solvers.DEFAULT_LADDER`).
        max_retries: Same-rung retries per job.
        backoff_base: First retry delay, seconds (exponential after).
        backoff_cap: Upper bound on any retry delay, seconds.
        timeout: Per-job time budget, seconds (enforced per chunk on the
            pool path; ``None`` disables).
        chunksize: Jobs dispatched per worker task.
        lint: Optional per-job pre-solve lint gate severity
            (``"error"``, ``"warning"``, ``"note"``), enforced inside
            each worker.  Superseded by *lint_gate*: when a gate is
            configured the worker-side check is skipped (the gate
            already analysed every job, with caching).
        lint_gate: Optional admission-time
            :class:`~repro.service.lintgate.LintGate`.  Every job —
            including result-cache hits — is linted in the parent before
            dispatch; blocking verdicts become ``"rejected"`` results
            that never reach a solver, and all verdicts of the last
            gather are kept on :attr:`lint_verdicts` (submission order)
            for SARIF export.
        certify_fraction: Fraction of jobs (seeded sample) whose
            solutions get an optimality-certificate spot-check.
        seed: Seed of the certify sampler.
        inject_faults: Rung → forced-failure budget, forwarded to
            :func:`repro.service.solvers.run_ladder` (chaos testing).
        warm_cache: Optional
            :class:`~repro.flow.warm_start.WarmStartCache` kept hot
            across gathers.  Only the in-process path (``workers == 1``)
            uses it — kernel state is not shipped to pool workers — so a
            long-lived single-worker server re-solves cost-only sweeps
            incrementally.  Results are identical with or without.
        options: Optional :class:`~repro.core.options.SolveOptions`
            bundle seeding the per-solve knobs: ``options.ladder``,
            ``options.lint`` and ``options.warm_cache`` fill the
            matching executor arguments when those are left at their
            defaults, ``options.certify`` forces a full
            ``certify_fraction`` of 1, and ``options.storage`` is
            attached to every submitted problem that does not already
            carry a hierarchy.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        ladder: tuple[str, ...] = DEFAULT_LADDER,
        max_retries: int = 1,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        timeout: float | None = None,
        chunksize: int = 1,
        lint: str | None = None,
        lint_gate: LintGate | None = None,
        certify_fraction: float = 0.0,
        seed: int = 0,
        inject_faults: Mapping[str, int] | None = None,
        warm_cache: WarmStartCache | None = None,
        options: SolveOptions | None = None,
    ) -> None:
        if options is not None:
            if options.ladder is not None and ladder is DEFAULT_LADDER:
                ladder = tuple(options.ladder)
            if options.lint is not None and lint is None:
                lint = options.lint
            if options.warm_cache is not None and warm_cache is None:
                warm_cache = options.warm_cache
            if options.certify:
                certify_fraction = 1.0
        self.options = options or SolveOptions()
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if chunksize < 1:
            raise ServiceError(f"chunksize must be >= 1, got {chunksize}")
        if max_retries < 0:
            raise ServiceError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if not 0.0 <= certify_fraction <= 1.0:
            raise ServiceError(
                f"certify fraction {certify_fraction} outside [0, 1]"
            )
        if timeout is not None and timeout <= 0:
            raise ServiceError(f"timeout must be positive, got {timeout}")
        self.workers = workers
        self.cache = cache
        self.ladder = tuple(ladder)
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.timeout = timeout
        self.chunksize = chunksize
        self.lint = lint
        self.lint_gate = lint_gate
        self.certify_fraction = certify_fraction
        self.seed = seed
        self.inject_faults = dict(inject_faults or {})
        self.warm_cache = warm_cache
        #: Verdicts of the last :meth:`gather`, in submission order
        #: (empty when no *lint_gate* is configured).
        self.lint_verdicts: list[LintVerdict] = []
        self._pending: list[tuple[int, str, AllocationProblem, Any]] = []
        self._submitted = 0

    def submit(
        self,
        problem: AllocationProblem,
        job_id: str | None = None,
        schedule: Any = None,
    ) -> str:
        """Queue one instance; returns its (possibly generated) job id.

        Args:
            problem: The instance to solve.
            job_id: Caller-visible identifier (generated when omitted).
            schedule: The schedule the lifetimes came from, when the
                caller has one — enables the schedule-aware lint rules
                at the admission gate.
        """
        if job_id is None:
            job_id = f"job-{self._submitted}"
        if self.options.storage is not None and problem.storage is None:
            problem = problem.with_options(storage=self.options.storage)
        self._pending.append((self._submitted, job_id, problem, schedule))
        self._submitted += 1
        return job_id

    def map_blocks(
        self,
        problems: Iterable[AllocationProblem],
        ids: Sequence[str] | None = None,
        schedules: Sequence[Any] | None = None,
    ) -> list[JobResult]:
        """Submit every instance and gather; results in input order."""
        for position, problem in enumerate(problems):
            self.submit(
                problem,
                ids[position] if ids is not None else None,
                schedule=(
                    schedules[position] if schedules is not None else None
                ),
            )
        return self.gather()

    def gather(self) -> list[JobResult]:
        """Run all pending jobs; return results in submission order.

        Cache hits are resolved in the parent without touching a worker;
        misses are solved (and, when successful, inserted into the
        cache).  Never raises for job-level failures — inspect each
        :class:`JobResult`.
        """
        pending, self._pending = self._pending, []
        results: dict[int, JobResult] = {}
        misses: list[tuple[int, str, AllocationProblem, Any]] = []
        self.lint_verdicts = []
        with obs.span("service.batch"):
            with obs.span("service.canonicalize"):
                canonicals = [
                    (index, job_id, problem, canonicalize(problem), schedule)
                    for index, job_id, problem, schedule in pending
                ]
            rejected: set[int] = set()
            if self.lint_gate is not None:
                with obs.span("service.lint_gate"):
                    # Every job is gated — result-cache hits included —
                    # so the verdict list (and any SARIF export) covers
                    # the whole batch, not just the solved remainder.
                    for index, job_id, problem, canonical, sched in canonicals:
                        verdict = self.lint_gate.check(
                            problem,
                            schedule=sched,
                            label=job_id,
                            canonical=canonical,
                        )
                        self.lint_verdicts.append(verdict)
                        if verdict.blocking:
                            rejected.add(index)
                            results[index] = JobResult(
                                job_id=job_id,
                                index=index,
                                key=canonical.key,
                                status="rejected",
                                error=verdict.report.summary(),
                            )
            for index, job_id, problem, canonical, _ in canonicals:
                if index in rejected:
                    continue
                entry = (
                    self.cache.get(canonical.key)
                    if self.cache is not None
                    else None
                )
                if entry is not None:
                    results[index] = JobResult(
                        job_id=job_id,
                        index=index,
                        key=canonical.key,
                        status="ok",
                        cached=True,
                        solver=entry.solver,
                        summary=SolveSummary.from_cached(entry, canonical),
                    )
                else:
                    misses.append((index, job_id, problem, canonical))

            # The warm-start kernel state is process-local (numpy arrays
            # + CSR views); it rides along only on the inline path.
            warm_cache = self.warm_cache if self.workers == 1 else None
            # The admission gate subsumes the worker-side lint check —
            # running both would analyse every miss twice.
            worker_lint = None if self.lint_gate is not None else self.lint
            payloads = [
                (
                    index,
                    {
                        "problem": problem,
                        "ladder": self.ladder,
                        "max_retries": self.max_retries,
                        "backoff_base": self.backoff_base,
                        "backoff_cap": self.backoff_cap,
                        "inject_faults": self.inject_faults,
                        "lint": worker_lint,
                        "certify": self._certify(job_id),
                        "warm_cache": warm_cache,
                    },
                )
                for index, job_id, problem, _ in misses
            ]
            if payloads:
                if self.workers == 1:
                    records = self._run_inline(payloads)
                else:
                    records = self._run_pool(payloads)
            else:
                records = {}

            by_index = {
                index: (job_id, canonical)
                for index, job_id, _, canonical in misses
            }
            for index, record in records.items():
                job_id, canonical = by_index[index]
                result = self._to_result(index, job_id, canonical, record)
                results[index] = result
                if (
                    result.ok
                    and self.cache is not None
                    and result.summary is not None
                ):
                    self.cache.put(result.summary.to_cached(canonical))

            obs.count("service.jobs", len(pending))
            failures = sum(
                1 for result in results.values() if not result.ok
            )
            if failures:
                obs.count("service.failures", failures)
            if rejected:
                obs.count("service.lint.rejected_jobs", len(rejected))
        return [results[index] for index, _, _, _ in pending]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _certify(self, job_id: str) -> bool:
        """Seeded per-job spot-check decision."""
        if self.certify_fraction <= 0.0:
            return False
        if self.certify_fraction >= 1.0:
            return True
        rng = spawn_rng(self.seed, "certify", job_id)
        return rng.random() < self.certify_fraction

    def _run_inline(
        self, payloads: list[tuple[int, dict]]
    ) -> dict[int, dict]:
        """Solve misses in-process (``workers == 1``)."""
        records: dict[int, dict] = {}
        remaining = len(payloads)
        for index, payload in payloads:
            obs.gauge("service.queue_depth", remaining)
            records[index] = _execute_job(payload)
            remaining -= 1
        obs.gauge("service.queue_depth", 0)
        return records

    def _run_pool(
        self, payloads: list[tuple[int, dict]]
    ) -> dict[int, dict]:
        """Fan misses out over a process pool, chunked, with deadlines."""
        records: dict[int, dict] = {}
        chunks = [
            payloads[start:start + self.chunksize]
            for start in range(0, len(payloads), self.chunksize)
        ]
        remaining = len(payloads)
        obs.gauge("service.queue_depth", remaining)
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                (chunk, pool.submit(
                    _execute_chunk, [payload for _, payload in chunk]
                ))
                for chunk in chunks
            ]
            for chunk, future in futures:
                deadline = (
                    self.timeout * len(chunk)
                    if self.timeout is not None
                    else None
                )
                try:
                    chunk_records = future.result(timeout=deadline)
                except FutureTimeout:
                    future.cancel()
                    for index, _ in chunk:
                        records[index] = {
                            "status": "timeout",
                            "summary": None,
                            "attempts": [],
                            "retries": 0,
                            "fallbacks": 0,
                            "certified": False,
                            "error": (
                                f"chunk exceeded its "
                                f"{deadline:.3f}s deadline"
                            ),
                            "wall_time_s": deadline or 0.0,
                            "worker": None,
                        }
                except Exception as exc:  # noqa: BLE001 - pool failures
                    # (e.g. BrokenProcessPool) degrade to job failures.
                    for index, _ in chunk:
                        records[index] = {
                            "status": "failed",
                            "summary": None,
                            "attempts": [],
                            "retries": 0,
                            "fallbacks": 0,
                            "certified": False,
                            "error": f"{type(exc).__name__}: {exc}",
                            "wall_time_s": 0.0,
                            "worker": None,
                        }
                else:
                    for (index, _), record in zip(chunk, chunk_records):
                        records[index] = record
                remaining -= len(chunk)
                obs.gauge("service.queue_depth", remaining)
        return records

    def _to_result(
        self, index: int, job_id: str, canonical, record: Mapping[str, Any]
    ) -> JobResult:
        """Build a :class:`JobResult` from a worker record."""
        summary = None
        if record.get("summary") is not None:
            summary = SolveSummary.from_dict(record["summary"])
        worker = record.get("worker")
        wall = float(record.get("wall_time_s", 0.0))
        if worker is not None:
            obs.count(f"service.worker.{worker}.wall_s", wall)
        return JobResult(
            job_id=job_id,
            index=index,
            key=canonical.key,
            status=str(record.get("status", "failed")),
            cached=False,
            solver=summary.solver if summary else None,
            summary=summary,
            attempts=list(record.get("attempts", ())),
            retries=int(record.get("retries", 0)),
            fallbacks=int(record.get("fallbacks", 0)),
            certified=bool(record.get("certified", False)),
            wall_time_s=wall,
            worker=worker,
            error=record.get("error"),
        )
