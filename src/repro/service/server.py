"""Long-lived allocation server: a zero-dependency asyncio HTTP gateway.

``repro-alloc serve`` turns the one-shot batch machinery
(:mod:`repro.service.executor`) into a streaming front end.  A single
asyncio event loop accepts HTTP/1.1 connections, admission-controls
every submission (:mod:`repro.service.admission`), and a dispatcher
task feeds admitted requests — one at a time, round-robin across
clients — through a :class:`~repro.service.executor.BatchExecutor`
running in a worker thread, so the loop stays responsive (``/healthz``
answers mid-solve) while the solve itself may still fan out over worker
processes.

Why long-lived matters: the server keeps three caches hot across the
whole request stream —

* the sharded persistent result cache
  (:class:`~repro.service.cache.ShardedResultCache`): repeated or
  rename-isomorphic instances are answered without solving;
* the :class:`~repro.flow.warm_start.WarmStartCache` (in-process
  solving only): cost-only perturbations of a seen topology — e.g.
  consecutive points of a voltage sweep — re-solve incrementally in
  O(changed arcs);
* a process-global :class:`~repro.obs.trace.TraceCollector`, exported
  by ``/metrics``, so warm-start hits, solver-ladder rung counts and
  shed totals are observable without restarting anything.

Protocol (HTTP/1.1, ``Connection: close``):

* ``GET /healthz`` — liveness: ``{"status": "ok" | "draining", ...}``.
  Never queued, so it answers even under full overload.
* ``GET /metrics`` — counters/gauges plus admission, cache and server
  stats as JSON (``repro.service/metrics/v1``); append ``?format=text``
  for a Prometheus-style exposition.
* ``POST /v1/batch`` — body is a ``repro.service/manifest/v1`` document
  (same format the batch CLI reads from disk); the response is the
  ``repro.service/batch-report/v1`` JSON for the whole request.
* ``POST /v1/lint`` — same manifest body, but only the static analyser
  runs: the response is a merged SARIF 2.1.0 log with one run per job,
  and nothing is queued or solved.

Admission-time lint gating: unless ``ServerConfig.admission_lint`` is
``None``, every ``/v1/batch`` manifest is built and linted *before*
``admission.admit`` — a provably-bad manifest (an RA6xx infeasibility
certificate, a schedule/lifetime disagreement, ...) is rejected with
``422 Unprocessable Entity`` and a SARIF body carrying the
machine-checkable evidence, without ever occupying a queue slot or a
solver.  Verdicts are cached by canonical digest + schedule fingerprint
(:mod:`repro.service.lintgate`), so re-posting a manifest re-uses its
verdicts (``service.lint.cache_hit``); rejections accumulate on
``service.lint.rejected_requests``.

Backpressure is explicit, never silent: a request that would overflow
the bounded admission queue, exceed its client's token-bucket rate, or
arrive while draining is answered ``503`` with a ``Retry-After`` header
and a JSON body naming the shed reason — and counted on
``service.shed`` / ``service.shed.<reason>``.  ``SIGTERM`` (or
:meth:`AllocationServer.drain`) stops admission, finishes every queued
and in-flight job, then closes the listener — no accepted job is ever
abandoned.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping
from urllib.parse import parse_qs

from repro.exceptions import ServiceError
from repro.flow.warm_start import WarmStartCache
from repro.obs import trace as obs
from repro.lint.sarif import merge_sarif
from repro.obs.export import counter_group, metrics_text
from repro.service.admission import AdmissionController
from repro.service.cache import ResultCache, ShardedResultCache
from repro.service.executor import BatchExecutor
from repro.service.lintgate import LintGate, LintVerdict
from repro.service.manifest import BuiltWorkload, Manifest, parse_manifest
from repro.service.report import build_batch_report

__all__ = ["AllocationServer", "ServerConfig", "serve"]

#: Schema identifier of the ``/metrics`` JSON document.
METRICS_SCHEMA = "repro.service/metrics/v1"

#: Seconds a connection may take to deliver its request head and body.
_READ_TIMEOUT_S = 30.0


@dataclass
class ServerConfig:
    """Tunables of one server process.

    Attributes:
        host: Listen address.
        port: Listen port (0 picks a free one; the bound port is on
            :attr:`AllocationServer.port` after start).
        queue_capacity: Admission queue bound, in *jobs* (a batch
            request occupies one slot per manifest job).
        rate: Per-client sustained admission rate in jobs/second
            (``None`` disables rate limiting).
        burst: Per-client burst allowance (defaults to ``max(rate, 1)``).
        workers: Executor worker processes per request; 1 solves
            in-process, which is also the only mode that can share the
            warm-start cache across requests.
        cache_dir: Directory of the sharded persistent result cache
            (``None`` = in-memory result cache only).
        cache_capacity: In-memory LRU entries of the result cache.
        shard_width: Hex digits of the cache shard prefix (see
            :class:`~repro.service.cache.ShardedResultCache`).
        timeout: Per-job solve budget in seconds (pool mode only).
        retries: Same-rung solver retries per job.
        chunksize: Jobs per worker-pool task.
        lint: Optional per-job pre-solve lint gate severity (legacy
            worker-side check; ignored while *admission_lint* is on).
        admission_lint: Severity threshold of the admission-time lint
            gate (``"error"``, ``"warning"``, ``"note"``; unknown names
            fail closed to ``"error"``).  ``"never"`` lints — verdicts
            still cache and export — without ever rejecting; ``None``
            disables the gate entirely.
        drain_grace: Maximum seconds :meth:`AllocationServer.drain`
            waits for queued + in-flight work before closing anyway.
        max_body_bytes: Largest accepted request body.
    """

    host: str = "127.0.0.1"
    port: int = 8713
    queue_capacity: int = 64
    rate: float | None = None
    burst: float | None = None
    workers: int = 1
    cache_dir: str | Path | None = None
    cache_capacity: int = 1024
    shard_width: int = 2
    timeout: float | None = None
    retries: int = 1
    chunksize: int = 1
    lint: str | None = None
    admission_lint: str | None = "error"
    drain_grace: float = 60.0
    max_body_bytes: int = 8 * 1024 * 1024


@dataclass
class _Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: str
    headers: Mapping[str, str]
    body: bytes
    peer: str


@dataclass
class _Ticket:
    """An admitted batch request waiting for the dispatcher."""

    client: str
    manifest: Manifest
    jobs: int
    future: "asyncio.Future[tuple[int, dict]]"
    #: Workloads already built (and linted) at admission time, so the
    #: dispatcher does not rebuild the manifest; ``None`` when the
    #: admission lint gate is off.
    workloads: "list[BuiltWorkload] | None" = None


class _HttpError(Exception):
    """Maps straight to an HTTP error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class AllocationServer:
    """The serving engine: admission + dispatcher + HTTP front end.

    Usage (inside a running event loop)::

        server = AllocationServer(ServerConfig(port=0))
        await server.start()
        ...                      # serve traffic; server.port is bound
        await server.drain()     # finish queued + in-flight work
        await server.close()

    The blocking :func:`serve` helper wraps this with signal handling
    for the CLI.

    Args:
        config: Tunables (defaults are sensible for local use).
        cache: Result-cache override; by default a
            :class:`~repro.service.cache.ShardedResultCache` when
            ``config.cache_dir`` is set, else an in-memory
            :class:`~repro.service.cache.ResultCache`.
        warm_cache: Warm-start cache override; by default one shared
            :class:`~repro.flow.warm_start.WarmStartCache` when
            ``config.workers == 1``.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        cache: ResultCache | None = None,
        warm_cache: WarmStartCache | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        cfg = self.config
        if cfg.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {cfg.workers}")
        self.admission = AdmissionController(
            capacity=cfg.queue_capacity, rate=cfg.rate, burst=cfg.burst
        )
        if cache is None:
            if cfg.cache_dir is not None:
                cache = ShardedResultCache(
                    capacity=cfg.cache_capacity,
                    directory=cfg.cache_dir,
                    shard_width=cfg.shard_width,
                )
            else:
                cache = ResultCache(capacity=cfg.cache_capacity)
        self.cache = cache
        if warm_cache is None and cfg.workers == 1:
            warm_cache = WarmStartCache()
        self.warm_cache = warm_cache
        #: Admission-time lint gate; ``None`` when disabled by config.
        self.lint_gate: LintGate | None = (
            LintGate(cache=self.cache, fail_on=cfg.admission_lint)
            if cfg.admission_lint is not None
            else None
        )
        self.draining = False
        self.port: int | None = None
        self.requests_served = 0
        self._started = time.monotonic()
        self._inflight_jobs = 0
        self._server: asyncio.base_events.Server | None = None
        self._dispatcher: asyncio.Task | None = None
        self._wakeup: asyncio.Event | None = None
        self._drained: asyncio.Event | None = None
        self._own_collector: obs.TraceCollector | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AllocationServer":
        """Bind the listener and start the dispatcher task."""
        if self._server is not None:
            raise ServiceError("server already started")
        if obs.current() is None:
            # The server owns a process-global collector so /metrics has
            # something to export; an externally installed collector
            # (tests, profiling) takes precedence.
            self._own_collector = obs.TraceCollector()
            obs.install(self._own_collector)
        self._wakeup = asyncio.Event()
        self._drained = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-serve-dispatcher"
        )
        return self

    async def drain(self) -> None:
        """Graceful shutdown: stop admitting, finish accepted work.

        New submissions shed with 503 (reason ``draining``) while every
        already-queued and in-flight job runs to completion (bounded by
        ``config.drain_grace``); then the listener closes.
        """
        if self.draining:
            return
        self.draining = True
        self.admission.start_drain()
        assert self._wakeup is not None and self._drained is not None
        self._wakeup.set()
        try:
            await asyncio.wait_for(
                self._drained.wait(), self.config.drain_grace
            )
        except asyncio.TimeoutError:  # pragma: no cover - defensive
            pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def close(self) -> None:
        """Tear down (drains first if not already drained)."""
        await self.drain()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._dispatcher = None
        if self._own_collector is not None:
            if obs.current() is self._own_collector:
                obs.uninstall()
            self._own_collector = None

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        """Drain the admission queue, one request at a time."""
        assert self._wakeup is not None and self._drained is not None
        while True:
            item = self.admission.next()
            if item is None:
                if self.draining:
                    break
                self._wakeup.clear()
                # Re-check after clearing: an admit may have raced in
                # between our failed dequeue and the clear.
                if self.admission.queued or self.draining:
                    continue
                await self._wakeup.wait()
                continue
            _, ticket = item
            self._inflight_jobs += ticket.jobs
            obs.gauge("service.server.inflight_jobs", self._inflight_jobs)
            try:
                status, payload = await asyncio.to_thread(
                    self._solve_request, ticket
                )
            except Exception as exc:  # noqa: BLE001 - dispatcher must
                # survive any single request failure.
                status, payload = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }
            finally:
                self._inflight_jobs -= ticket.jobs
                obs.gauge(
                    "service.server.inflight_jobs", self._inflight_jobs
                )
            if not ticket.future.done():
                ticket.future.set_result((status, payload))
        self._drained.set()

    def _solve_request(self, ticket: _Ticket) -> tuple[int, dict]:
        """Blocking per-request work; runs in a worker thread."""
        cfg = self.config
        start = time.perf_counter()
        workloads = ticket.workloads
        if workloads is None:
            try:
                workloads = ticket.manifest.build()
            except ServiceError as exc:
                return 400, {"error": str(exc)}
        # The admission gate already linted (and cached verdicts for)
        # every job; re-linting in the workers would analyse each miss
        # twice for no new information.
        worker_lint = None if self.lint_gate is not None else cfg.lint
        executor = BatchExecutor(
            workers=cfg.workers,
            cache=self.cache,
            max_retries=cfg.retries,
            timeout=cfg.timeout,
            chunksize=cfg.chunksize,
            lint=worker_lint,
            warm_cache=self.warm_cache,
        )
        results = executor.map_blocks(
            [w.problem for w in workloads],
            ids=[w.label for w in workloads],
            schedules=[w.schedule for w in workloads],
        )
        wall = time.perf_counter() - start
        self.admission.observe_service_time(wall, max(1, len(results)))
        report = build_batch_report(
            results,
            cache=self.cache,
            wall_time_s=wall,
            workers=cfg.workers,
            manifest=f"<request from {ticket.client}>",
        )
        return 200, report

    # ------------------------------------------------------------------
    # HTTP front end
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Parse one request, route it, write one response, close."""
        status, body, extra = 500, b"{}", {}
        try:
            request = await asyncio.wait_for(
                self._read_request(reader, writer), _READ_TIMEOUT_S
            )
            status, body, extra = await self._route(request)
        except _HttpError as exc:
            status = exc.status
            body = _json_bytes({"error": exc.message})
            extra = {}
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ConnectionError,
        ):
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 - connection handler is
            # the outermost error boundary of the front end.
            status = 500
            body = _json_bytes({"error": f"{type(exc).__name__}: {exc}"})
            extra = {}
        try:
            self._write_response(writer, status, body, extra)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _read_request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> _Request:
        line = await reader.readline()
        if not line:
            raise ConnectionError("empty request")
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            raise _HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length > self.config.max_body_bytes:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length > 0 else b""
        path, _, query = target.partition("?")
        peername = writer.get_extra_info("peername")
        peer = peername[0] if isinstance(peername, tuple) else "unknown"
        return _Request(method, path, query, headers, body, peer)

    async def _route(
        self, request: _Request
    ) -> tuple[int, bytes, dict[str, str]]:
        if request.path == "/healthz":
            if request.method != "GET":
                raise _HttpError(405, "healthz is GET-only")
            return 200, _json_bytes(self.health()), {}
        if request.path == "/metrics":
            if request.method != "GET":
                raise _HttpError(405, "metrics is GET-only")
            form = parse_qs(request.query).get("format", ["json"])[0]
            if form == "text":
                collector = obs.current()
                text = metrics_text(collector) if collector else ""
                return 200, text.encode("utf-8"), {
                    "Content-Type": "text/plain; charset=utf-8"
                }
            return 200, _json_bytes(self.metrics()), {}
        if request.path == "/v1/batch":
            if request.method != "POST":
                raise _HttpError(405, "batch submissions are POST-only")
            return await self._handle_batch(request)
        if request.path == "/v1/lint":
            if request.method != "POST":
                raise _HttpError(405, "lint submissions are POST-only")
            return await self._handle_lint(request)
        raise _HttpError(404, f"no route for {request.path}")

    def _parse_body_manifest(self, request: _Request) -> Manifest:
        """Decode and schema-check a manifest request body."""
        try:
            document = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}")
        try:
            return parse_manifest(document, source="<request>")
        except ServiceError as exc:
            raise _HttpError(400, str(exc))

    def _lint_workloads(
        self, manifest: Manifest, gate: LintGate
    ) -> "tuple[list[BuiltWorkload], list[LintVerdict]]":
        """Build a manifest and gate every workload (blocking call).

        Runs in a worker thread via ``asyncio.to_thread``; manifest
        build failures surface as 400s through :class:`_HttpError`.
        """
        try:
            workloads = manifest.build()
        except ServiceError as exc:
            raise _HttpError(400, str(exc))
        verdicts = [
            gate.check(
                workload.problem,
                schedule=workload.schedule,
                label=workload.label,
            )
            for workload in workloads
        ]
        return workloads, verdicts

    @staticmethod
    def _sarif_body(verdicts: "list[LintVerdict]") -> dict[str, Any]:
        """Merged SARIF log for a verdict list, one run per job."""
        return merge_sarif(
            (verdict.report, verdict.run_properties())
            for verdict in verdicts
        )

    async def _handle_batch(
        self, request: _Request
    ) -> tuple[int, bytes, dict[str, str]]:
        self.requests_served += 1
        obs.count("service.server.requests")
        manifest = self._parse_body_manifest(request)
        workloads: "list[BuiltWorkload] | None" = None
        if self.lint_gate is not None:
            # Lint BEFORE admission: a provably-bad manifest must never
            # occupy a queue slot, let alone a solver.
            workloads, verdicts = await asyncio.to_thread(
                self._lint_workloads, manifest, self.lint_gate
            )
            blocking = [v for v in verdicts if v.blocking]
            if blocking:
                obs.count("service.lint.rejected_requests")
                body = _json_bytes(
                    {
                        "error": (
                            f"manifest rejected by the admission lint "
                            f"gate: {len(blocking)} of "
                            f"{len(verdicts)} job(s) provably bad"
                        ),
                        "rejected_jobs": [v.label for v in blocking],
                        "sarif": self._sarif_body(verdicts),
                    }
                )
                return 422, body, {}
        client = request.headers.get("x-client-id") or request.peer
        loop = asyncio.get_running_loop()
        ticket = _Ticket(
            client=client,
            manifest=manifest,
            jobs=manifest.job_count(),
            future=loop.create_future(),
            workloads=workloads,
        )
        verdict = self.admission.admit(client, ticket, weight=ticket.jobs)
        if not verdict.admitted:
            retry = max(1, math.ceil(verdict.retry_after))
            body = _json_bytes(
                {
                    "error": "request shed by admission control",
                    "reason": verdict.reason,
                    "retry_after_s": round(verdict.retry_after, 3),
                    "shed_jobs": ticket.jobs,
                }
            )
            return 503, body, {"Retry-After": str(retry)}
        assert self._wakeup is not None
        self._wakeup.set()
        status, payload = await ticket.future
        return status, _json_bytes(payload), {}

    async def _handle_lint(
        self, request: _Request
    ) -> tuple[int, bytes, dict[str, str]]:
        """``POST /v1/lint``: analyse a manifest without solving it.

        Always answers 200 with the merged SARIF log — whether the jobs
        are clean or provably bad is in the results, not the status —
        and never touches the admission queue or a solver.
        """
        self.requests_served += 1
        obs.count("service.server.requests")
        obs.count("service.lint.requests")
        manifest = self._parse_body_manifest(request)
        # A lint-only request must report, never reject; reuse the
        # admission gate (shared verdict cache) when it exists.
        gate = self.lint_gate or LintGate(cache=self.cache, fail_on="never")
        _, verdicts = await asyncio.to_thread(
            self._lint_workloads, manifest, gate
        )
        return 200, _json_bytes(self._sarif_body(verdicts)), {}

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        extra_headers: Mapping[str, str],
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        headers = {
            "Content-Type": "application/json; charset=utf-8",
            **extra_headers,
            "Content-Length": str(len(body)),
            "Connection": "close",
        }
        head = f"HTTP/1.1 {status} {reason}\r\n" + "".join(
            f"{name}: {value}\r\n" for name, value in headers.items()
        )
        writer.write(head.encode("latin-1") + b"\r\n" + body)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """The ``/healthz`` document (cheap; no locks beyond counters)."""
        return {
            "status": "draining" if self.draining else "ok",
            "queued_jobs": self.admission.queued,
            "inflight_jobs": self._inflight_jobs,
            "requests": self.requests_served,
            "uptime_s": round(time.monotonic() - self._started, 3),
        }

    def metrics(self) -> dict[str, Any]:
        """The ``/metrics`` JSON document (``repro.service/metrics/v1``).

        Exports every :mod:`repro.obs` counter and gauge accumulated
        since the server started — warm-start hit kinds
        (``solver.warm_start.cold/replay/incremental``), solver-ladder
        rung attempts/successes (``service.rung.*``), shed totals
        (``service.shed*``), task-graph pipeline counters (``dag.*``,
        grouped under ``dag``) — plus admission, result-cache and
        server stats.
        """
        collector = obs.current()
        return {
            "schema": METRICS_SCHEMA,
            "counters": dict(sorted(collector.counters.items()))
            if collector
            else {},
            "gauges": dict(sorted(collector.gauges.items()))
            if collector
            else {},
            "admission": self.admission.stats(),
            "cache": self.cache.stats() if self.cache else {},
            "lint": (
                counter_group(collector, "service.lint")
                if collector
                else {}
            ),
            "dag": counter_group(collector, "dag") if collector else {},
            "server": self.health(),
        }


def _json_bytes(payload: Mapping[str, Any]) -> bytes:
    """Compact UTF-8 JSON encoding of a response payload."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def serve(config: ServerConfig | None = None) -> int:
    """Run a server until SIGTERM/SIGINT, then drain and exit.

    The blocking entry point behind ``repro-alloc serve``: prints the
    bound address once listening, installs signal handlers (best-effort
    on platforms without them), and performs the graceful-drain
    shutdown sequence on the first signal.

    Returns:
        Process exit code (0 after a clean drain).
    """

    async def _main() -> None:
        server = AllocationServer(config)
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # e.g. non-unix platforms
        print(
            f"repro-alloc serve: listening on "
            f"http://{server.config.host}:{server.port} "
            f"(queue={server.config.queue_capacity} jobs, "
            f"workers={server.config.workers})",
            flush=True,
        )
        await stop.wait()
        print("repro-alloc serve: draining...", flush=True)
        await server.drain()
        await server.close()
        print("repro-alloc serve: stopped", flush=True)

    asyncio.run(_main())
    return 0
