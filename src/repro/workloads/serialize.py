"""Problem serialisation: lifetimes and instances as JSON.

Lets users bring their own workloads (e.g. lifetimes extracted from a
production compiler) and archive instances for regression: a compact,
versioned JSON schema with full round-tripping of variables (width,
value traces), lifetimes (write/read times, live-out) and the problem's
knobs (register count, memory operating point, graph options).
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.core.problem import AllocationProblem
from repro.energy.voltage import MemoryConfig
from repro.exceptions import WorkloadError
from repro.ir.values import DataVariable
from repro.lifetimes.intervals import Lifetime

__all__ = [
    "lifetimes_to_dict",
    "lifetimes_from_dict",
    "problem_to_dict",
    "problem_from_dict",
    "dumps",
    "loads",
]

_SCHEMA = "repro-instance-v1"


def lifetimes_to_dict(
    lifetimes: Mapping[str, Lifetime],
) -> list[dict[str, Any]]:
    """Serialise a lifetime map (order preserved)."""
    return [
        {
            "name": lt.name,
            "width": lt.variable.width,
            "trace": list(lt.variable.trace),
            "write": lt.write_time,
            "reads": list(lt.read_times),
            "live_out": lt.live_out,
        }
        for lt in lifetimes.values()
    ]


def lifetimes_from_dict(
    data: list[dict[str, Any]],
) -> dict[str, Lifetime]:
    """Rebuild a lifetime map (validates through the normal constructors)."""
    out: dict[str, Lifetime] = {}
    for entry in data:
        try:
            name = entry["name"]
            variable = DataVariable(
                name,
                int(entry.get("width", 16)),
                tuple(entry.get("trace", ())),
            )
            lifetime = Lifetime(
                variable,
                int(entry["write"]),
                tuple(int(r) for r in entry["reads"]),
                bool(entry.get("live_out", False)),
            )
        except KeyError as exc:
            raise WorkloadError(f"lifetime entry missing field {exc}") from None
        if name in out:
            raise WorkloadError(f"duplicate lifetime {name!r}")
        out[name] = lifetime
    return out


def problem_to_dict(problem: AllocationProblem) -> dict[str, Any]:
    """Serialise an instance (energy model parameters are not embedded —
    models are code; attach them at load time)."""
    return {
        "schema": _SCHEMA,
        "horizon": problem.horizon,
        "register_count": problem.register_count,
        "graph_style": problem.graph_style,
        "split_at_reads": problem.split_at_reads,
        "allow_unused_registers": problem.allow_unused_registers,
        "forced_segments": sorted(
            list(key) for key in problem.forced_segments
        ),
        "memory": {
            "divisor": problem.memory.divisor,
            "voltage": problem.memory.voltage,
            "offset": problem.memory.offset,
        },
        "lifetimes": lifetimes_to_dict(problem.lifetimes),
    }


def problem_from_dict(
    data: Mapping[str, Any], energy_model=None
) -> AllocationProblem:
    """Rebuild an instance serialised by :func:`problem_to_dict`.

    Args:
        data: The parsed JSON object.
        energy_model: Model to attach (defaults to the static model).
    """
    if data.get("schema") != _SCHEMA:
        raise WorkloadError(
            f"unknown instance schema {data.get('schema')!r}"
        )
    memory = data.get("memory", {})
    kwargs: dict[str, Any] = {}
    if energy_model is not None:
        kwargs["energy_model"] = energy_model
    return AllocationProblem(
        lifetimes=lifetimes_from_dict(data["lifetimes"]),
        register_count=int(data["register_count"]),
        horizon=int(data["horizon"]),
        memory=MemoryConfig(
            divisor=int(memory.get("divisor", 1)),
            voltage=float(memory.get("voltage", 5.0)),
            offset=int(memory.get("offset", 1)),
        ),
        graph_style=data.get("graph_style", "adjacent"),
        split_at_reads=bool(data.get("split_at_reads", True)),
        allow_unused_registers=bool(
            data.get("allow_unused_registers", True)
        ),
        forced_segments=frozenset(
            (str(name), int(index))
            for name, index in data.get("forced_segments", ())
        ),
        **kwargs,
    )


def dumps(problem: AllocationProblem, indent: int = 2) -> str:
    """Serialise *problem* to JSON text."""
    return json.dumps(problem_to_dict(problem), indent=indent)


def loads(text: str, energy_model=None) -> AllocationProblem:
    """Parse JSON text produced by :func:`dumps`."""
    return problem_from_dict(json.loads(text), energy_model=energy_model)
