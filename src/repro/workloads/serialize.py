"""Problem serialisation: lifetimes and instances as JSON.

Lets users bring their own workloads (e.g. lifetimes extracted from a
production compiler) and archive instances for regression: a compact,
versioned JSON schema with full round-tripping of variables (width,
value traces), lifetimes (write/read times, live-out) and the problem's
knobs (register count, memory operating point, graph options).

Energy models round-trip too, for the three built-in model classes:
an instance solved against a scaled memory supply (a restricted
:class:`~repro.energy.voltage.MemoryConfig` paired with a model at the
matching ``mem_voltage``) must reload to the *same* energies — the batch
service's canonical cache key (:mod:`repro.service.canonical`) depends on
that.  Custom model classes are not embedded (models are code); attach
them at load time via the ``energy_model`` argument, which always wins
over the embedded parameters.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.core.problem import AllocationProblem
from repro.energy.capacitance import CapacitanceTable
from repro.energy.models import (
    ActivityEnergyModel,
    PairwiseSwitchingModel,
    StaticEnergyModel,
)
from repro.energy.voltage import MemoryConfig
from repro.exceptions import WorkloadError
from repro.ir.values import DataVariable
from repro.lifetimes.intervals import Lifetime

__all__ = [
    "energy_model_to_dict",
    "energy_model_from_dict",
    "lifetimes_to_dict",
    "lifetimes_from_dict",
    "problem_to_dict",
    "problem_from_dict",
    "dumps",
    "loads",
]

_SCHEMA = "repro-instance-v1"

#: Field names of :class:`~repro.energy.capacitance.CapacitanceTable`.
_TABLE_FIELDS = (
    "mem_read",
    "mem_write",
    "reg_read",
    "reg_write",
    "reg_bit",
    "offchip",
)


def energy_model_to_dict(model: Any) -> dict[str, Any] | None:
    """Serialise a built-in energy model's parameters, or ``None``.

    Supports :class:`StaticEnergyModel`, :class:`ActivityEnergyModel` and
    :class:`PairwiseSwitchingModel` (voltages, capacitance table,
    activity knobs).  Custom model classes return ``None`` — they are
    code, not data, and must be re-attached at load time.
    """
    common = {
        "mem_voltage": model.mem_voltage,
        "reg_voltage": model.reg_voltage,
        "table": {
            name: getattr(model.table, name) for name in _TABLE_FIELDS
        },
    }
    if type(model) is StaticEnergyModel:
        return {"kind": "static", **common}
    if type(model) is ActivityEnergyModel:
        return {
            "kind": "activity",
            **common,
            "start_activity": model.start_activity,
        }
    if type(model) is PairwiseSwitchingModel:
        return {
            "kind": "pairwise",
            **common,
            "start_activity": model.start_activity,
            "default_activity": model.default_activity,
            "activities": sorted(
                [v1, v2, activity]
                for (v1, v2), activity in model.activities.items()
            ),
        }
    return None


def energy_model_from_dict(data: Mapping[str, Any]) -> Any:
    """Rebuild an energy model serialised by :func:`energy_model_to_dict`."""
    try:
        kind = data["kind"]
    except KeyError:
        raise WorkloadError("energy model entry missing field 'kind'") from None
    table = CapacitanceTable(
        **{
            name: float(value)
            for name, value in data.get("table", {}).items()
            if name in _TABLE_FIELDS
        }
    )
    common = {
        "table": table,
        "mem_voltage": float(data.get("mem_voltage", 5.0)),
        "reg_voltage": float(data.get("reg_voltage", 5.0)),
    }
    if kind == "static":
        return StaticEnergyModel(**common)
    if kind == "activity":
        return ActivityEnergyModel(
            **common,
            start_activity=float(data.get("start_activity", 0.5)),
        )
    if kind == "pairwise":
        return PairwiseSwitchingModel(
            **common,
            activities={
                (str(v1), str(v2)): float(activity)
                for v1, v2, activity in data.get("activities", ())
            },
            start_activity=float(data.get("start_activity", 0.5)),
            default_activity=float(data.get("default_activity", 0.5)),
        )
    raise WorkloadError(f"unknown energy model kind {kind!r}")


def lifetimes_to_dict(
    lifetimes: Mapping[str, Lifetime],
) -> list[dict[str, Any]]:
    """Serialise a lifetime map (order preserved)."""
    return [
        {
            "name": lt.name,
            "width": lt.variable.width,
            "trace": list(lt.variable.trace),
            "write": lt.write_time,
            "reads": list(lt.read_times),
            "live_out": lt.live_out,
        }
        for lt in lifetimes.values()
    ]


def lifetimes_from_dict(
    data: list[dict[str, Any]],
) -> dict[str, Lifetime]:
    """Rebuild a lifetime map (validates through the normal constructors)."""
    out: dict[str, Lifetime] = {}
    for entry in data:
        try:
            name = entry["name"]
            variable = DataVariable(
                name,
                int(entry.get("width", 16)),
                tuple(entry.get("trace", ())),
            )
            lifetime = Lifetime(
                variable,
                int(entry["write"]),
                tuple(int(r) for r in entry["reads"]),
                bool(entry.get("live_out", False)),
            )
        except KeyError as exc:
            raise WorkloadError(f"lifetime entry missing field {exc}") from None
        if name in out:
            raise WorkloadError(f"duplicate lifetime {name!r}")
        out[name] = lifetime
    return out


def problem_to_dict(problem: AllocationProblem) -> dict[str, Any]:
    """Serialise an instance, embedding built-in energy-model parameters.

    Custom (non built-in) energy models are omitted from the document and
    must be re-attached when loading.
    """
    data = {
        "schema": _SCHEMA,
        "horizon": problem.horizon,
        "register_count": problem.register_count,
        "graph_style": problem.graph_style,
        "split_at_reads": problem.split_at_reads,
        "allow_unused_registers": problem.allow_unused_registers,
        "forced_segments": sorted(
            list(key) for key in problem.forced_segments
        ),
        "memory": {
            "divisor": problem.memory.divisor,
            "voltage": problem.memory.voltage,
            "offset": problem.memory.offset,
        },
        "lifetimes": lifetimes_to_dict(problem.lifetimes),
    }
    if problem.storage is not None:
        data["storage"] = problem.storage.to_dict()
    model = energy_model_to_dict(problem.energy_model)
    if model is not None:
        data["energy_model"] = model
    return data


def problem_from_dict(
    data: Mapping[str, Any], energy_model=None
) -> AllocationProblem:
    """Rebuild an instance serialised by :func:`problem_to_dict`.

    Args:
        data: The parsed JSON object.
        energy_model: Model to attach; wins over any parameters embedded
            in the document.  When ``None``, the embedded parameters are
            used, falling back to the default static model.
    """
    if data.get("schema") != _SCHEMA:
        raise WorkloadError(
            f"unknown instance schema {data.get('schema')!r}"
        )
    memory = data.get("memory", {})
    kwargs: dict[str, Any] = {}
    if energy_model is not None:
        kwargs["energy_model"] = energy_model
    elif "energy_model" in data:
        kwargs["energy_model"] = energy_model_from_dict(data["energy_model"])
    if "storage" in data:
        from repro.core.storage import StorageSpec

        kwargs["storage"] = StorageSpec.from_dict(data["storage"])
    return AllocationProblem(
        lifetimes=lifetimes_from_dict(data["lifetimes"]),
        register_count=int(data["register_count"]),
        horizon=int(data["horizon"]),
        memory=MemoryConfig(
            divisor=int(memory.get("divisor", 1)),
            voltage=float(memory.get("voltage", 5.0)),
            offset=int(memory.get("offset", 1)),
        ),
        graph_style=data.get("graph_style", "adjacent"),
        split_at_reads=bool(data.get("split_at_reads", True)),
        allow_unused_registers=bool(
            data.get("allow_unused_registers", True)
        ),
        forced_segments=frozenset(
            (str(name), int(index))
            for name, index in data.get("forced_segments", ())
        ),
        **kwargs,
    )


def dumps(problem: AllocationProblem, indent: int = 2) -> str:
    """Serialise *problem* to JSON text."""
    return json.dumps(problem_to_dict(problem), indent=indent)


def loads(text: str, energy_model=None) -> AllocationProblem:
    """Parse JSON text produced by :func:`dumps`."""
    return problem_from_dict(json.loads(text), energy_model=energy_model)
