"""Workloads: the paper's examples, DSP kernels, the synthetic RSP
application, and seeded random generators."""

from repro.workloads.dsp_kernels import (
    dct4,
    diffeq,
    elliptic_wave_filter,
    fft_butterfly,
    fir_filter,
    iir_biquad,
    lattice_filter,
    matmul2,
)
from repro.workloads.paper_examples import (
    FIGURE1_ACCESS_TIMES,
    FIGURE1_HORIZON,
    FIGURE3_ACTIVITIES,
    FIGURE3_HORIZON,
    FIGURE4_ACTIVITIES,
    FIGURE4_HORIZON,
    figure1_lifetimes,
    figure3_lifetimes,
    figure4_lifetimes,
)
from repro.workloads.random_blocks import random_dfg, random_lifetimes
from repro.workloads.serialize import (
    dumps,
    energy_model_from_dict,
    energy_model_to_dict,
    lifetimes_from_dict,
    lifetimes_to_dict,
    loads,
    problem_from_dict,
    problem_to_dict,
)
from repro.workloads.rsp import (
    RSP_MAX_DENSITY,
    RSP_RESOURCES,
    rsp_block,
    rsp_schedule,
)

__all__ = [
    "FIGURE1_ACCESS_TIMES",
    "FIGURE1_HORIZON",
    "FIGURE3_ACTIVITIES",
    "FIGURE3_HORIZON",
    "FIGURE4_ACTIVITIES",
    "FIGURE4_HORIZON",
    "RSP_MAX_DENSITY",
    "RSP_RESOURCES",
    "dct4",
    "diffeq",
    "dumps",
    "elliptic_wave_filter",
    "energy_model_from_dict",
    "energy_model_to_dict",
    "fft_butterfly",
    "figure1_lifetimes",
    "figure3_lifetimes",
    "figure4_lifetimes",
    "fir_filter",
    "iir_biquad",
    "lattice_filter",
    "lifetimes_from_dict",
    "lifetimes_to_dict",
    "loads",
    "matmul2",
    "problem_from_dict",
    "problem_to_dict",
    "random_dfg",
    "random_lifetimes",
    "rsp_block",
    "rsp_schedule",
]
