"""Classic DSP dataflow kernels.

The blocks high-level synthesis papers of the era evaluate on: FIR filter,
IIR biquad cascade, the 34-operation elliptic wave filter benchmark
(reconstructed), and a small DCT.  All are expressed through
:class:`~repro.ir.builder.BlockBuilder` and return plain
:class:`~repro.ir.basic_block.BasicBlock` objects ready for scheduling and
allocation.
"""

from __future__ import annotations

import random

from repro.energy.switching import gaussian_dsp_trace, uniform_trace
from repro.exceptions import WorkloadError
from repro.ir.basic_block import BasicBlock
from repro.ir.builder import BlockBuilder
from repro.ir.operations import OpCode

__all__ = [
    "fir_filter",
    "iir_biquad",
    "elliptic_wave_filter",
    "dct4",
    "diffeq",
    "fft_butterfly",
    "lattice_filter",
    "matmul2",
]


def _traces(rng: random.Random | None, width: int, samples: int, dsp: bool):
    """Trace factory: gaussian DSP data when a generator is supplied."""
    if rng is None:
        return lambda: ()
    if dsp:
        return lambda: gaussian_dsp_trace(rng, width, samples)
    return lambda: uniform_trace(rng, width, samples)


def fir_filter(
    taps: int = 8,
    rng: random.Random | None = None,
    width: int = 16,
    samples: int = 32,
) -> BasicBlock:
    """Direct-form FIR filter: ``y = sum_i c_i * x_i``.

    Args:
        taps: Number of filter taps (``>= 2``).
        rng: Optional generator; when given, inputs receive Gaussian DSP
            value traces for the activity model.
        width: Word width.
        samples: Trace length per variable.

    Returns:
        A basic block named ``fir<taps>`` whose output is live out.
    """
    if taps < 2:
        raise WorkloadError(f"FIR needs >= 2 taps, got {taps}")
    trace = _traces(rng, width, samples, dsp=True)
    b = BlockBuilder(f"fir{taps}", default_width=width)
    xs = [b.input(f"x{i}", trace=trace()) for i in range(taps)]
    cs = [b.const(f"c{i}", trace=trace()) for i in range(taps)]
    acc = b.mul(xs[0], cs[0], name="p0")
    for i in range(1, taps):
        product = b.mul(xs[i], cs[i], name=f"p{i}")
        acc = b.add(acc, product, name=f"s{i}")
    b.output(acc)
    b.live_out(acc)
    return b.build()


def iir_biquad(
    sections: int = 2,
    rng: random.Random | None = None,
    width: int = 16,
    samples: int = 32,
) -> BasicBlock:
    """Cascade of direct-form-II IIR biquad sections.

    Each section computes ``w = x + a1*z1 + a2*z2`` and
    ``y = b0*w + b1*z1 + b2*z2`` with state variables ``z1``/``z2`` live
    out (they feed the next invocation).
    """
    if sections < 1:
        raise WorkloadError(f"IIR needs >= 1 section, got {sections}")
    trace = _traces(rng, width, samples, dsp=True)
    b = BlockBuilder(f"iir{sections}", default_width=width)
    x = b.input("x", trace=trace())
    for s in range(sections):
        z1 = b.input(f"z1_{s}", trace=trace())
        z2 = b.input(f"z2_{s}", trace=trace())
        a1 = b.const(f"a1_{s}", trace=trace())
        a2 = b.const(f"a2_{s}", trace=trace())
        b0 = b.const(f"b0_{s}", trace=trace())
        b1 = b.const(f"b1_{s}", trace=trace())
        b2 = b.const(f"b2_{s}", trace=trace())
        t1 = b.mul(a1, z1, name=f"t1_{s}")
        t2 = b.mul(a2, z2, name=f"t2_{s}")
        w0 = b.add(x, t1, name=f"wa_{s}")
        w = b.add(w0, t2, name=f"w_{s}")
        u0 = b.mul(b0, w, name=f"u0_{s}")
        u1 = b.mul(b1, z1, name=f"u1_{s}")
        u2 = b.mul(b2, z2, name=f"u2_{s}")
        y0 = b.add(u0, u1, name=f"ya_{s}")
        x = b.add(y0, u2, name=f"y_{s}")
        # w becomes next z1, old z1 becomes next z2 (state update).
        nz1 = b.move(w, name=f"nz1_{s}")
        nz2 = b.move(z1, name=f"nz2_{s}")
        b.live_out(nz1, nz2)
    b.output(x)
    b.live_out(x)
    return b.build()


def elliptic_wave_filter(
    rng: random.Random | None = None,
    width: int = 16,
    samples: int = 32,
) -> BasicBlock:
    """The fifth-order elliptic wave filter HLS benchmark (reconstructed).

    The classic 34-operation benchmark (26 additions, 8 multiplications)
    used throughout the scheduling/allocation literature.  The exact
    published netlist is reconstructed here with the standard structure:
    two input adders feeding a ladder of add/multiply stages with eight
    state variables (``sv*``) live out.
    """
    trace = _traces(rng, width, samples, dsp=True)
    b = BlockBuilder("ewf", default_width=width)
    inp = b.input("inp", trace=trace())
    sv = {
        k: b.input(f"sv{k}", trace=trace())
        for k in (2, 13, 18, 26, 33, 38, 39, 40)
    }
    c = {k: b.const(f"cf{k}", trace=trace()) for k in range(1, 9)}

    n1 = b.add(inp, sv[2], name="n1")
    n2 = b.add(n1, sv[13], name="n2")
    n3 = b.mul(n2, c[1], name="n3")
    n4 = b.add(n3, sv[2], name="n4")
    n5 = b.add(n3, sv[13], name="n5")
    n6 = b.mul(n5, c[2], name="n6")
    n7 = b.add(n6, sv[18], name="n7")
    n8 = b.add(n7, sv[26], name="n8")
    n9 = b.mul(n8, c[3], name="n9")
    n10 = b.add(n9, sv[18], name="n10")
    n11 = b.add(n9, sv[26], name="n11")
    n12 = b.mul(n11, c[4], name="n12")
    n13 = b.add(n12, sv[33], name="n13")
    n14 = b.add(n13, sv[38], name="n14")
    n15 = b.mul(n14, c[5], name="n15")
    n16 = b.add(n15, sv[33], name="n16")
    n17 = b.add(n15, sv[38], name="n17")
    n18 = b.mul(n17, c[6], name="n18")
    n19 = b.add(n18, sv[39], name="n19")
    n20 = b.add(n19, sv[40], name="n20")
    n21 = b.mul(n20, c[7], name="n21")
    n22 = b.add(n21, sv[39], name="n22")
    n23 = b.add(n21, sv[40], name="n23")
    n24 = b.mul(n23, c[8], name="n24")
    n25 = b.add(n4, n10, name="n25")
    n26 = b.add(n25, n16, name="n26")
    n27 = b.add(n26, n22, name="n27")
    n28 = b.add(n27, n24, name="n28")
    n29 = b.add(n5, n11, name="n29")
    n30 = b.add(n29, n17, name="n30")
    n31 = b.add(n7, n13, name="n31")
    n32 = b.add(n31, n19, name="n32")
    out = b.add(n28, n30, name="n33")
    aux = b.add(n32, n23, name="n34")

    for new_state in (n4, n10, n16, n22, n24, n29, n31, aux):
        b.live_out(new_state)
    b.output(out)
    b.live_out(out)
    return b.build()


def dct4(
    rng: random.Random | None = None,
    width: int = 16,
    samples: int = 32,
) -> BasicBlock:
    """4-point DCT-II butterfly kernel."""
    trace = _traces(rng, width, samples, dsp=True)
    b = BlockBuilder("dct4", default_width=width)
    x = [b.input(f"x{i}", trace=trace()) for i in range(4)]
    c = [b.const(f"k{i}", trace=trace()) for i in range(3)]
    s0 = b.add(x[0], x[3], name="s0")
    s1 = b.add(x[1], x[2], name="s1")
    d0 = b.sub(x[0], x[3], name="d0")
    d1 = b.sub(x[1], x[2], name="d1")
    y0 = b.add(s0, s1, name="y0")
    t0 = b.sub(s0, s1, name="t0")
    y2 = b.mul(t0, c[0], name="y2")
    m0 = b.mul(d0, c[1], name="m0")
    m1 = b.mul(d1, c[2], name="m1")
    y1 = b.add(m0, m1, name="y1")
    y3 = b.sub(m0, m1, name="y3")
    for y in (y0, y1, y2, y3):
        b.output(y)
        b.live_out(y)
    return b.build()


def diffeq(
    rng: random.Random | None = None,
    width: int = 16,
    samples: int = 32,
) -> BasicBlock:
    """The classic HAL differential-equation solver benchmark.

    One Euler step of ``y'' + 3xy' + 3y = 0``: the 11-operation dataflow
    graph (6 multiplications, 2 additions, 2 subtractions, 1 compare)
    used since the original high-level synthesis papers.  State variables
    ``x1``/``y1``/``u1`` and the loop condition are live out.
    """
    trace = _traces(rng, width, samples, dsp=True)
    b = BlockBuilder("diffeq", default_width=width)
    x = b.input("x", trace=trace())
    y = b.input("y", trace=trace())
    u = b.input("u", trace=trace())
    dx = b.input("dx", trace=trace())
    a = b.input("a", trace=trace())
    three = b.const("three", trace=trace())

    t1 = b.mul(u, dx, name="t1")
    t2 = b.mul(three, x, name="t2")
    t3 = b.mul(three, y, name="t3")
    t4 = b.mul(t1, t2, name="t4")
    t5 = b.mul(dx, t3, name="t5")
    t6 = b.sub(u, t4, name="t6")
    u1 = b.sub(t6, t5, name="u1")
    x1 = b.add(x, dx, name="x1")
    t7 = b.mul(u1, dx, name="t7")
    y1 = b.add(y, t7, name="y1")
    c = b.op(OpCode.CMP, (x1, a), name="c")

    for out in (x1, y1, u1, c):
        b.live_out(out)
    b.output(y1)
    return b.build()


def fft_butterfly(
    stages: int = 2,
    rng: random.Random | None = None,
    width: int = 16,
    samples: int = 32,
) -> BasicBlock:
    """Radix-2 decimation-in-time FFT butterflies over ``2**stages`` points.

    Complex data is carried as separate real/imaginary variables; each
    butterfly is one complex multiply (4 MUL + 2 ADD/SUB) and two complex
    add/subs.  A staple memory-intensive HLS workload.
    """
    if stages < 1:
        raise WorkloadError(f"FFT needs >= 1 stage, got {stages}")
    points = 1 << stages
    trace = _traces(rng, width, samples, dsp=True)
    b = BlockBuilder(f"fft{points}", default_width=width)
    re = [b.input(f"re{i}", trace=trace()) for i in range(points)]
    im = [b.input(f"im{i}", trace=trace()) for i in range(points)]
    uid = 0

    def complex_mul(ar, ai, br, bi):
        nonlocal uid
        uid += 1
        rr = b.mul(ar, br, name=f"rr{uid}")
        ii = b.mul(ai, bi, name=f"ii{uid}")
        ri = b.mul(ar, bi, name=f"ri{uid}")
        ir = b.mul(ai, br, name=f"ir{uid}")
        return (
            b.sub(rr, ii, name=f"cr{uid}"),
            b.add(ri, ir, name=f"ci{uid}"),
        )

    for stage in range(stages):
        half = 1 << stage
        tw_r = [
            b.const(f"wr{stage}_{k}", trace=trace()) for k in range(half)
        ]
        tw_i = [
            b.const(f"wi{stage}_{k}", trace=trace()) for k in range(half)
        ]
        new_re: list[str] = list(re)
        new_im: list[str] = list(im)
        for group in range(0, points, half * 2):
            for k in range(half):
                top = group + k
                bottom = group + k + half
                uid += 1
                pr, pi = complex_mul(
                    re[bottom], im[bottom], tw_r[k], tw_i[k]
                )
                new_re[top] = b.add(re[top], pr, name=f"ar{uid}")
                new_im[top] = b.add(im[top], pi, name=f"ai{uid}")
                new_re[bottom] = b.sub(re[top], pr, name=f"sr{uid}")
                new_im[bottom] = b.sub(im[top], pi, name=f"si{uid}")
        re, im = new_re, new_im

    for name in (*re, *im):
        b.output(name)
        b.live_out(name)
    return b.build()


def lattice_filter(
    sections: int = 3,
    rng: random.Random | None = None,
    width: int = 16,
    samples: int = 32,
) -> BasicBlock:
    """Normalised lattice filter sections (an AR analysis ladder).

    Each section: ``f_i = f_{i-1} + k_i * g_{i-1}`` and
    ``g_i = g_{i-1} + k_i * f_{i-1}`` with the reflection coefficient
    ``k_i`` constant and the delayed ``g`` state live out.
    """
    if sections < 1:
        raise WorkloadError(
            f"lattice filter needs >= 1 section, got {sections}"
        )
    trace = _traces(rng, width, samples, dsp=True)
    b = BlockBuilder(f"lattice{sections}", default_width=width)
    f = b.input("f0", trace=trace())
    for i in range(1, sections + 1):
        g_state = b.input(f"g{i - 1}", trace=trace())
        k = b.const(f"k{i}", trace=trace())
        up = b.mul(k, g_state, name=f"up{i}")
        down = b.mul(k, f, name=f"down{i}")
        new_f = b.add(f, up, name=f"f{i}")
        new_g = b.add(g_state, down, name=f"gn{i}")
        b.live_out(new_g)
        f = new_f
    b.output(f)
    b.live_out(f)
    return b.build()


def matmul2(
    rng: random.Random | None = None,
    width: int = 16,
    samples: int = 32,
) -> BasicBlock:
    """2x2 matrix multiply: 8 multiplications, 4 additions."""
    trace = _traces(rng, width, samples, dsp=True)
    b = BlockBuilder("matmul2", default_width=width)
    a = {
        (i, j): b.input(f"a{i}{j}", trace=trace())
        for i in range(2)
        for j in range(2)
    }
    c = {
        (i, j): b.input(f"b{i}{j}", trace=trace())
        for i in range(2)
        for j in range(2)
    }
    for i in range(2):
        for j in range(2):
            p = b.mul(a[(i, 0)], c[(0, j)], name=f"p{i}{j}")
            q = b.mul(a[(i, 1)], c[(1, j)], name=f"q{i}{j}")
            out = b.add(p, q, name=f"y{i}{j}")
            b.output(out)
            b.live_out(out)
    return b.build()
