"""Named workload registry shared by the CLI and the batch service.

Every front end that accepts a workload *name* — ``repro-alloc demo``,
``lint``, ``profile``, the batch manifests of
:mod:`repro.service.manifest` — used to carry its own copy of the
name → factory table.  This module is the single source of truth:

* :func:`kernel_block` builds a synthesised DSP kernel by name;
* :func:`figure_example` returns a paper worked example (pre-built
  lifetime set, horizon and, where defined, switching activities).
"""

from __future__ import annotations

import random
from typing import Mapping, Tuple

from repro.exceptions import WorkloadError
from repro.ir.basic_block import BasicBlock
from repro.lifetimes.intervals import Lifetime
from repro.workloads.dsp_kernels import (
    dct4,
    elliptic_wave_filter,
    fir_filter,
    iir_biquad,
)
from repro.workloads.paper_examples import (
    FIGURE1_HORIZON,
    FIGURE3_ACTIVITIES,
    FIGURE3_HORIZON,
    FIGURE4_ACTIVITIES,
    FIGURE4_HORIZON,
    figure1_lifetimes,
    figure3_lifetimes,
    figure4_lifetimes,
)
from repro.workloads.random_blocks import random_dfg
from repro.workloads.rsp import rsp_block

__all__ = ["FIGURE_NAMES", "KERNEL_NAMES", "figure_example", "kernel_block"]

#: Kernel names accepted by :func:`kernel_block` (CLI choices reuse this).
KERNEL_NAMES: tuple[str, ...] = ("fir", "iir", "ewf", "dct", "rsp", "random")

#: Worked-example names accepted by :func:`figure_example`.
FIGURE_NAMES: tuple[str, ...] = ("fig1", "fig3", "fig4")


def kernel_block(name: str, taps: int = 8, seed: int = 2024) -> BasicBlock:
    """Build the named synthesised kernel with its own seeded generator.

    Args:
        name: One of :data:`KERNEL_NAMES`.
        taps: Tap count (``fir`` only; others ignore it).
        seed: Seed of the kernel's private generator.

    Raises:
        WorkloadError: Unknown kernel name.
    """
    rng = random.Random(seed)
    factories = {
        "fir": lambda: fir_filter(taps, rng),
        "iir": lambda: iir_biquad(2, rng),
        "ewf": lambda: elliptic_wave_filter(rng),
        "dct": lambda: dct4(rng),
        "rsp": lambda: rsp_block(rng=rng),
        "random": lambda: random_dfg(rng, operations=40, traced=True),
    }
    if name not in factories:
        raise WorkloadError(
            f"unknown kernel {name!r}; expected one of {KERNEL_NAMES}"
        )
    return factories[name]()


def figure_example(
    name: str,
) -> Tuple[dict[str, Lifetime], int, Mapping[tuple[str, str], float] | None]:
    """Return the named paper example: (lifetimes, horizon, activities).

    ``activities`` is ``None`` for figure 1 (which has no switching
    data) and the pairwise activity table for figures 3 and 4.

    Raises:
        WorkloadError: Unknown figure name.
    """
    figures = {
        "fig1": (figure1_lifetimes, FIGURE1_HORIZON, None),
        "fig3": (figure3_lifetimes, FIGURE3_HORIZON, FIGURE3_ACTIVITIES),
        "fig4": (figure4_lifetimes, FIGURE4_HORIZON, FIGURE4_ACTIVITIES),
    }
    if name not in figures:
        raise WorkloadError(
            f"unknown figure {name!r}; expected one of {FIGURE_NAMES}"
        )
    factory, horizon, activities = figures[name]
    return factory(), horizon, activities
