"""Named workload registry shared by the CLI and the batch service.

Every front end that accepts a workload *name* — ``repro-alloc demo``,
``lint``, ``profile``, the batch manifests of
:mod:`repro.service.manifest` — used to carry its own copy of the
name → factory table.  This module is the single source of truth:

* :func:`kernel_block` builds a synthesised DSP kernel by name;
* :func:`figure_example` returns a paper worked example (pre-built
  lifetime set, horizon and, where defined, switching activities).
"""

from __future__ import annotations

import random
from typing import Mapping, Tuple

from repro.exceptions import WorkloadError
from repro.ir.basic_block import BasicBlock
from repro.ir.task_graph import Task, TaskGraph
from repro.lifetimes.intervals import Lifetime
from repro.workloads.dsp_kernels import (
    dct4,
    elliptic_wave_filter,
    fir_filter,
    iir_biquad,
)
from repro.workloads.paper_examples import (
    FIGURE1_HORIZON,
    FIGURE3_ACTIVITIES,
    FIGURE3_HORIZON,
    FIGURE4_ACTIVITIES,
    FIGURE4_HORIZON,
    figure1_lifetimes,
    figure3_lifetimes,
    figure4_lifetimes,
)
from repro.workloads.random_blocks import random_dfg
from repro.workloads.rsp import rsp_block

__all__ = [
    "DAG_NAMES",
    "FIGURE_NAMES",
    "KERNEL_NAMES",
    "dag_workload",
    "figure_example",
    "kernel_block",
]

#: Kernel names accepted by :func:`kernel_block` (CLI choices reuse this).
KERNEL_NAMES: tuple[str, ...] = ("fir", "iir", "ewf", "dct", "rsp", "random")

#: Worked-example names accepted by :func:`figure_example`.
FIGURE_NAMES: tuple[str, ...] = ("fig1", "fig3", "fig4")

#: Task-graph workload names accepted by :func:`dag_workload`.
DAG_NAMES: tuple[str, ...] = ("diamond", "fanin")


def kernel_block(name: str, taps: int = 8, seed: int = 2024) -> BasicBlock:
    """Build the named synthesised kernel with its own seeded generator.

    Args:
        name: One of :data:`KERNEL_NAMES`.
        taps: Tap count (``fir`` only; others ignore it).
        seed: Seed of the kernel's private generator.

    Raises:
        WorkloadError: Unknown kernel name.
    """
    rng = random.Random(seed)
    factories = {
        "fir": lambda: fir_filter(taps, rng),
        "iir": lambda: iir_biquad(2, rng),
        "ewf": lambda: elliptic_wave_filter(rng),
        "dct": lambda: dct4(rng),
        "rsp": lambda: rsp_block(rng=rng),
        "random": lambda: random_dfg(rng, operations=40, traced=True),
    }
    if name not in factories:
        raise WorkloadError(
            f"unknown kernel {name!r}; expected one of {KERNEL_NAMES}"
        )
    return factories[name]()


def _diamond_graph(rng: random.Random) -> TaskGraph:
    """Diamond DAG: a front-end task fanning out to two filters that
    rejoin in a back-end accumulation task (the classic cut-heuristic
    stress shape: every cut severs at least one live value)."""
    graph = TaskGraph("diamond")
    graph.add_task(Task("front", fir_filter(4, rng)))
    graph.add_task(Task("left", iir_biquad(1, rng), rate=2))
    graph.add_task(Task("right", dct4(rng)))
    graph.add_task(Task("back", fir_filter(6, rng)))
    graph.add_edge("front", "left")
    graph.add_edge("front", "right")
    graph.add_edge("left", "back")
    graph.add_edge("right", "back")
    return graph


def _fanin_graph(rng: random.Random) -> TaskGraph:
    """Fan-in pipeline: three independent sources converge on a merge
    task whose output feeds a two-stage tail (mixed rates, so the
    per-frame roll-up weights tasks differently)."""
    graph = TaskGraph("fanin")
    graph.add_task(Task("src_a", fir_filter(3, rng)))
    graph.add_task(Task("src_b", iir_biquad(1, rng)))
    graph.add_task(Task("src_c", fir_filter(5, rng), rate=2))
    graph.add_task(Task("merge", dct4(rng)))
    graph.add_task(Task("tail", fir_filter(4, rng)))
    graph.add_edge("src_a", "merge")
    graph.add_edge("src_b", "merge")
    graph.add_edge("src_c", "merge")
    graph.add_edge("merge", "tail")
    return graph


def dag_workload(name: str, seed: int = 2024) -> TaskGraph:
    """Build the named example task graph with its own seeded generator.

    Args:
        name: One of :data:`DAG_NAMES` (``diamond`` — one producer
            fanning out to two parallel filters rejoined by a consumer;
            ``fanin`` — three sources converging on a merge + tail
            pipeline).
        seed: Seed of the graph's private generator (block value traces).

    Raises:
        WorkloadError: Unknown DAG name.
    """
    factories = {
        "diamond": _diamond_graph,
        "fanin": _fanin_graph,
    }
    if name not in factories:
        raise WorkloadError(
            f"unknown task graph {name!r}; expected one of {DAG_NAMES}"
        )
    return factories[name](random.Random(seed))


def figure_example(
    name: str,
) -> Tuple[dict[str, Lifetime], int, Mapping[tuple[str, str], float] | None]:
    """Return the named paper example: (lifetimes, horizon, activities).

    ``activities`` is ``None`` for figure 1 (which has no switching
    data) and the pairwise activity table for figures 3 and 4.

    Raises:
        WorkloadError: Unknown figure name.
    """
    figures = {
        "fig1": (figure1_lifetimes, FIGURE1_HORIZON, None),
        "fig3": (figure3_lifetimes, FIGURE3_HORIZON, FIGURE3_ACTIVITIES),
        "fig4": (figure4_lifetimes, FIGURE4_HORIZON, FIGURE4_ACTIVITIES),
    }
    if name not in figures:
        raise WorkloadError(
            f"unknown figure {name!r}; expected one of {FIGURE_NAMES}"
        )
    factory, horizon, activities = figures[name]
    return factory(), horizon, activities
