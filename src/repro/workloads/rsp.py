"""Synthetic radar signal processing (RSP) kernel.

Substitute for the paper's proprietary "real industrial radar signal
processing example" (table 1).  The kernel is a pulse-compression stage:
a complex-valued matched FIR filter (4 multiplications and 4 additions per
lag), followed by a magnitude-squared detector and a Doppler mixing step —
the canonical inner loop of a pulse-Doppler radar front end.

The paper reports exactly one structural property of its example: a
maximum variable-lifetime density of 26.  :func:`rsp_block` with default
parameters is calibrated (see ``tests/workloads/test_rsp.py``) so that the
list-scheduled kernel reaches that density; the table-1 benchmark then
applies the same treatment as the paper (memory access period 1, 2, 4 with
supplies 5 V down to ~2 V).
"""

from __future__ import annotations

import random

from repro.energy.switching import gaussian_dsp_trace
from repro.exceptions import WorkloadError
from repro.ir.basic_block import BasicBlock
from repro.ir.builder import BlockBuilder
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.resources import ResourceSet
from repro.scheduling.schedule import Schedule

__all__ = ["rsp_block", "rsp_schedule", "RSP_RESOURCES", "RSP_MAX_DENSITY"]

#: Datapath the RSP kernel is scheduled onto (2 multipliers, 2 ALUs).
#: Block I/O is unbudgeted: samples and coefficients are frame-buffered
#: before the block starts, so all inputs are available at step 1 — which
#: also keeps their definition writes on the first memory access step
#: under every restricted-access configuration.
RSP_RESOURCES = ResourceSet({"mult": 2, "alu": 2})

#: The paper's reported maximum lifetime density for the RSP example.
RSP_MAX_DENSITY = 26

#: Default tap count, calibrated so the scheduled kernel's maximum
#: lifetime density equals :data:`RSP_MAX_DENSITY`.
DEFAULT_TAPS = 5


def rsp_block(
    taps: int = DEFAULT_TAPS,
    rng: random.Random | None = None,
    width: int = 16,
    samples: int = 32,
) -> BasicBlock:
    """Build the pulse-compression basic block.

    Args:
        taps: Number of complex matched-filter lags.
        rng: Optional generator; attaches Gaussian DSP value traces for the
            activity model when given.
        width: Word width.
        samples: Trace length.

    Returns:
        A basic block named ``rsp<taps>``; the compressed I/Q outputs, the
        detector magnitude and the Doppler-mixed pair are live out.
    """
    if taps < 2:
        raise WorkloadError(f"RSP kernel needs >= 2 taps, got {taps}")

    def trace() -> tuple[int, ...]:
        if rng is None:
            return ()
        return gaussian_dsp_trace(rng, width, samples)

    b = BlockBuilder(f"rsp{taps}", default_width=width)
    # Complex echo samples and matched-filter coefficients.
    xr = [b.input(f"xr{i}", trace=trace()) for i in range(taps)]
    xi = [b.input(f"xi{i}", trace=trace()) for i in range(taps)]
    cr = [b.const(f"cr{i}", trace=trace()) for i in range(taps)]
    ci = [b.const(f"ci{i}", trace=trace()) for i in range(taps)]

    acc_r: str | None = None
    acc_i: str | None = None
    for i in range(taps):
        # Complex multiply: (xr + j xi) * (cr + j ci).
        rr = b.mul(xr[i], cr[i], name=f"rr{i}")
        ii = b.mul(xi[i], ci[i], name=f"ii{i}")
        ri = b.mul(xr[i], ci[i], name=f"ri{i}")
        ir = b.mul(xi[i], cr[i], name=f"ir{i}")
        pr = b.sub(rr, ii, name=f"pr{i}")
        pi = b.add(ri, ir, name=f"pi{i}")
        acc_r = pr if acc_r is None else b.add(acc_r, pr, name=f"ar{i}")
        acc_i = pi if acc_i is None else b.add(acc_i, pi, name=f"ai{i}")
    assert acc_r is not None and acc_i is not None

    # Magnitude-squared detector with CFAR thresholding: the noise-floor
    # estimate and threshold factor are long-lived values consumed only at
    # the very end, like the calibration constants of a real front end.
    noise = b.input("noise", trace=trace())
    thr = b.const("thr", trace=trace())
    m_r = b.mul(acc_r, b.move(acc_r, name="accr2"), name="mr")
    m_i = b.mul(acc_i, b.move(acc_i, name="acci2"), name="mi")
    mag = b.add(m_r, m_i, name="mag")
    floor = b.mul(noise, thr, name="floor")
    det = b.sub(mag, floor, name="det")

    # Doppler mixing with the local oscillator phasor.
    wr = b.const("wr", trace=trace())
    wi = b.const("wi", trace=trace())
    dr0 = b.mul(acc_r, wr, name="dr0")
    dr1 = b.mul(acc_i, wi, name="dr1")
    di0 = b.mul(acc_r, wi, name="di0")
    di1 = b.mul(acc_i, wr, name="di1")
    dop_r = b.sub(dr0, dr1, name="dop_r")
    dop_i = b.add(di0, di1, name="dop_i")

    for out in (det, dop_r, dop_i):
        b.output(out)
        b.live_out(out)
    return b.build()


def rsp_schedule(
    taps: int = DEFAULT_TAPS,
    rng: random.Random | None = None,
    resources: ResourceSet | None = None,
) -> Schedule:
    """List-schedule the RSP kernel on the standard datapath."""
    block = rsp_block(taps, rng)
    return list_schedule(block, resources or RSP_RESOURCES)
