"""Exact reconstructions of the paper's worked examples (figures 1, 3, 4).

The figures are partially garbled in the available scan, so each instance
below is *reconstructed*: lifetimes are chosen such that our graph
construction reproduces every fact the text states.  The rationale is
documented per instance; the tests in ``tests/core/test_paper_fig*.py``
assert the reproduced facts.

Figure 1 (``figure1_lifetimes``):
    Variables ``a..e`` over control steps 1..7.  Reconstruction honours:
    at step 3 variables ``a``/``b`` are read and ``d`` is written; the
    regions of maximum lifetime density are "from time 2 to time 3" and
    "from time 5 to time 6" (half-points k=2 and k=5); ``c`` and ``d`` are
    read after time 7 by another task (live out); between the regions the
    lifetimes of ``a``/``b`` end and those of ``e``/``d`` begin; under
    restricted access times {1, 3, 5} variable ``c`` becomes a split
    lifetime whose *top* segment is forced register-resident (bold), and
    ``e`` is forced entirely (bold); ``c``/``d`` are splittable at steps
    3/5 into pieces "from 3 to 5 and from 5 to 7".

Figure 3 (``figure3_lifetimes`` / ``FIGURE3_ACTIVITIES``):
    Six variables ``a..f`` with the printed switching-activity table.  The
    geometry is chosen so the *adjacent* graph produces exactly the six
    printed handoff arcs (a->b, a->f, e->b, e->f, b->c, d->e) and no
    others, the optimal prior-art binding is the chain pair
    {a,b,c} / {d,e,f} with total switching 0.5+0.2+0.8 + 0.5+0.1+0.3 = 2.4
    (including the 0.5 start activity per chain, as the paper assumes at
    time 0), and the register file holds one register.

Figure 4 (``figure4_lifetimes`` / ``FIGURE4_ACTIVITIES``):
    Same cast with variable ``f`` *read twice* (the split-lifetime
    example) and a later ``b`` so that ``f -> b`` (cost 0.5) becomes
    compatible, as the printed arc table adds exactly that arc.  Used by
    the figure-4 bench to contrast (a) two-phase on the all-pairs graph,
    (b) simultaneous on the all-pairs graph without splits, and (c)
    simultaneous on the paper's graph with split lifetimes.
"""

from __future__ import annotations

from repro.ir.values import DataVariable
from repro.lifetimes.intervals import Lifetime

__all__ = [
    "figure1_lifetimes",
    "FIGURE1_HORIZON",
    "FIGURE1_ACCESS_TIMES",
    "figure3_lifetimes",
    "FIGURE3_HORIZON",
    "FIGURE3_ACTIVITIES",
    "figure4_lifetimes",
    "FIGURE4_HORIZON",
    "FIGURE4_ACTIVITIES",
]

FIGURE1_HORIZON = 7
#: The restricted memory access times of figure 1c.
FIGURE1_ACCESS_TIMES = frozenset({1, 3, 5})


def _lt(
    name: str,
    write: int,
    reads: tuple[int, ...],
    live_out: bool = False,
    width: int = 16,
) -> Lifetime:
    return Lifetime(DataVariable(name, width), write, reads, live_out)


def figure1_lifetimes() -> dict[str, Lifetime]:
    """The five variables of figure 1 (see module docstring)."""
    lifetimes = {
        "a": _lt("a", 1, (3,)),
        "b": _lt("b", 2, (3,)),
        "c": _lt("c", 2, (8,), live_out=True),
        "d": _lt("d", 3, (8,), live_out=True),
        "e": _lt("e", 5, (6,)),
    }
    return lifetimes


FIGURE3_HORIZON = 6
#: The printed switching-activity arc costs of figure 3 (fraction of bits).
FIGURE3_ACTIVITIES: dict[tuple[str, str], float] = {
    ("a", "b"): 0.2,
    ("a", "f"): 0.5,
    ("e", "b"): 0.6,
    ("e", "f"): 0.3,
    ("b", "c"): 0.8,
    ("d", "e"): 0.1,
}


def figure3_lifetimes() -> dict[str, Lifetime]:
    """The six variables of figure 3.

    Geometry (steps 1..6)::

        d: [1,2]   a: [1,3]   e: [2,3]
        b: [3,4]   f: [3,5]   c: [4,6]

    Density peaks at half-points k=1..4 (D=2); the adjacent graph yields
    exactly the six printed handoff arcs.
    """
    return {
        "a": _lt("a", 1, (3,)),
        "b": _lt("b", 3, (4,)),
        "c": _lt("c", 4, (6,)),
        "d": _lt("d", 1, (2,)),
        "e": _lt("e", 2, (3,)),
        "f": _lt("f", 3, (5,)),
    }


FIGURE4_HORIZON = 7
#: Figure 4 arc costs: figure 3's table plus ``f -> b`` at 0.5.
FIGURE4_ACTIVITIES: dict[tuple[str, str], float] = {
    **FIGURE3_ACTIVITIES,
    ("f", "b"): 0.5,
}


def figure4_lifetimes() -> dict[str, Lifetime]:
    """The six variables of figure 4, with ``f`` read twice.

    Geometry (steps 1..7)::

        d: [1,2]   a: [1,3]      e: [2,3]
        f: [3, reads 4 and 8]    b: [4,6]   c: [6,8]

    ``f``'s first read (step 4) makes ``f -> b`` compatible; its second
    read extends past the block end (live out), so splitting ``f`` at step
    4 lets a register carry its first segment while the tail sits in
    memory — the figure-4c solution with minimal accesses and locations.
    """
    return {
        "a": _lt("a", 1, (3,)),
        "b": _lt("b", 4, (6,)),
        "c": _lt("c", 6, (8,), live_out=True),
        "d": _lt("d", 1, (2,)),
        "e": _lt("e", 2, (3,)),
        "f": _lt("f", 3, (4, 8), live_out=True),
    }
