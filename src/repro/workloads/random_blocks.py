"""Seeded random workload generators.

Two levels of abstraction:

* :func:`random_lifetimes` — draw lifetime sets directly (fast; used by
  property tests and the solver-scaling bench);
* :func:`random_dfg` — draw a layered random dataflow block (exercises the
  full schedule → lifetimes → allocate pipeline).

All generators take an explicit :class:`random.Random` so every experiment
is reproducible from its seed — there is deliberately no module-global RNG
anywhere in this package.  :func:`spawn_rng` derives independent,
process-stable sub-generators from ``(seed, *labels)`` so a consumer like
the fuzz harness can replay iteration *k* of a run without replaying
iterations ``0 .. k-1``.
"""

from __future__ import annotations

import random
import zlib

from repro.energy.switching import gaussian_dsp_trace
from repro.exceptions import WorkloadError
from repro.ir.basic_block import BasicBlock
from repro.ir.builder import BlockBuilder
from repro.ir.values import DataVariable
from repro.lifetimes.intervals import Lifetime

__all__ = ["derive_seed", "spawn_rng", "random_lifetimes", "random_dfg"]


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a stable sub-seed from *seed* and a label path.

    Uses CRC-32 over the rendered ``seed:label:label...`` string rather
    than Python's built-in ``hash`` (which is salted per process), so the
    derivation is identical across runs, machines and interpreter
    versions — the property byte-for-byte reproducible fuzz reports rely
    on.

    Args:
        seed: Master seed.
        *labels: Any reprable path components (strings, case indices...).

    Returns:
        A 32-bit sub-seed, stable for the same inputs.
    """
    text = ":".join([str(seed), *(str(label) for label in labels)])
    return zlib.crc32(text.encode("utf-8"))


def spawn_rng(seed: int, *labels: object) -> random.Random:
    """Return an independent generator seeded by :func:`derive_seed`."""
    return random.Random(derive_seed(seed, *labels))


def random_lifetimes(
    rng: random.Random,
    count: int,
    horizon: int,
    multi_read_fraction: float = 0.25,
    live_out_fraction: float = 0.15,
    max_reads: int = 3,
    width: int = 16,
    traced: bool = False,
    trace_samples: int = 16,
) -> dict[str, Lifetime]:
    """Draw *count* random lifetimes over steps ``1 .. horizon``.

    Args:
        rng: Seeded generator.
        count: Number of variables.
        horizon: Block length ``x``.
        multi_read_fraction: Probability a variable gets extra reads.
        live_out_fraction: Probability a variable is live out (final read
            at ``horizon + 1``).
        max_reads: Upper bound on reads per variable.
        width: Word width of every variable.
        traced: Attach Gaussian DSP value traces (for activity models).
        trace_samples: Trace length when *traced*.

    Returns:
        Variable name → lifetime.
    """
    if count < 1:
        raise WorkloadError(f"count must be >= 1, got {count}")
    if horizon < 2:
        raise WorkloadError(f"horizon must be >= 2, got {horizon}")
    lifetimes: dict[str, Lifetime] = {}
    for i in range(count):
        name = f"v{i}"
        write = rng.randint(1, horizon - 1)
        live_out = rng.random() < live_out_fraction
        reads: set[int] = set()
        if rng.random() < multi_read_fraction:
            wanted = rng.randint(2, max_reads)
        else:
            wanted = 1
        # A variable written at step w has only horizon - w distinct
        # in-block read slots.
        wanted = min(wanted, horizon - write)
        while len(reads) < wanted:
            reads.add(rng.randint(write + 1, horizon))
        if live_out:
            reads.add(horizon + 1)
        trace = (
            gaussian_dsp_trace(rng, width, trace_samples) if traced else ()
        )
        lifetimes[name] = Lifetime(
            DataVariable(name, width, trace),
            write,
            tuple(sorted(reads)),
            live_out,
        )
    return lifetimes


def random_dfg(
    rng: random.Random,
    operations: int = 30,
    inputs: int = 6,
    mul_fraction: float = 0.4,
    live_out_fraction: float = 0.2,
    width: int = 16,
    traced: bool = False,
    trace_samples: int = 16,
) -> BasicBlock:
    """Draw a random layered dataflow block.

    Each operation consumes one or two previously defined variables chosen
    with recency bias (real kernels mostly consume recent values), so
    lifetimes stay realistic rather than uniformly long.

    Returns:
        A basic block named ``rand<operations>``.
    """
    if operations < 1:
        raise WorkloadError(f"operations must be >= 1, got {operations}")
    if inputs < 2:
        raise WorkloadError(f"inputs must be >= 2, got {inputs}")

    def trace() -> tuple[int, ...]:
        return gaussian_dsp_trace(rng, width, trace_samples) if traced else ()

    b = BlockBuilder(f"rand{operations}", default_width=width)
    defined = [b.input(f"in{i}", trace=trace()) for i in range(inputs)]
    for i in range(operations):
        # Recency-biased operand choice.
        def pick() -> str:
            span = max(1, len(defined) // 2)
            return defined[-rng.randint(1, span)]

        lhs = pick()
        rhs = pick()
        if rhs == lhs:
            rhs = rng.choice(defined)
        if rng.random() < mul_fraction:
            out = (
                b.mul(lhs, rhs, name=f"t{i}")
                if rhs != lhs
                else b.shift(lhs, name=f"t{i}")
            )
        else:
            out = (
                b.add(lhs, rhs, name=f"t{i}")
                if rhs != lhs
                else b.neg(lhs, name=f"t{i}")
            )
        defined.append(out)
        if rng.random() < live_out_fraction:
            b.live_out(out)
    # Anything never consumed becomes an output so no variable is dead.
    block = b.build()
    consumed = {read for op in block for read in op.inputs}
    for name in block.variable_names():
        if name not in consumed and name not in block.live_out:
            b.output(name)
            b.live_out(name)
    return b.build()
