"""Solver-free infeasibility proofs over the allocation flow network.

Every allocation network is a DAG whose arcs point forward in time: node
times are ``0`` for the source ``s``, ``seg.start`` for a write node,
``seg.end`` for a read node and ``horizon + 1`` for the sink ``t``.  For
any half-point ``k`` (``0 .. horizon``) the node set
``{v : time(v) <= k}`` therefore contains ``s``, excludes ``t``, and has
*no* incoming arcs — it is an ``s``-``t`` cut crossed only left to
right.  Two exact consequences, each checkable without solving a flow:

* the fixed flow value ``R`` must fit through every cut, so
  ``cut_capacity(k) < R`` proves infeasibility (max-flow/min-cut upper
  bound); and
* every crossing arc must carry at least its lower bound, so
  ``forced_flow(k) > R`` proves infeasibility — the network-flow form of
  the section 5.2 forced-density argument (restricted memory access
  times pin segments into the register file, a Hall-style counting
  obstruction).

A third proof needs no counting at all: a forced segment whose write
node is unreachable from ``s`` (or whose read node cannot reach ``t``)
can never receive its mandatory unit of flow.

All three are *sound but not complete*: a certificate implies the solver
must report :class:`~repro.exceptions.InfeasibleFlowError`, but an
instance may be infeasible for subtler reasons with no certificate here.
The fuzz harness (:mod:`repro.verify.fuzz`) enforces the soundness
direction against the real solver on every generated instance.

Certificates are JSON-ready (they ride on RA6xx diagnostics as
``evidence``) and carry enough data for :func:`check_certificate` to
re-verify them through an independent per-object derivation — the
vectorized profile that *found* the proof is never trusted to *confirm*
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.obs import trace as obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network_builder import BuiltNetwork
    from repro.core.problem import AllocationProblem

__all__ = [
    "InfeasibilityCertificate",
    "node_times",
    "cut_capacity_profile",
    "forced_flow_profile",
    "certificates_from",
    "find_certificates",
    "prove_infeasible",
    "check_certificate",
]


@dataclass(frozen=True)
class InfeasibilityCertificate:
    """A machine-checkable proof that an instance has no feasible flow.

    Attributes:
        kind: Proof family — ``"forced-pressure"`` (cut lower bounds
            exceed ``R``), ``"cut-capacity"`` (cut capacity below ``R``),
            ``"unreachable-forced-segment"`` (a mandatory arc is
            disconnected from a terminal) or ``"bank-capacity"`` (the
            lifetime density exceeds the register file plus every bank
            capacity under a fully-capped storage hierarchy).
        half_point: The cut position ``k`` (the cut separates times
            ``<= k`` from ``> k``); ``None`` for reachability proofs.
        required: Flow the network must carry across the obstruction
            (``R`` for capacity cuts, the forced crossing flow for
            pressure cuts, ``1`` for reachability).
        available: Flow the obstruction admits (cut capacity, ``R``, or
            ``0``).
        detail: Human-readable one-line statement of the proof.
        witness: Sorted names/keys substantiating the proof — the forced
            variables alive at the cut, or the disconnected segment key.
    """

    kind: str
    half_point: int | None
    required: int
    available: int
    detail: str
    witness: tuple[str, ...] = field(default=())

    def to_dict(self) -> dict:
        """JSON-ready view (diagnostic ``evidence`` payload)."""
        return {
            "certificate": self.kind,
            "half_point": self.half_point,
            "required": self.required,
            "available": self.available,
            "detail": self.detail,
            "witness": list(self.witness),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InfeasibilityCertificate":
        """Rebuild a certificate serialised by :meth:`to_dict`."""
        return cls(
            kind=str(data["certificate"]),
            half_point=data.get("half_point"),
            required=int(data["required"]),
            available=int(data["available"]),
            detail=str(data.get("detail", "")),
            witness=tuple(data.get("witness", ())),
        )

    def check(self, problem: "AllocationProblem") -> bool:
        """Re-verify this proof against *problem* (independent path)."""
        return check_certificate(problem, self)


# ----------------------------------------------------------------------
# time-cut profiles (vectorized discovery path)
# ----------------------------------------------------------------------
def node_times(built: "BuiltNetwork") -> np.ndarray | None:
    """Per-node time map of *built* (``None`` for foreign networks).

    Indexed by dense node id under the fixed numbering ``s=0, t=1,
    w_i=2+2i, r_i=3+2i``: the source sits at time ``0``, the sink at
    ``horizon + 1``, a write node at its segment's start and a read node
    at its segment's end.  Returns ``None`` when the network was not
    built with role bookkeeping (nothing to anchor the numbering to).
    """
    roles = built.roles
    if roles is None:
        return None
    problem = built.problem
    segments = [seg for segs in problem.segments.values() for seg in segs]
    k = roles.num_segments
    if len(segments) != k or built.network.num_nodes != 2 + 2 * k:
        return None
    times = np.empty(2 + 2 * k, dtype=np.int64)
    times[0] = 0
    times[1] = problem.horizon + 1
    if k:
        times[2::2] = [seg.start for seg in segments]
        times[3::2] = [seg.end for seg in segments]
    return times


def _cut_profile(built: "BuiltNetwork", column: str) -> np.ndarray | None:
    """Sum an arc *column* over every time cut with one diff-array pass.

    ``profile[k]`` = Σ column over arcs crossing the half-point cut at
    ``k``, for ``k = 0 .. horizon``.  Returns ``None`` when any arc runs
    backward in time — the cuts are then not one-directional and neither
    bound below is sound, so callers must prove nothing.
    """
    times = node_times(built)
    if times is None:
        return None
    arrays = built.network.arrays()
    t0 = times[arrays.tails]
    t1 = times[arrays.heads]
    horizon = built.problem.horizon
    if t0.size and (
        int((t1 - t0).min()) < 0
        or int(t0.min()) < 0
        or int(t1.max()) > horizon + 1
    ):
        # Backward arcs void the one-directional cut argument; out-of-
        # range times would corrupt the diff array.  Prove nothing.
        obs.count("lint.prove.nonforward_networks")
        return None
    diff = np.zeros(horizon + 2, dtype=np.int64)
    values = getattr(arrays, column)
    crossing = t1 > t0  # an arc spans every half-point k in [t0, t1)
    np.add.at(diff, t0[crossing], values[crossing])
    np.subtract.at(diff, t1[crossing], values[crossing])
    return np.cumsum(diff)[: horizon + 1]


def cut_capacity_profile(built: "BuiltNetwork") -> np.ndarray | None:
    """Max-flow upper bound per half-point cut (min over it bounds R)."""
    return _cut_profile(built, "capacities")


def forced_flow_profile(built: "BuiltNetwork") -> np.ndarray | None:
    """Mandatory flow per half-point cut (sum of crossing lower bounds)."""
    return _cut_profile(built, "lowers")


# ----------------------------------------------------------------------
# proof discovery
# ----------------------------------------------------------------------
def find_certificates(
    problem: "AllocationProblem",
) -> tuple[InfeasibilityCertificate, ...]:
    """Every infeasibility proof the prover can establish for *problem*.

    Returns at most one certificate per proof family (the worst cut of
    each kind, plus the first disconnected forced segment) — an empty
    tuple means "no proof", **not** "feasible".  Never solves a flow;
    derivation failures (malformed lifetimes, graph errors) also yield
    an empty tuple, since nothing can be proven about an instance whose
    network cannot even be constructed.
    """
    from repro.core.network_builder import build_network

    try:
        built = build_network(problem)
    except Exception:
        return ()
    return certificates_from(built)


def certificates_from(
    built: "BuiltNetwork",
) -> tuple[InfeasibilityCertificate, ...]:
    """:func:`find_certificates` over an already-constructed network.

    The lint rules use this variant to reuse the
    :class:`~repro.lint.context.LintContext`'s cached network instead of
    rebuilding it per rule.
    """
    with obs.span("lint.prove"):
        problem = built.problem
        certificates: list[InfeasibilityCertificate] = []
        R = problem.register_count

        forced = forced_flow_profile(built)
        if forced is not None and forced.size and int(forced.max()) > R:
            k = int(forced.argmax())
            required = int(forced[k])
            witness = tuple(
                sorted(
                    {
                        seg.name
                        for segs in problem.segments.values()
                        for seg in segs
                        if problem.is_forced(seg)
                        and seg.start <= k < seg.end
                    }
                )
            )
            certificates.append(
                InfeasibilityCertificate(
                    kind="forced-pressure",
                    half_point=k,
                    required=required,
                    available=R,
                    detail=(
                        f"{required} forced segments cross the time cut at "
                        f"half-point {k} + 0.5 but only R={R} register "
                        f"arcs exist"
                    ),
                    witness=witness,
                )
            )

        capacity = cut_capacity_profile(built)
        if capacity is not None and capacity.size and int(capacity.min()) < R:
            k = int(capacity.argmin())
            available = int(capacity[k])
            certificates.append(
                InfeasibilityCertificate(
                    kind="cut-capacity",
                    half_point=k,
                    required=R,
                    available=available,
                    detail=(
                        f"the time cut at half-point {k} + 0.5 admits at "
                        f"most {available} units but the register file "
                        f"must ship exactly R={R}"
                    ),
                )
            )

        certificates.extend(_reachability_certificates(built))
        certificates.extend(_bank_capacity_certificates(problem))
        obs.count("lint.prove.calls")
        if certificates:
            obs.count("lint.prove.certificates", len(certificates))
    return tuple(certificates)


def _reachability_certificates(
    built: "BuiltNetwork",
) -> list[InfeasibilityCertificate]:
    """Forced segments disconnected from a terminal (array BFS)."""
    roles = built.roles
    if roles is None:
        return []
    arrays = built.network.arrays()
    positive = arrays.capacities > 0
    n = built.network.num_nodes
    from_s = _reachable(
        n, arrays.tails[positive], arrays.heads[positive], start=0
    )
    to_t = _reachable(
        n, arrays.heads[positive], arrays.tails[positive], start=1
    )
    problem = built.problem
    segments = [seg for segs in problem.segments.values() for seg in segs]
    out: list[InfeasibilityCertificate] = []
    for i, seg in enumerate(segments):
        if not problem.is_forced(seg):
            continue
        w, r = 2 + 2 * i, 3 + 2 * i
        if from_s[w] and to_t[r]:
            continue
        side = "source s" if not from_s[w] else "sink t"
        out.append(
            InfeasibilityCertificate(
                kind="unreachable-forced-segment",
                half_point=None,
                required=1,
                available=0,
                detail=(
                    f"segment {seg.name}#{seg.index} is forced "
                    f"register-resident but disconnected from the {side}; "
                    f"its mandatory unit of flow cannot be routed"
                ),
                witness=(f"{seg.name}#{seg.index}",),
            )
        )
        break  # one witness suffices; keep the proof minimal
    return out


def _bank_capacity_certificates(
    problem: "AllocationProblem",
) -> list[InfeasibilityCertificate]:
    """Storage-hierarchy counting proof: density vs R + Σ bank capacity.

    Every value live at half-point ``k + 0.5`` occupies a register (at
    most ``R``) or one location of some bank (at most the sum of the
    finite bank capacities).  When every bank is capped and the lifetime
    density exceeds that total, no placement exists.  Skipped entirely
    while any bank is uncapped — an unbounded bank absorbs everything.
    """
    from repro.lifetimes.intervals import density_profile

    storage = problem.storage
    if storage is None:
        return []
    capacities = [level.capacity for level in storage.banks]
    if any(capacity is None for capacity in capacities):
        return []
    available = problem.register_count + sum(capacities)
    profile = density_profile(
        problem.lifetimes.values(), problem.horizon
    )
    peak = max(profile, default=0)
    if peak <= available:
        return []
    k = profile.index(peak)
    witness = tuple(
        sorted(
            name
            for name, lifetime in problem.lifetimes.items()
            if lifetime.alive_at(k)
        )
    )
    return [
        InfeasibilityCertificate(
            kind="bank-capacity",
            half_point=k,
            required=peak,
            available=available,
            detail=(
                f"{peak} values are live at half-point {k} + 0.5 but "
                f"R={problem.register_count} registers plus "
                f"{sum(capacities)} bank locations hold only {available}"
            ),
            witness=witness,
        )
    ]


def _reachable(
    n: int, tails: np.ndarray, heads: np.ndarray, start: int
) -> np.ndarray:
    """Boolean reachability from *start* following ``tails -> heads``."""
    seen = np.zeros(n, dtype=bool)
    seen[start] = True
    frontier = np.array([start], dtype=np.int64)
    while frontier.size:
        on_frontier = seen[tails] & np.isin(tails, frontier)
        nxt = np.unique(heads[on_frontier])
        nxt = nxt[~seen[nxt]]
        seen[nxt] = True
        frontier = nxt
    return seen


def prove_infeasible(
    problem: "AllocationProblem",
) -> InfeasibilityCertificate | None:
    """The strongest available proof that *problem* is infeasible.

    ``None`` means "no proof found" — the instance may still be
    infeasible; only the solver can certify feasibility.
    """
    certificates = find_certificates(problem)
    return certificates[0] if certificates else None


# ----------------------------------------------------------------------
# independent re-verification
# ----------------------------------------------------------------------
def check_certificate(
    problem: "AllocationProblem", certificate: InfeasibilityCertificate
) -> bool:
    """Re-verify *certificate* against *problem* without the prover.

    Each proof family is re-derived through a deliberately different
    code path from the diff-array profiles that discovered it:
    forced-pressure through
    :func:`repro.core.diagnostics.forced_density_profile`, cut capacity
    through a per-object arc walk, reachability through a dict-based
    BFS over arc facades.  A ``False`` return means the certificate does
    not hold — a prover bug, or evidence detached from its instance.
    """
    try:
        if certificate.kind == "forced-pressure":
            return _check_forced_pressure(problem, certificate)
        if certificate.kind == "cut-capacity":
            return _check_cut_capacity(problem, certificate)
        if certificate.kind == "unreachable-forced-segment":
            return _check_unreachable(problem, certificate)
        if certificate.kind == "bank-capacity":
            return _check_bank_capacity(problem, certificate)
    except Exception:
        return False
    return False


def _check_forced_pressure(
    problem: "AllocationProblem", certificate: InfeasibilityCertificate
) -> bool:
    from repro.core.diagnostics import forced_density_profile

    k = certificate.half_point
    if k is None:
        return False
    forced = forced_density_profile(problem)
    if not 0 <= k < len(forced.profile):
        return False
    return (
        forced.profile[k] == certificate.required
        and certificate.available == problem.register_count
        and certificate.required > certificate.available
    )


def _check_cut_capacity(
    problem: "AllocationProblem", certificate: InfeasibilityCertificate
) -> bool:
    from repro.core.network_builder import build_network

    k = certificate.half_point
    if k is None or not 0 <= k <= problem.horizon:
        return False
    built = build_network(problem)
    times = _object_node_times(built)
    if times is None:
        return False
    total = 0
    for arc in built.network.arcs:
        t0, t1 = times[arc.tail], times[arc.head]
        if t1 < t0:
            return False  # not a one-directional cut; proof void
        if t0 <= k < t1:
            total += arc.capacity
    return (
        total == certificate.available
        and certificate.required == problem.register_count
        and certificate.available < certificate.required
    )


def _check_unreachable(
    problem: "AllocationProblem", certificate: InfeasibilityCertificate
) -> bool:
    from repro.core.network_builder import build_network

    if len(certificate.witness) != 1:
        return False
    name, _, index_text = certificate.witness[0].partition("#")
    built = build_network(problem)
    segments = [seg for segs in problem.segments.values() for seg in segs]
    target = next(
        (
            seg
            for seg in segments
            if seg.name == name and str(seg.index) == index_text
        ),
        None,
    )
    if target is None or not problem.is_forced(target):
        return False
    network = built.network
    w = ("w", target.name, target.index)
    r = ("r", target.name, target.index)
    # Dict-based BFS over arc facades (independent of the array BFS).
    def bfs(start, step):
        seen = {start}
        queue = [start]
        while queue:
            node = queue.pop()
            for nxt in step(node):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return seen

    forward = bfs(
        built.source,
        lambda u: (a.head for a in network.arcs_from(u) if a.capacity > 0),
    )
    backward = bfs(
        built.sink,
        lambda u: (a.tail for a in network.arcs_into(u) if a.capacity > 0),
    )
    return w not in forward or r not in backward


def _check_bank_capacity(
    problem: "AllocationProblem", certificate: InfeasibilityCertificate
) -> bool:
    storage = problem.storage
    if storage is None:
        return False
    capacities = [level.capacity for level in storage.banks]
    if any(capacity is None for capacity in capacities):
        return False
    k = certificate.half_point
    if k is None or not 0 <= k < problem.horizon:
        return False
    # Per-lifetime membership test, independent of the diff-array
    # profile that discovered the proof.
    live = sorted(
        name
        for name, lifetime in problem.lifetimes.items()
        if lifetime.alive_at(k)
    )
    return (
        certificate.required == len(live)
        and certificate.available
        == problem.register_count + sum(capacities)
        and certificate.required > certificate.available
        and tuple(live) == certificate.witness
    )
