"""RA5xx — flow-network structure rules.

The constructed network *is* the formulation: an arc with inverted
bounds, a handoff that crosses a maximum-density region (illegal under
the paper's section-5.1 graph), a segment node unreachable from the
source, or a source cut too small for the flow value all mean the
solver is optimising the wrong (or an infeasible) problem.  The
adjacency check re-derives the era index from the density profile
independently of the builder, in the same spirit as the post-solve
oracles of :mod:`repro.verify`.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.context import Finding, LintContext
from repro.lint.diagnostics import Location, Severity
from repro.lint.registry import rule

__all__: list[str] = []


def _era_index(density: list[int], horizon: int) -> list[int]:
    """Independent re-derivation of the builder's era compression.

    ``era[k]`` counts the maximum-density half-points strictly before
    step ``k``; a handoff from a read at ``b`` to a write at ``a`` is
    adjacent-legal iff ``era[b] == era[a]``.
    """
    peak = max(density, default=0)
    era = [0] * (horizon + 2)
    count = 0
    for k in range(horizon + 1):
        era[k] = count
        if peak > 0 and k < len(density) and density[k] == peak:
            count += 1
    era[horizon + 1] = count
    return era


def _arc_label(arc) -> str:
    return f"{arc.tail}->{arc.head}"


@rule(
    "RA500",
    "network-construction-failed",
    Severity.ERROR,
    "The flow network could not be constructed from the instance.",
    hint="fix the underlying lifetime/pin defects reported by the other "
    "rules; the builder rejects what the solver would crash on",
)
def check_construction(ctx: LintContext) -> Iterator[Finding]:
    """RA500: flag instances whose flow network fails to build."""
    if ctx.built is None and ctx.network_error is not None:
        yield Finding(f"network construction failed: {ctx.network_error}")


@rule(
    "RA501",
    "arc-bounds-inverted",
    Severity.ERROR,
    "A network arc carries inconsistent flow bounds (lower > upper, a "
    "negative lower bound, or non-integer bounds).",
    hint="arc bounds come from segment forcing; inverted bounds mean "
    "the network was mutated or built outside FlowNetwork.add_arc",
)
def check_arc_bounds(ctx: LintContext) -> Iterator[Finding]:
    """RA501: flag arcs with non-integer, negative, or inverted bounds."""
    if ctx.built is None:
        return
    for arc in ctx.built.network.arcs:
        problems = []
        if not isinstance(arc.capacity, int) or not isinstance(arc.lower, int):
            problems.append("non-integer bounds")
        else:
            if arc.lower < 0:
                problems.append(f"negative lower bound {arc.lower}")
            if arc.capacity < arc.lower:
                problems.append(
                    f"lower {arc.lower} exceeds capacity {arc.capacity}"
                )
        for defect in problems:
            yield Finding(
                f"arc {_arc_label(arc)} has {defect}",
                Location(detail=_arc_label(arc)),
            )


@rule(
    "RA502",
    "non-adjacent-handoff",
    Severity.ERROR,
    "Under the paper's adjacent graph style, a handoff arc idles a "
    "register across a maximum-density point (section 5.1 forbids it).",
    hint="adjacent handoffs must connect segments within the same "
    "window between regions of maximum lifetime density",
)
def check_adjacent_handoffs(ctx: LintContext) -> Iterator[Finding]:
    """RA502: flag adjacent-style handoffs crossing a density region."""
    problem = ctx.problem
    if problem.graph_style != "adjacent" or ctx.built is None:
        return
    density = ctx.density
    if density is None:
        return
    era = _era_index(density, problem.horizon)
    boundary = problem.horizon + 1
    for arc in ctx.built.network.arcs:
        data = arc.data
        if not (isinstance(data, tuple) and data and data[0] == "handoff"):
            continue
        src, dst = data[1], data[2]
        read_time = src.end if src is not None else 0
        write_time = dst.start if dst is not None else boundary
        if not (0 <= read_time <= boundary and 0 <= write_time <= boundary):
            continue  # RA2xx reports out-of-range segment times
        if era[read_time] != era[write_time]:
            src_name = f"{src.name}#{src.index}" if src is not None else "s"
            dst_name = f"{dst.name}#{dst.index}" if dst is not None else "t"
            yield Finding(
                f"handoff {src_name} -> {dst_name} idles a register from "
                f"step {read_time} to step {write_time} across a "
                f"maximum-density point",
                Location(
                    step=read_time, detail=f"{src_name} -> {dst_name}"
                ),
            )


@rule(
    "RA503",
    "segment-unreachable-from-source",
    Severity.WARNING,
    "A segment's write node cannot be reached from the source: the "
    "segment can never be register-resident.",
    hint="if the segment is forced, the instance is infeasible; "
    "otherwise it silently degenerates to memory residency",
)
def check_reachability(ctx: LintContext) -> Iterator[Finding]:
    """RA503: flag segment arcs unreachable from the source node."""
    if ctx.built is None:
        return
    built = ctx.built
    network = built.network
    reached = {built.source}
    frontier = [built.source]
    while frontier:
        node = frontier.pop()
        for arc in network.arcs_from(node):
            if arc.head not in reached:
                reached.add(arc.head)
                frontier.append(arc.head)
    for key, arc in sorted(built.segment_arcs.items()):
        if arc.tail not in reached:
            name, index = key
            yield Finding(
                f"write node of segment {name}#{index} is unreachable "
                f"from the source",
                Location(variable=name, segment=index),
            )


@rule(
    "RA504",
    "insufficient-source-capacity",
    Severity.ERROR,
    "The total capacity leaving the source is below the required flow "
    "value R; the instance cannot ship R units.",
    hint="enable allow_unused_registers (the zero-cost bypass) or lower "
    "the register count to the shippable flow",
)
def check_source_capacity(ctx: LintContext) -> Iterator[Finding]:
    """RA504: flag source capacity below the required flow value."""
    if ctx.built is None:
        return
    built = ctx.built
    capacity = sum(
        arc.capacity for arc in built.network.arcs_from(built.source)
    )
    if capacity < built.flow_value:
        yield Finding(
            f"source cut capacity {capacity} is below the flow value "
            f"R = {built.flow_value}",
            Location(detail=f"capacity {capacity} < R {built.flow_value}"),
        )


@rule(
    "RA505",
    "bank-structure-inconsistent",
    Severity.ERROR,
    "The per-bank era chains attached to the built network disagree "
    "with the instance's storage hierarchy (missing, stale, or "
    "miscounted against the banks' access steps).",
    hint="BuiltNetwork.banks must be derived from the same StorageSpec "
    "the problem carries; a mismatch means the banking pass and the "
    "verifiers would reason about different hardware",
)
def check_bank_structures(ctx: LintContext) -> Iterator[Finding]:
    """RA505: re-derive and diff the per-bank era chains."""
    if ctx.built is None:
        return
    built = ctx.built
    storage = ctx.problem.storage
    multibank = storage is not None and not storage.is_degenerate
    if built.banks is None:
        if multibank:
            yield Finding(
                "instance carries a multi-bank storage hierarchy but the "
                "built network has no per-bank era chains",
                Location(detail="banks is None"),
            )
        return
    if not multibank:
        yield Finding(
            "built network carries per-bank era chains but the instance "
            "has no multi-bank storage hierarchy",
            Location(detail=f"{len(built.banks)} bank chains"),
        )
        return
    horizon = ctx.problem.horizon
    expected_times = storage.bank_access_times(horizon)
    if len(built.banks) != len(expected_times):
        yield Finding(
            f"built network has {len(built.banks)} bank chains but the "
            f"storage hierarchy declares {len(expected_times)} banks",
            Location(detail=f"{len(built.banks)} != {len(expected_times)}"),
        )
        return
    for position, bank in enumerate(built.banks):
        where = Location(detail=f"bank {position}")
        if bank.index != position:
            yield Finding(
                f"bank chain at position {position} carries index "
                f"{bank.index}",
                where,
            )
        times = expected_times[position]
        if times is None:
            if bank.access_steps is not None or bank.era is not None:
                yield Finding(
                    f"bank {position} is unrestricted but its chain "
                    f"carries access steps or an era array",
                    where,
                )
            continue
        steps = tuple(sorted(times))
        if bank.access_steps != steps:
            yield Finding(
                f"bank {position} access steps {list(bank.access_steps or ())} "
                f"disagree with the hierarchy's {list(steps)}",
                where,
            )
            continue
        # Independent era recount: era[k] must equal the number of
        # access steps <= k, for every step 0 .. horizon + 1.
        era = bank.era or ()
        if len(era) != horizon + 2:
            yield Finding(
                f"bank {position} era array has length {len(era)}, "
                f"expected {horizon + 2}",
                where,
            )
            continue
        for k in range(horizon + 2):
            expected = sum(1 for s in steps if s <= k)
            if era[k] != expected:
                yield Finding(
                    f"bank {position} era[{k}] = {era[k]} but "
                    f"{expected} access steps are <= {k}",
                    Location(step=k, detail=f"bank {position}"),
                )
                break
