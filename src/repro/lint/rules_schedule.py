"""RA1xx — schedule consistency rules.

These rules only run when the caller supplies the schedule the lifetimes
were extracted from (e.g. the pipeline entry points and ``repro-alloc
lint`` on kernel workloads).  They re-check the dataflow-precedence and
completeness facts :meth:`repro.scheduling.schedule.Schedule.validate`
asserts at construction time — but as structured diagnostics over a
possibly hand-built or mutated schedule, instead of a one-shot
exception.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.context import Finding, LintContext
from repro.lint.diagnostics import Location, Severity
from repro.lint.registry import rule

__all__: list[str] = []


@rule(
    "RA101",
    "schedule-use-before-def",
    Severity.ERROR,
    "An operation reads its input before the producing operation has "
    "written it.",
    hint="delay the consumer to start after the producer's write step "
    "(start >= producer start + delay)",
)
def check_use_before_def(ctx: LintContext) -> Iterator[Finding]:
    """RA101: flag consumers scheduled at or before their producer's write."""
    schedule = ctx.schedule
    if schedule is None:
        return
    start = schedule.start
    for producer, consumer in schedule.block.dependence_edges():
        ps = start.get(producer.name)
        cs = start.get(consumer.name)
        if ps is None or cs is None:
            continue  # RA102 reports the missing assignment
        write_step = ps + producer.delay - 1
        if cs <= write_step:
            yield Finding(
                f"{consumer.name!r} starts at step {cs} but its input "
                f"{producer.output!r} is written at the bottom of step "
                f"{write_step} by {producer.name!r}",
                Location(
                    variable=producer.output, op=consumer.name, step=cs
                ),
            )


@rule(
    "RA102",
    "schedule-missing-operation",
    Severity.ERROR,
    "A block operation has no start step in the schedule.",
    hint="assign every operation of the block a start step >= 1",
)
def check_missing_operation(ctx: LintContext) -> Iterator[Finding]:
    """RA102: flag block operations the schedule never assigns a step."""
    schedule = ctx.schedule
    if schedule is None:
        return
    for op in schedule.block:
        if op.name not in schedule.start:
            yield Finding(
                f"operation {op.name!r} of block "
                f"{schedule.block.name!r} is unscheduled",
                Location(op=op.name, variable=op.output),
            )


@rule(
    "RA103",
    "schedule-unknown-operation",
    Severity.WARNING,
    "The schedule assigns a start step to an operation the block does "
    "not contain.",
    hint="drop stale entries when rescheduling a transformed block",
)
def check_unknown_operation(ctx: LintContext) -> Iterator[Finding]:
    """RA103: flag schedule entries naming operations outside the block."""
    schedule = ctx.schedule
    if schedule is None:
        return
    known = {op.name for op in schedule.block}
    for name in sorted(set(schedule.start) - known):
        yield Finding(
            f"schedule mentions unknown operation {name!r}",
            Location(op=name, step=schedule.start[name]),
        )


@rule(
    "RA104",
    "schedule-nonpositive-step",
    Severity.ERROR,
    "An operation starts before control step 1.",
    hint="control steps are 1-based; shift the schedule forward",
)
def check_nonpositive_step(ctx: LintContext) -> Iterator[Finding]:
    """RA104: flag operations starting before control step 1."""
    schedule = ctx.schedule
    if schedule is None:
        return
    for name, step in sorted(schedule.start.items()):
        if step < 1:
            yield Finding(
                f"operation {name!r} starts at step {step} (< 1)",
                Location(op=name, step=step),
            )


@rule(
    "RA105",
    "schedule-horizon-mismatch",
    Severity.WARNING,
    "The problem's horizon disagrees with the schedule length.",
    hint="build the problem with AllocationProblem.from_schedule so the "
    "horizon tracks the schedule",
)
def check_horizon_mismatch(ctx: LintContext) -> Iterator[Finding]:
    """RA105: flag a problem horizon disagreeing with the schedule length."""
    schedule = ctx.schedule
    if schedule is None:
        return
    start = schedule.start
    if any(op.name not in start for op in schedule.block):
        return  # length is undefined; RA102 reports the real defect
    length = max(
        (start[op.name] + op.delay - 1 for op in schedule.block), default=0
    )
    if ctx.problem.horizon != length:
        yield Finding(
            f"problem horizon is {ctx.problem.horizon} but the schedule "
            f"occupies {length} control steps",
            Location(step=length),
        )
