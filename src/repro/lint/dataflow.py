"""Worklist fixed-point dataflow analysis over scheduled basic blocks.

The RA6xx rule family re-derives the facts the rest of the pipeline
*assumes* — liveness, definition reachability, register pressure — from
the schedule alone, through a classic Kildall worklist engine, and flags
any disagreement with the declared lifetime set.  The analyses here are
deliberately independent of :mod:`repro.lifetimes.analysis`: they share
only the timing conventions (an operation starting at step ``s`` with
delay ``d`` reads at the top of ``s`` and writes at the bottom of
``s + d - 1``; live-out values carry a pseudo-read at ``x + 1``), not
the code, which is what makes the cross-check in rule RA602 meaningful.

Three layers:

* :func:`fixed_point` — the generic engine: a monotone transfer function
  over a finite powerset lattice, iterated to a fixed point with a
  worklist.  A basic block's control-step chain is a trivially shaped
  flow graph, but the engine takes arbitrary edges so the analyses stay
  correct if blocks ever grow branches (see ROADMAP: DAG partitioning).
* :func:`liveness` / :func:`reaching_definitions` — the two concrete
  analyses, keyed by control step.
* :class:`Interval` — tiny interval-arithmetic values used by the RA604
  energy sign analysis (and anyone needing conservative cost bounds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Mapping, Sequence

from repro.obs import trace as obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scheduling.schedule import Schedule

__all__ = [
    "fixed_point",
    "liveness",
    "reaching_definitions",
    "LivenessResult",
    "ReachingResult",
    "Interval",
]


def fixed_point(
    nodes: Sequence[Hashable],
    preds: Mapping[Hashable, Sequence[Hashable]],
    transfer: Callable[[Hashable, frozenset], frozenset],
    boundary: Mapping[Hashable, frozenset] | None = None,
) -> dict[Hashable, frozenset]:
    """Solve ``state[n] = transfer(n, ∪ state[p] for p in preds[n])``.

    The classic worklist algorithm over a powerset lattice: states start
    at the boundary (default ⊥ = ∅) and grow monotonically under
    *transfer* until nothing changes.  Direction is the caller's choice
    of *preds* — a backward analysis simply passes the reversed edges.

    Args:
        nodes: Every node, in the preferred initial visit order (a good
            order converges in one pass on a chain; any order is
            correct).
        preds: Dataflow predecessors per node — the nodes whose states
            feed this node's input.
        transfer: Monotone node transfer function (it must never shrink
            its output when its input grows, or the iteration may not
            terminate).
        boundary: Initial states (nodes absent from the mapping start
            empty).

    Returns:
        The least fixed point: node → final state.
    """
    state: dict[Hashable, frozenset] = {
        node: frozenset(boundary.get(node, frozenset()))
        if boundary
        else frozenset()
        for node in nodes
    }
    successors: dict[Hashable, list[Hashable]] = {node: [] for node in nodes}
    for node in nodes:
        for pred in preds.get(node, ()):
            successors.setdefault(pred, []).append(node)
    worklist = list(nodes)
    queued = set(worklist)
    iterations = 0
    while worklist:
        node = worklist.pop()
        queued.discard(node)
        iterations += 1
        incoming: frozenset = frozenset()
        for pred in preds.get(node, ()):
            incoming |= state.get(pred, frozenset())
        updated = transfer(node, incoming)
        if updated != state[node]:
            state[node] = updated
            for succ in successors.get(node, ()):
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    obs.count("lint.dataflow.iterations", iterations)
    return state


# ----------------------------------------------------------------------
# concrete analyses over a schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LivenessResult:
    """Backward liveness facts of one scheduled block.

    All step indices follow the shared convention: steps run 1..x where
    ``x`` is the schedule length; live-out pseudo-reads happen at
    ``x + 1``.

    Attributes:
        length: Schedule length ``x``.
        live_in: ``live_in[s]`` = variables live at the *top* of step
            ``s``, for ``s`` in ``1 .. x + 2`` (index 0 unused; the
            virtual exit ``x + 2`` is always empty).
        writes_at: Step → variables written at its bottom edge.
        reads_at: Step → variables read at its top edge (the live-out
            pseudo-reads appear at ``x + 1``).
    """

    length: int
    live_in: tuple[frozenset[str], ...]
    writes_at: Mapping[int, frozenset[str]]
    reads_at: Mapping[int, frozenset[str]]

    def pressure(self) -> list[int]:
        """Register-pressure profile: live values at each half-point.

        ``pressure()[k]`` counts the variables live at ``k + 0.5``
        (``k = 0 .. length``), which by the occupancy convention is
        exactly ``|live_in[k + 1]|`` — directly comparable with
        :func:`repro.lifetimes.intervals.density_profile` over the
        extracted lifetimes.
        """
        return [len(self.live_in[k + 1]) for k in range(self.length + 1)]

    def lifetimes(self) -> dict[str, tuple[int, tuple[int, ...]]]:
        """Variable → ``(write_time, read_times)`` as the facts imply.

        Dead variables (defined, never read, not live out) get the same
        ``write_time + 1`` synthetic read the extractor's ``"extend"``
        policy assigns, so the two derivations are comparable
        term-for-term.
        """
        writes: dict[str, int] = {}
        reads: dict[str, list[int]] = {}
        for step, names in self.writes_at.items():
            for name in names:
                writes[name] = step
        for step, names in self.reads_at.items():
            for name in names:
                reads.setdefault(name, []).append(step)
        derived: dict[str, tuple[int, tuple[int, ...]]] = {}
        for name, write in writes.items():
            read_times = tuple(sorted(reads.get(name, ())))
            if not read_times:
                read_times = (write + 1,)
            derived[name] = (write, read_times)
        return derived


def liveness(schedule: "Schedule") -> LivenessResult:
    """Re-derive liveness from *schedule* with the worklist engine.

    A value is live at the top of step ``s`` iff some operation (or the
    block exit, for live-out values) reads it at a step ``>= s`` — under
    the block's single-assignment discipline the kill set of step ``s``
    is exactly the set written at its bottom edge.
    """
    block = schedule.block
    length = schedule.length
    writes_at: dict[int, set[str]] = {}
    reads_at: dict[int, set[str]] = {}
    for op in block:
        if op.output is not None:
            writes_at.setdefault(schedule.write_step(op), set()).add(
                op.output
            )
        for name in op.inputs:
            reads_at.setdefault(schedule.read_step(op), set()).add(name)
    for name in block.live_out:
        reads_at.setdefault(length + 1, set()).add(name)

    frozen_writes = {s: frozenset(v) for s, v in writes_at.items()}
    frozen_reads = {s: frozenset(v) for s, v in reads_at.items()}
    empty: frozenset[str] = frozenset()

    def transfer(step: Hashable, incoming: frozenset) -> frozenset:
        assert isinstance(step, int)
        return (incoming - frozen_writes.get(step, empty)) | frozen_reads.get(
            step, empty
        )

    # Backward analysis over the step chain: information flows from
    # step s + 1 to step s, so s + 1 is the dataflow predecessor of s.
    steps = list(range(1, length + 2))
    preds = {s: [s + 1] for s in steps if s + 1 <= length + 1}
    state = fixed_point(list(reversed(steps)), preds, transfer)
    live_in = tuple(
        [empty]  # index 0 unused
        + [state[s] for s in steps]
        + [empty]  # virtual exit x + 2
    )
    return LivenessResult(
        length=length,
        live_in=live_in,
        writes_at=frozen_writes,
        reads_at=frozen_reads,
    )


@dataclass(frozen=True)
class ReachingResult:
    """Forward reaching-definitions facts of one scheduled block.

    Attributes:
        length: Schedule length ``x``.
        defined_in: ``defined_in[s]`` = variables whose (unique) write
            completed strictly before the top of step ``s``, for ``s``
            in ``1 .. x + 2``.
    """

    length: int
    defined_in: tuple[frozenset[str], ...]

    def undefined_reads(
        self, reads_at: Mapping[int, frozenset[str]]
    ) -> list[tuple[str, int]]:
        """Reads not covered by any reaching definition, as
        ``(variable, step)`` pairs (sorted)."""
        missing = [
            (name, step)
            for step, names in reads_at.items()
            for name in names
            if name not in self.defined_in[step]
        ]
        return sorted(missing)


def reaching_definitions(schedule: "Schedule") -> ReachingResult:
    """Forward dual of :func:`liveness`: which writes reach each step.

    With single assignment the definition set only ever grows along the
    chain, so the fixed point is the prefix union of the write sets —
    but it is computed with the same engine, not assumed.
    """
    length = schedule.length
    writes_at: dict[int, set[str]] = {}
    for op in schedule.block:
        if op.output is not None:
            writes_at.setdefault(schedule.write_step(op), set()).add(
                op.output
            )
    frozen_writes = {s: frozenset(v) for s, v in writes_at.items()}
    empty: frozenset[str] = frozenset()

    def transfer(step: Hashable, incoming: frozenset) -> frozenset:
        assert isinstance(step, int)
        # A write at the bottom of step s - 1 reaches the top of step s.
        return incoming | frozen_writes.get(step - 1, empty)

    steps = list(range(1, length + 3))
    preds = {s: [s - 1] for s in steps if s - 1 >= 1}
    state = fixed_point(steps, preds, transfer)
    return ReachingResult(
        length=length,
        defined_in=tuple([empty] + [state[s] for s in steps]),
    )


# ----------------------------------------------------------------------
# interval arithmetic (RA604 energy sign analysis)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` of floats.

    The minimal arithmetic the energy sign analysis needs: hulls over
    observed costs, addition, and sign classification.  Degenerate
    (``lo > hi``) intervals are rejected at construction.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"interval [{self.lo}, {self.hi}] is empty")

    @classmethod
    def hull(cls, values: Iterable[float]) -> "Interval | None":
        """Smallest interval containing *values* (``None`` when empty).

        NaNs poison the hull to ``[-inf, inf]`` — the conservative
        answer, and the one that trips the finiteness check.
        """
        lo = math.inf
        hi = -math.inf
        seen = False
        for value in values:
            seen = True
            if math.isnan(value):
                return cls(-math.inf, math.inf)
            lo = min(lo, value)
            hi = max(hi, value)
        return cls(lo, hi) if seen else None

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def scaled(self, factor: float) -> "Interval":
        """The interval of ``factor * x`` for ``x`` in this interval."""
        a, b = self.lo * factor, self.hi * factor
        return Interval(min(a, b), max(a, b))

    @property
    def finite(self) -> bool:
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    @property
    def sign(self) -> str:
        """``"negative"``, ``"positive"``, ``"zero"`` or ``"mixed"``."""
        if self.hi < 0:
            return "negative"
        if self.lo > 0:
            return "positive"
        if self.lo == 0 and self.hi == 0:
            return "zero"
        return "mixed"

    def to_list(self) -> list[float]:
        """JSON-ready ``[lo, hi]`` pair."""
        return [self.lo, self.hi]
