"""SARIF 2.1.0 export of lint reports.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what CI surfaces — GitHub code scanning, VS Code SARIF viewers — ingest.
:func:`to_sarif` maps the report onto one SARIF ``run``: every
registered rule becomes a ``reportingDescriptor`` (so consumers can
show rule metadata even for rules that did not fire), every diagnostic
becomes a ``result`` with a logical location (this analyser checks
in-memory allocation instances, not source files, so anchors are
logical — variable/segment/operation/step — rather than physical).
"""

from __future__ import annotations

import json

from repro import __version__ as _package_version
from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.registry import all_rules

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA", "to_sarif", "sarif_to_json"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)

_TOOL_NAME = "repro-lint"
_TOOL_URI = "https://github.com/repro/repro"


def _logical_location(diagnostic: Diagnostic) -> dict:
    loc = diagnostic.location
    if loc.variable is not None:
        name = loc.variable
        kind = "variable"
        if loc.segment is not None:
            name = f"{loc.variable}#{loc.segment}"
    elif loc.op is not None:
        name = loc.op
        kind = "function"
    else:
        name = "problem"
        kind = "module"
    qualified = loc.describe() or name
    return {
        "name": name,
        "fullyQualifiedName": qualified,
        "kind": kind,
    }


def _result(diagnostic: Diagnostic, rule_index: dict[str, int]) -> dict:
    result = {
        "ruleId": diagnostic.code,
        "ruleIndex": rule_index[diagnostic.code],
        "level": diagnostic.severity.label,
        "message": {"text": diagnostic.message},
        "locations": [{"logicalLocations": [_logical_location(diagnostic)]}],
        "properties": dict(diagnostic.location.to_dict()),
    }
    if diagnostic.hint:
        result["properties"]["hint"] = diagnostic.hint
    return result


def to_sarif(report: LintReport) -> dict:
    """Render *report* as a SARIF 2.1.0 log (a JSON-ready dict)."""
    rules = all_rules()
    rule_index = {entry.code: i for i, entry in enumerate(rules)}
    descriptors = []
    for entry in rules:
        descriptor = {
            "id": entry.code,
            "name": entry.name,
            "shortDescription": {"text": entry.summary},
            "defaultConfiguration": {"level": entry.severity.label},
        }
        if entry.hint:
            descriptor["help"] = {"text": entry.hint}
        descriptors.append(descriptor)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "version": _package_version,
                        "informationUri": _TOOL_URI,
                        "rules": descriptors,
                    }
                },
                "results": [
                    _result(d, rule_index) for d in report.diagnostics
                ],
            }
        ],
    }


def sarif_to_json(report: LintReport, indent: int = 2) -> str:
    """Serialise :func:`to_sarif` output to a JSON string."""
    return json.dumps(to_sarif(report), indent=indent, sort_keys=True) + "\n"
