"""SARIF 2.1.0 export of lint reports.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what CI surfaces — GitHub code scanning, VS Code SARIF viewers — ingest.
:func:`to_sarif` maps the report onto one SARIF ``run``: every
registered rule becomes a ``reportingDescriptor`` (so consumers can
show rule metadata even for rules that did not fire), every diagnostic
becomes a ``result`` with a logical location (this analyser checks
in-memory allocation instances, not source files, so anchors are
logical — variable/segment/operation/step — rather than physical).
Diagnostic ``evidence`` payloads (RA6xx infeasibility certificates)
ride in the result's property bag, so a SARIF consumer can re-verify a
proof without the original instance in hand.

:func:`merge_sarif` aggregates many reports — one per batch job — into
a single log with one ``run`` per report, each tagged with caller
metadata (job label, canonical digest) in the run's property bag.  This
is what ``repro-alloc batch --sarif`` emits: per-job verdicts stay
separately addressable instead of the last job overwriting the file.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from repro import __version__ as _package_version
from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.registry import all_rules

__all__ = [
    "SARIF_VERSION",
    "SARIF_SCHEMA",
    "to_sarif",
    "sarif_to_json",
    "merge_sarif",
    "merged_sarif_to_json",
]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)

_TOOL_NAME = "repro-lint"
_TOOL_URI = "https://github.com/repro/repro"


def _logical_location(diagnostic: Diagnostic) -> dict:
    loc = diagnostic.location
    if loc.variable is not None:
        name = loc.variable
        kind = "variable"
        if loc.segment is not None:
            name = f"{loc.variable}#{loc.segment}"
    elif loc.op is not None:
        name = loc.op
        kind = "function"
    else:
        name = "problem"
        kind = "module"
    qualified = loc.describe() or name
    return {
        "name": name,
        "fullyQualifiedName": qualified,
        "kind": kind,
    }


def _result(diagnostic: Diagnostic, rule_index: dict[str, int]) -> dict:
    result = {
        "ruleId": diagnostic.code,
        "ruleIndex": rule_index[diagnostic.code],
        "level": diagnostic.severity.label,
        "message": {"text": diagnostic.message},
        "locations": [{"logicalLocations": [_logical_location(diagnostic)]}],
        "properties": dict(diagnostic.location.to_dict()),
    }
    if diagnostic.hint:
        result["properties"]["hint"] = diagnostic.hint
    if diagnostic.evidence is not None:
        result["properties"]["evidence"] = diagnostic.evidence
    return result


def _run(report: LintReport, properties: Mapping | None = None) -> dict:
    """One SARIF ``run`` object for *report*."""
    rules = all_rules()
    rule_index = {entry.code: i for i, entry in enumerate(rules)}
    descriptors = []
    for entry in rules:
        descriptor = {
            "id": entry.code,
            "name": entry.name,
            "shortDescription": {"text": entry.summary},
            "defaultConfiguration": {"level": entry.severity.label},
        }
        if entry.hint:
            descriptor["help"] = {"text": entry.hint}
        if entry.options:
            descriptor.setdefault("properties", {})["options"] = dict(
                entry.options
            )
        descriptors.append(descriptor)
    run = {
        "tool": {
            "driver": {
                "name": _TOOL_NAME,
                "version": _package_version,
                "informationUri": _TOOL_URI,
                "rules": descriptors,
            }
        },
        "results": [_result(d, rule_index) for d in report.diagnostics],
    }
    if properties:
        run["properties"] = dict(properties)
    return run


def to_sarif(report: LintReport, run_properties: Mapping | None = None) -> dict:
    """Render *report* as a SARIF 2.1.0 log (a JSON-ready dict).

    Args:
        report: The lint run to export.
        run_properties: Optional caller metadata (job label, canonical
            digest, …) placed in the run's property bag.
    """
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [_run(report, run_properties)],
    }


def merge_sarif(
    entries: Iterable[tuple[LintReport, Mapping | None]],
) -> dict:
    """Aggregate many lint reports into one multi-run SARIF log.

    Args:
        entries: ``(report, run_properties)`` pairs, one per analysed
            instance; properties tag the run (e.g. ``{"job": label,
            "digest": key}``) so consumers can attribute results.

    Returns:
        One SARIF log whose ``runs`` array holds every report in input
        order — per-job results stay separately addressable instead of
        collapsing into a single anonymous run.
    """
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [_run(report, properties) for report, properties in entries],
    }


def sarif_to_json(report: LintReport, indent: int = 2) -> str:
    """Serialise :func:`to_sarif` output to a JSON string."""
    return json.dumps(to_sarif(report), indent=indent, sort_keys=True) + "\n"


def merged_sarif_to_json(
    entries: Iterable[tuple[LintReport, Mapping | None]], indent: int = 2
) -> str:
    """Serialise :func:`merge_sarif` output to a JSON string."""
    return (
        json.dumps(merge_sarif(entries), indent=indent, sort_keys=True) + "\n"
    )
