"""Text and JSON renderings of a :class:`~repro.lint.diagnostics.LintReport`.

The text reporter is for humans at a terminal; the JSON reporter emits
the versioned ``repro.lint/report/v1`` document (the same shape as
``LintReport.to_dict``).  The SARIF 2.1.0 exporter lives in
:mod:`repro.lint.sarif`.
"""

from __future__ import annotations

import json

from repro.lint.diagnostics import LintReport
from repro.lint.registry import all_rules, get_rule

__all__ = [
    "render_text",
    "report_to_json",
    "describe_rules",
    "explain_rule",
    "rules_markdown",
]


def render_text(report: LintReport, title: str | None = None) -> str:
    """Multi-line human-readable rendering ending in the summary line."""
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.extend(d.format() for d in report.diagnostics)
    lines.append(report.summary())
    return "\n".join(lines) + "\n"


def report_to_json(report: LintReport, indent: int = 2) -> str:
    """The versioned ``repro.lint/report/v1`` JSON document."""
    return json.dumps(report.to_dict(), indent=indent, sort_keys=True) + "\n"


def describe_rules() -> str:
    """Rule-code table (code, default severity, slug, summary, options)."""
    lines = ["code   severity  rule"]
    for entry in all_rules():
        lines.append(
            f"{entry.code:6} {entry.severity.label:9} {entry.name}\n"
            f"       {entry.summary}"
        )
        for key in sorted(entry.options):
            lines.append(f"       option {key}: {entry.options[key]}")
    return "\n".join(lines) + "\n"


def explain_rule(code: str) -> str:
    """Full documentation of one rule for ``lint --explain CODE``.

    Raises :class:`~repro.exceptions.ReproError` for unknown codes (the
    CLI turns that into a non-zero exit with the known-code list).
    """
    entry = get_rule(code)
    lines = [
        f"{entry.code} ({entry.name})",
        f"severity: {entry.severity.label} (default; override with "
        f"LintConfig.severity_overrides)",
        "",
        entry.summary,
    ]
    if entry.hint:
        lines += ["", f"hint: {entry.hint}"]
    if entry.options:
        lines += ["", "options (set with --option CODE.key=value):"]
        lines += [
            f"  {key}: {entry.options[key]}" for key in sorted(entry.options)
        ]
    if entry.check is not None and entry.check.__doc__:
        lines += ["", entry.check.__doc__.strip()]
    return "\n".join(lines) + "\n"


def rules_markdown() -> str:
    """The registered rules as a GitHub-flavoured markdown table.

    The README embeds this between ``<!-- rules:begin -->`` /
    ``<!-- rules:end -->`` markers; a sync test regenerates the table
    and fails when the README drifts from the registry.
    """
    lines = [
        "| code | severity | rule | summary |",
        "| --- | --- | --- | --- |",
    ]
    for entry in all_rules():
        summary = entry.summary.replace("|", "\\|")
        if entry.options:
            opts = ", ".join(f"`{key}`" for key in sorted(entry.options))
            summary += f" Options: {opts}."
        lines.append(
            f"| {entry.code} | {entry.severity.label} | "
            f"`{entry.name}` | {summary} |"
        )
    return "\n".join(lines) + "\n"
