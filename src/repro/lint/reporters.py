"""Text and JSON renderings of a :class:`~repro.lint.diagnostics.LintReport`.

The text reporter is for humans at a terminal; the JSON reporter emits
the versioned ``repro.lint/report/v1`` document (the same shape as
``LintReport.to_dict``).  The SARIF 2.1.0 exporter lives in
:mod:`repro.lint.sarif`.
"""

from __future__ import annotations

import json

from repro.lint.diagnostics import LintReport
from repro.lint.registry import all_rules

__all__ = ["render_text", "report_to_json", "describe_rules"]


def render_text(report: LintReport, title: str | None = None) -> str:
    """Multi-line human-readable rendering ending in the summary line."""
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.extend(d.format() for d in report.diagnostics)
    lines.append(report.summary())
    return "\n".join(lines) + "\n"


def report_to_json(report: LintReport, indent: int = 2) -> str:
    """The versioned ``repro.lint/report/v1`` JSON document."""
    return json.dumps(report.to_dict(), indent=indent, sort_keys=True) + "\n"


def describe_rules() -> str:
    """Rule-code table (code, default severity, slug, summary)."""
    lines = ["code   severity  rule"]
    for entry in all_rules():
        lines.append(
            f"{entry.code:6} {entry.severity.label:9} {entry.name}\n"
            f"       {entry.summary}"
        )
    return "\n".join(lines) + "\n"
