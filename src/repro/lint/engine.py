"""The analysis engine: run the rule set over one instance.

:func:`run_lint` is the package's entry point: it wraps the instance in
a :class:`~repro.lint.context.LintContext`, walks the enabled rules in
stable code order, and folds their findings into a
:class:`~repro.lint.diagnostics.LintReport`.  Everything is pre-solve
and side-effect free — no flow is ever solved.

:func:`gate_problem` is the opt-in pipeline gate behind
``allocate(..., lint="error")``: it raises
:class:`~repro.exceptions.LintGateError` when the report contains
findings at or above the requested severity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exceptions import LintGateError
from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.registry import INTERNAL_ERROR, LintConfig
from repro.obs import trace as obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.problem import AllocationProblem
    from repro.scheduling.schedule import Schedule

__all__ = ["run_lint", "gate_problem"]


def run_lint(
    problem: "AllocationProblem",
    schedule: "Schedule | None" = None,
    config: LintConfig | None = None,
) -> LintReport:
    """Statically analyse *problem* (and *schedule*, when given).

    Args:
        problem: The instance to check; it is never solved.
        schedule: The schedule the lifetimes came from; enables the
            RA1xx schedule rules.
        config: Rule selection, severity overrides and per-rule options.

    Returns:
        The :class:`LintReport` with every finding of the enabled rules.
    """
    config = config or LintConfig()
    ctx = LintContext(problem, schedule=schedule, config=config)
    diagnostics: list[Diagnostic] = []
    with obs.span("lint.run"):
        for entry in config.active_rules():
            obs.count("lint.rules_run")
            assert entry.check is not None  # active_rules filters these
            try:
                findings = list(entry.check(ctx))
            except Exception as exc:  # a rule must never kill the run
                diagnostics.append(
                    Diagnostic(
                        code=INTERNAL_ERROR.code,
                        rule=INTERNAL_ERROR.name,
                        severity=INTERNAL_ERROR.severity,
                        message=(
                            f"rule {entry.code} ({entry.name}) raised "
                            f"{type(exc).__name__}: {exc}"
                        ),
                        hint=INTERNAL_ERROR.hint,
                    )
                )
                continue
            for finding in findings:
                diagnostics.append(
                    Diagnostic(
                        code=entry.code,
                        rule=entry.name,
                        severity=finding.severity
                        or config.severity_of(entry),
                        message=finding.message,
                        location=finding.location,
                        hint=finding.hint or entry.hint,
                        evidence=finding.evidence,
                    )
                )
        report = LintReport(tuple(diagnostics))
        obs.count("lint.diagnostics", len(report))
        if report.errors:
            obs.count("lint.errors", len(report.errors))
    return report


def gate_problem(
    problem: "AllocationProblem",
    schedule: "Schedule | None" = None,
    fail_on: str | Severity = Severity.ERROR,
    config: LintConfig | None = None,
) -> LintReport:
    """Lint *problem* and raise when findings reach *fail_on*.

    This is the opt-in pre-solve gate used by
    ``repro.core.solver.allocate(..., lint="error")`` and the pipeline
    entry points.

    Args:
        problem: The instance about to be solved.
        schedule: Optional schedule context for the RA1xx rules.
        fail_on: Severity threshold (name or :class:`Severity`).
        config: Optional rule-set configuration.

    Returns:
        The (passing) report, so callers can still inspect warnings.

    Raises:
        LintGateError: When any finding is at or above the threshold;
            the report rides on the exception's ``report`` attribute.
    """
    threshold = (
        Severity.from_name(fail_on) if isinstance(fail_on, str) else fail_on
    )
    with obs.span("lint.gate"):
        report = run_lint(problem, schedule=schedule, config=config)
    blocking = report.at_least(threshold)
    if blocking:
        lines = "\n".join(d.format() for d in blocking)
        raise LintGateError(
            f"lint gate failed at severity >= {threshold.label}: "
            f"{report.summary()}\n{lines}",
            report=report,
        )
    return report
