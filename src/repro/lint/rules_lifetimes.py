"""RA2xx — lifetime and segment anomaly rules.

Lifetimes are the allocator's real input: a dead write, an inverted or
zero-length interval, or segments that fail to tile their lifetime make
the flow encoding solve the wrong problem while still returning a
"globally optimal" answer.  These rules re-check the invariants the
:mod:`repro.lifetimes` constructors normally enforce — deliberately
without trusting them, so hand-built or mutated instances are caught
too.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.context import Finding, LintContext
from repro.lint.diagnostics import Location, Severity
from repro.lint.registry import rule

__all__: list[str] = []


def _last_read(lifetime) -> int | None:
    """Final read time without trusting ``Lifetime.end`` (may be empty)."""
    reads = tuple(lifetime.read_times)
    return max(reads) if reads else None


@rule(
    "RA201",
    "lifetime-zero-length",
    Severity.ERROR,
    "A lifetime's last read does not come after its write (empty or "
    "inverted interval).",
    hint="a value written at the bottom of step w is readable from step "
    "w + 1; fix the extraction or the hand-built interval",
)
def check_zero_length(ctx: LintContext) -> Iterator[Finding]:
    """RA201: flag lifetimes whose last read is at or before the write."""
    for name, lifetime in ctx.problem.lifetimes.items():
        last = _last_read(lifetime)
        if last is not None and last <= lifetime.write_time:
            yield Finding(
                f"lifetime of {name!r} is written at step "
                f"{lifetime.write_time} but last read at step {last}",
                Location(variable=name, step=lifetime.write_time),
            )


@rule(
    "RA202",
    "lifetime-dead-write",
    Severity.ERROR,
    "A lifetime has no reads at all: the value is written and never "
    "consumed.",
    hint="drop the dead write, or add the block-end pseudo-read and mark "
    "the variable live-out if a later task consumes it",
)
def check_dead_write(ctx: LintContext) -> Iterator[Finding]:
    """RA202: flag written-but-never-read, non-live-out lifetimes."""
    for name, lifetime in ctx.problem.lifetimes.items():
        if not tuple(lifetime.read_times):
            yield Finding(
                f"lifetime of {name!r} (written at step "
                f"{lifetime.write_time}) is never read",
                Location(variable=name, step=lifetime.write_time),
            )


@rule(
    "RA203",
    "lifetime-past-horizon",
    Severity.ERROR,
    "A lifetime is read after the block boundary x + 1.",
    hint="live-out values are read at most at the block-end pseudo-read "
    "x + 1; later reads belong to the consuming task's block",
)
def check_past_horizon(ctx: LintContext) -> Iterator[Finding]:
    """RA203: flag reads beyond the block boundary (horizon + 1)."""
    boundary = ctx.problem.horizon + 1
    for name, lifetime in ctx.problem.lifetimes.items():
        last = _last_read(lifetime)
        if last is not None and last > boundary:
            yield Finding(
                f"lifetime of {name!r} is read at step {last}, past the "
                f"block boundary {boundary}",
                Location(variable=name, step=last),
            )


@rule(
    "RA204",
    "lifetime-key-mismatch",
    Severity.ERROR,
    "A lifetime-map key does not match the variable it stores.",
    hint="key the mapping by Lifetime.name; mismatched keys break "
    "segment/residency lookups silently",
)
def check_key_mismatch(ctx: LintContext) -> Iterator[Finding]:
    """RA204: flag lifetime-map keys that differ from the variable name."""
    for key, lifetime in ctx.problem.lifetimes.items():
        if key != lifetime.name:
            yield Finding(
                f"lifetime map key {key!r} stores variable "
                f"{lifetime.name!r}",
                Location(variable=lifetime.name, detail=f"map key {key!r}"),
            )


@rule(
    "RA205",
    "segment-tiling-broken",
    Severity.ERROR,
    "Split segments fail to tile their lifetime exactly (gap, overlap, "
    "empty segment, or the splitter crashed).",
    hint="segments must partition [write_time, last read] back-to-back; "
    "rebuild them with repro.lifetimes.splitting.split_all",
)
def check_segment_tiling(ctx: LintContext) -> Iterator[Finding]:
    """RA205: flag split segments that fail to tile the lifetime."""
    if ctx.segments_error is not None:
        yield Finding(
            f"lifetime splitting failed: {ctx.segments_error}",
        )
        return
    segments = ctx.segments
    if segments is None:
        return
    for name, segs in segments.items():
        lifetime = ctx.problem.lifetimes.get(name)
        last = _last_read(lifetime) if lifetime is not None else None
        if lifetime is None or last is None or last <= lifetime.write_time:
            continue  # RA201/RA202 report the underlying defect
        if not segs:
            yield Finding(
                f"variable {name!r} produced no segments",
                Location(variable=name),
            )
            continue
        if segs[0].start != lifetime.write_time or segs[-1].end != last:
            yield Finding(
                f"segments of {name!r} cover [{segs[0].start}, "
                f"{segs[-1].end}] but the lifetime spans "
                f"[{lifetime.write_time}, {last}]",
                Location(variable=name, segment=0),
            )
        for earlier, later in zip(segs, segs[1:]):
            if earlier.end != later.start:
                yield Finding(
                    f"segments {earlier.index} and {later.index} of "
                    f"{name!r} meet at {earlier.end} vs {later.start} "
                    f"(gap or overlap)",
                    Location(variable=name, segment=later.index),
                )
        for seg in segs:
            if seg.end <= seg.start:
                yield Finding(
                    f"segment {seg.index} of {name!r} is empty "
                    f"([{seg.start}, {seg.end}])",
                    Location(variable=name, segment=seg.index),
                )
