"""RA6xx — dataflow-analysis and feasibility-proof rules.

Where the RA1xx-RA5xx families check declared structure, this family
*re-derives* facts and proves obstructions:

* RA601/RA603 run the solver-free prover (:mod:`repro.lint.prove`) over
  the instance's flow network and attach the resulting infeasibility
  certificate — time-cut counting or terminal reachability — as
  machine-checkable ``evidence`` on the diagnostic.  Each certificate is
  re-verified through an independent derivation before it is reported;
  a certificate that fails its own check is reported as an internal
  inconsistency instead of a proof.
* RA602 recomputes liveness from the schedule with the worklist engine
  (:mod:`repro.lint.dataflow`) and diffs the derived lifetimes against
  the declared ones, variable by variable.
* RA605 surfaces the storage-hierarchy counting proof: when every bank
  is capacity-limited and the lifetime density exceeds the register file
  plus the summed bank capacities, no placement exists regardless of
  how banks are assigned.
* RA604 runs an interval/sign analysis over the network's arc costs:
  non-finite costs poison the solver's optimum silently, and an
  optimistic energy bound below zero means some allocation would be
  credited net-negative energy — both symptoms of a broken cost model
  that the RA4xx per-access checks cannot see (they never look at
  composed arc costs).
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.lint.context import Finding, LintContext
from repro.lint.dataflow import Interval, liveness
from repro.lint.diagnostics import Location, Severity
from repro.lint.prove import certificates_from, check_certificate
from repro.lint.registry import rule

__all__: list[str] = []


def _proof_evidence(ctx: LintContext, certificate) -> tuple[dict, bool]:
    """Certificate evidence payload plus its independent re-check."""
    checked = check_certificate(ctx.problem, certificate)
    payload = certificate.to_dict()
    payload["checked"] = checked
    return payload, checked


@rule(
    "RA601",
    "pressure-exceeds-registers-proof",
    Severity.ERROR,
    "A time-cut counting argument proves the register file cannot hold "
    "the instance: the solver is guaranteed to report infeasibility.",
    hint="raise the register count, relax the memory access period, or "
    "unpin forced segments; the attached certificate names the "
    "obstructing half-point",
)
def check_pressure_proofs(ctx: LintContext) -> Iterator[Finding]:
    """RA601: report cut-counting infeasibility proofs with evidence."""
    if ctx.built is None:
        return  # RA5xx reports why the network is unbuildable
    for certificate in certificates_from(ctx.built):
        if certificate.kind not in ("forced-pressure", "cut-capacity"):
            continue
        evidence, checked = _proof_evidence(ctx, certificate)
        if not checked:
            yield Finding(
                f"prover emitted a {certificate.kind} certificate that "
                f"fails independent re-verification: {certificate.detail}",
                Location(step=certificate.half_point, detail=certificate.kind),
                hint="this is a prover bug, not an instance defect; "
                "report it with the evidence payload",
                evidence=evidence,
            )
            continue
        yield Finding(
            certificate.detail,
            Location(step=certificate.half_point, detail=certificate.kind),
            evidence=evidence,
        )


@rule(
    "RA602",
    "schedule-lifetime-disagreement",
    Severity.ERROR,
    "The lifetimes re-derived from the schedule by worklist liveness "
    "analysis disagree with the instance's declared lifetimes.",
    hint="the declared lifetimes were not extracted from this schedule "
    "(or were edited afterwards); re-run extract_lifetimes on the "
    "schedule being solved",
)
def check_schedule_agreement(ctx: LintContext) -> Iterator[Finding]:
    """RA602: diff worklist-derived lifetimes against declared ones."""
    if ctx.schedule is None:
        return
    try:
        derived = liveness(ctx.schedule).lifetimes()
    except Exception as exc:
        yield Finding(
            f"liveness re-derivation failed: {type(exc).__name__}: {exc}",
            hint="the schedule is not analysable; the RA1xx findings "
            "explain the structural defect",
        )
        return
    declared = {
        name: (lifetime.write_time, tuple(lifetime.read_times))
        for name, lifetime in ctx.problem.lifetimes.items()
    }
    for name in sorted(set(declared) - set(derived)):
        yield Finding(
            f"variable {name!r} has a declared lifetime but the schedule "
            f"never defines it",
            Location(variable=name),
            evidence={"variable": name, "derived": None,
                      "declared": _lifetime_dict(declared[name])},
        )
    for name in sorted(set(derived) - set(declared)):
        yield Finding(
            f"the schedule defines variable {name!r} but the instance "
            f"declares no lifetime for it",
            Location(variable=name),
            evidence={"variable": name,
                      "derived": _lifetime_dict(derived[name]),
                      "declared": None},
        )
    for name in sorted(set(derived) & set(declared)):
        if derived[name] == declared[name]:
            continue
        d_write, d_reads = derived[name]
        c_write, c_reads = declared[name]
        parts = []
        if d_write != c_write:
            parts.append(f"write {c_write} (schedule says {d_write})")
        if d_reads != c_reads:
            parts.append(
                f"reads {list(c_reads)} (schedule says {list(d_reads)})"
            )
        yield Finding(
            f"variable {name!r}: declared {', '.join(parts)}",
            Location(variable=name, step=d_write),
            evidence={
                "variable": name,
                "derived": _lifetime_dict(derived[name]),
                "declared": _lifetime_dict(declared[name]),
            },
        )


def _lifetime_dict(pair: tuple[int, tuple[int, ...]]) -> dict:
    write, reads = pair
    return {"write": write, "reads": list(reads)}


@rule(
    "RA603",
    "unreachable-handoff-proof",
    Severity.ERROR,
    "A forced segment is disconnected from a flow terminal: no handoff "
    "chain can route its mandatory unit of register flow.",
    hint="the restricted access times leave no legal spill/reload chain "
    "around the segment; widen the access period or unpin it",
)
def check_reachability_proofs(ctx: LintContext) -> Iterator[Finding]:
    """RA603: report terminal-reachability infeasibility proofs."""
    if ctx.built is None:
        return
    for certificate in certificates_from(ctx.built):
        if certificate.kind != "unreachable-forced-segment":
            continue
        evidence, checked = _proof_evidence(ctx, certificate)
        variable = segment = None
        if certificate.witness:
            variable, _, index_text = certificate.witness[0].partition("#")
            segment = int(index_text) if index_text.isdigit() else None
        if not checked:
            yield Finding(
                f"prover emitted an unreachability certificate that fails "
                f"independent re-verification: {certificate.detail}",
                Location(variable=variable, segment=segment),
                hint="this is a prover bug, not an instance defect; "
                "report it with the evidence payload",
                evidence=evidence,
            )
            continue
        yield Finding(
            certificate.detail,
            Location(variable=variable, segment=segment),
            evidence=evidence,
        )


@rule(
    "RA605",
    "bank-capacity-proof",
    Severity.ERROR,
    "A counting argument over the storage hierarchy proves the instance "
    "cannot be placed: more values are simultaneously live than the "
    "register file plus every bank capacity can hold.",
    hint="raise the register count, enlarge a bank, or add a bank; the "
    "attached certificate names the obstructing half-point and the "
    "live values crossing it",
)
def check_bank_capacity_proofs(ctx: LintContext) -> Iterator[Finding]:
    """RA605: report storage-hierarchy capacity proofs with evidence."""
    if ctx.built is None:
        return  # RA5xx reports why the network is unbuildable
    for certificate in certificates_from(ctx.built):
        if certificate.kind != "bank-capacity":
            continue
        evidence, checked = _proof_evidence(ctx, certificate)
        if not checked:
            yield Finding(
                f"prover emitted a bank-capacity certificate that fails "
                f"independent re-verification: {certificate.detail}",
                Location(step=certificate.half_point, detail=certificate.kind),
                hint="this is a prover bug, not an instance defect; "
                "report it with the evidence payload",
                evidence=evidence,
            )
            continue
        yield Finding(
            certificate.detail,
            Location(step=certificate.half_point, detail=certificate.kind),
            evidence=evidence,
        )


@rule(
    "RA604",
    "energy-cost-interval",
    Severity.WARNING,
    "Interval analysis over the network's composed arc costs found "
    "non-finite costs or a net-negative optimistic energy bound.",
    hint="composed arc costs are energy differences and must stay "
    "finite; a below-zero optimistic total means the model credits "
    "more energy than the instance can spend",
    options={
        "tolerance": "float (default 1e-9): absolute slack before the "
        "optimistic energy bound counts as negative",
    },
)
def check_cost_intervals(ctx: LintContext) -> Iterator[Finding]:
    """RA604: sign/interval analysis of the composed arc costs."""
    built = ctx.built
    if built is None or built.roles is None:
        return
    arrays = built.network.arrays()
    costs = arrays.costs
    k = built.roles.num_segments
    p = len(built.roles.intra_pairs)
    h = len(built.roles.handoff_src)
    groups = {
        "segment": costs[:k],
        "intra": costs[k : k + p],
        "handoff": costs[k + p : k + p + h],
    }
    intervals = {
        role: Interval.hull(values.tolist())
        for role, values in groups.items()
    }
    evidence = {
        "intervals": {
            role: interval.to_list()
            for role, interval in intervals.items()
            if interval is not None
        }
    }
    bad = [
        role
        for role, interval in intervals.items()
        if interval is not None and not interval.finite
    ]
    if bad:
        yield Finding(
            f"non-finite arc costs in role(s) {', '.join(sorted(bad))}; "
            f"the solver's optimum is meaningless",
            Location(detail=f"roles {', '.join(sorted(bad))}"),
            severity=Severity.ERROR,
            evidence=evidence,
        )
        return
    try:
        constant = float(ctx.problem.constant_energy())
    except Exception:
        return  # RA402 reports the evaluation failure
    if not math.isfinite(constant):
        yield Finding(
            f"constant energy term is {constant}; every objective value "
            f"is poisoned",
            severity=Severity.ERROR,
            evidence=evidence,
        )
        return
    # One-path witness: routing a single unit down the cheapest s-to-t
    # path (the remaining R-1 units idle through the bypass) yields the
    # objective constant + path cost.  Below zero, the model credits a
    # single register-resident chain with more energy than the whole
    # program spends memory-resident — a broken cost table, since total
    # energy is physically non-negative.
    shortest = _shortest_path_cost(built)
    if shortest is None:
        return  # not a forward DAG; nothing sound to bound
    witness_energy = constant + min(0.0, shortest)
    tolerance = float(ctx.option("RA604", "tolerance", 1e-9))
    if witness_energy < -tolerance:
        evidence["constant_energy"] = constant
        evidence["shortest_path_cost"] = shortest
        evidence["witness_energy"] = witness_energy
        yield Finding(
            f"the cheapest register chain is credited {shortest:g} "
            f"against a total memory-resident energy of {constant:g}; "
            f"an allocation registering that one chain would have total "
            f"energy {witness_energy:g} < 0",
            Location(detail=f"witness energy {witness_energy:g}"),
            evidence=evidence,
        )


def _shortest_path_cost(built) -> float | None:
    """Cheapest s-to-t path cost by topological relaxation.

    Negative costs are fine on a DAG; returns ``None`` when the network
    is cyclic or the sink is unreachable (other rules report those).
    """
    network = built.network
    order = network.topological_order()
    if order is None:
        return None
    arrays = network.arrays()
    dist = {node: math.inf for node in network.nodes}
    dist[built.source] = 0.0
    out: dict = {}
    for i in range(network.num_arcs):
        out.setdefault(int(arrays.tails[i]), []).append(i)
    index_of = {node: network.node_index(node) for node in network.nodes}
    nodes = network.nodes
    for node in order:
        d = dist[node]
        if not math.isfinite(d):
            continue
        for i in out.get(index_of[node], ()):
            if arrays.capacities[i] <= 0:
                continue
            head = nodes[int(arrays.heads[i])]
            nd = d + float(arrays.costs[i])
            if nd < dist[head]:
                dist[head] = nd
    d = dist[built.sink]
    return d if math.isfinite(d) else None
