"""Diagnostic data model of the static analysis engine.

A lint run produces :class:`Diagnostic` records: one finding per violated
rule instance, carrying a stable rule code (``RA101`` …), a severity, a
:class:`Location` anchoring the finding to an operation, control step,
variable or segment of the analysed instance, and a fix-it hint.  The
:class:`LintReport` aggregates the findings of one run and knows how to
filter and summarise them; serialisation lives in
:mod:`repro.lint.reporters` (text/JSON) and :mod:`repro.lint.sarif`
(SARIF 2.1.0).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import ReproError

__all__ = [
    "Severity",
    "Location",
    "Diagnostic",
    "LintReport",
    "NO_LOCATION",
]


class Severity(enum.IntEnum):
    """Ordered finding severities (``NOTE < WARNING < ERROR``).

    The integer ordering makes threshold comparisons (``--fail-on``)
    direct; :attr:`label` gives the SARIF-compatible lowercase name.
    """

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lowercase name, identical to the SARIF ``level`` vocabulary."""
        return self.name.lower()

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        """Parse ``"note"`` / ``"warning"`` / ``"error"`` (case-blind)."""
        try:
            return cls[name.upper()]
        except KeyError:
            raise ReproError(
                f"unknown severity {name!r}; expected one of "
                f"{[s.label for s in cls]}"
            ) from None

    @classmethod
    def coerce(cls, name: "str | Severity") -> "Severity":
        """Lenient parse for threshold comparisons: unknown names fail
        *closed* by coercing to :attr:`ERROR`.

        A gate configured with a typo (``--fail-on eror``) must become
        the strictest gate, not a silently-passing one.
        """
        if isinstance(name, cls):
            return name
        try:
            return cls.from_name(str(name))
        except ReproError:
            return cls.ERROR


@dataclass(frozen=True)
class Location:
    """Anchor of a finding inside an allocation instance.

    All fields are optional; rules fill in whatever the finding is about.

    Attributes:
        variable: Data-variable name the finding concerns.
        segment: Segment index of the variable (section 5.2 splits).
        op: Operation name (schedule-level findings).
        step: Control step (or half-point index for density findings).
        detail: Free-form anchor for findings without a natural
            variable/op home, e.g. an arc description.
    """

    variable: str | None = None
    segment: int | None = None
    op: str | None = None
    step: int | None = None
    detail: str | None = None

    def describe(self) -> str:
        """Compact human-readable rendering (empty string if unanchored)."""
        parts: list[str] = []
        if self.variable is not None:
            name = self.variable
            if self.segment is not None:
                name += f"#{self.segment}"
            parts.append(f"variable {name}")
        elif self.segment is not None:
            parts.append(f"segment {self.segment}")
        if self.op is not None:
            parts.append(f"op {self.op}")
        if self.step is not None:
            parts.append(f"step {self.step}")
        if self.detail is not None:
            parts.append(self.detail)
        return ", ".join(parts)

    def sort_key(self) -> tuple:
        """Deterministic ordering key (``None`` fields sort first)."""
        return (
            self.step if self.step is not None else -1,
            self.variable or "",
            self.segment if self.segment is not None else -1,
            self.op or "",
            self.detail or "",
        )

    def to_dict(self) -> dict:
        """JSON-ready view with ``None`` fields dropped."""
        return {
            key: value
            for key, value in (
                ("variable", self.variable),
                ("segment", self.segment),
                ("op", self.op),
                ("step", self.step),
                ("detail", self.detail),
            )
            if value is not None
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Location":
        """Rebuild a location serialised by :meth:`to_dict`."""
        return cls(
            variable=data.get("variable"),
            segment=data.get("segment"),
            op=data.get("op"),
            step=data.get("step"),
            detail=data.get("detail"),
        )


#: Shared empty location for findings about the instance as a whole.
NO_LOCATION = Location()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule.

    Attributes:
        code: Stable rule code (``RA101`` …); the rule-family prefix is
            the first three characters (``RA1`` = schedule, ``RA2`` =
            lifetimes, ``RA3`` = restricted memory, ``RA4`` = energy
            model, ``RA5`` = network structure, ``RA9`` = engine).
        rule: Kebab-case rule slug (``schedule-use-before-def``).
        severity: Effective severity (after any per-run override).
        message: What is wrong, concretely, for this instance.
        location: Where (op/step/variable/segment anchor).
        hint: Fix-it suggestion, or ``None`` when no generic fix applies.
        evidence: Machine-checkable supporting data (JSON-ready mapping),
            e.g. an infeasibility certificate from :mod:`repro.lint.prove`
            — what lets a consumer re-verify the finding arithmetically
            instead of trusting the message.
    """

    code: str
    rule: str
    severity: Severity
    message: str
    location: Location = field(default=NO_LOCATION)
    hint: str | None = None
    evidence: dict | None = None

    @property
    def family(self) -> str:
        """Rule-family prefix, e.g. ``"RA3"``."""
        return self.code[:3]

    def format(self) -> str:
        """One- or two-line text rendering."""
        where = self.location.describe()
        suffix = f" [{where}]" if where else ""
        line = f"{self.code} {self.severity.label} {self.rule}: {self.message}{suffix}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line

    def to_dict(self) -> dict:
        """JSON-ready view of the finding."""
        payload = {
            "code": self.code,
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
            "location": self.location.to_dict(),
        }
        if self.hint:
            payload["hint"] = self.hint
        if self.evidence is not None:
            payload["evidence"] = self.evidence
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        """Rebuild a diagnostic serialised by :meth:`to_dict`.

        The inverse used by the serving layer: cached lint verdicts are
        stored as ``repro.lint/report/v1`` documents and reconstituted
        here to re-render text or SARIF without re-analysing.
        """
        try:
            return cls(
                code=str(data["code"]),
                rule=str(data["rule"]),
                severity=Severity.from_name(str(data["severity"])),
                message=str(data["message"]),
                location=Location.from_dict(data.get("location", {})),
                hint=data.get("hint"),
                evidence=data.get("evidence"),
            )
        except KeyError as exc:
            raise ReproError(
                f"malformed diagnostic record: missing {exc}"
            ) from None


@dataclass(frozen=True)
class LintReport:
    """All findings of one lint run, in deterministic order.

    Attributes:
        diagnostics: Findings sorted by (code, location, message).
    """

    diagnostics: tuple[Diagnostic, ...]

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.diagnostics,
                key=lambda d: (d.code, d.location.sort_key(), d.message),
            )
        )
        object.__setattr__(self, "diagnostics", ordered)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    # ------------------------------------------------------------------
    # filtering
    # ------------------------------------------------------------------
    def at_least(self, severity: Severity) -> tuple[Diagnostic, ...]:
        """Findings at or above *severity*."""
        return tuple(d for d in self.diagnostics if d.severity >= severity)

    def count(self, severity: Severity) -> int:
        """Number of findings at exactly *severity*."""
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity == Severity.ERROR
        )

    @property
    def codes(self) -> tuple[str, ...]:
        """Sorted distinct rule codes that fired."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    def worst(self) -> Severity | None:
        """Highest severity present, or ``None`` on a clean run."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line totals, e.g. ``lint: 1 error, 2 warnings (RA201, …)``."""
        if not self.diagnostics:
            return "lint: clean (no findings)"
        counts = []
        for severity in (Severity.ERROR, Severity.WARNING, Severity.NOTE):
            n = self.count(severity)
            if n:
                plural = "" if n == 1 else "s"
                counts.append(f"{n} {severity.label}{plural}")
        return f"lint: {', '.join(counts)} ({', '.join(self.codes)})"

    def to_dict(self) -> dict:
        """Versioned JSON-ready view of the whole report."""
        return {
            "schema": "repro.lint/report/v1",
            "counts": {
                severity.label: self.count(severity) for severity in Severity
            },
            "codes": list(self.codes),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LintReport":
        """Rebuild a report serialised by :meth:`to_dict`."""
        if data.get("schema") != "repro.lint/report/v1":
            raise ReproError(
                f"unknown lint report schema {data.get('schema')!r}"
            )
        return cls(
            tuple(
                Diagnostic.from_dict(entry)
                for entry in data.get("diagnostics", ())
            )
        )
