"""RA3xx — restricted-memory (section 5.2) configuration rules.

A memory running at ``f / c`` is only reachable at a subset of control
steps; segments that cannot legally sit in memory are forced into the
register file.  When the forced segments alone exceed the register
count, the flow is infeasible — something the solver only discovers
after constructing and failing the whole lower-bounded flow.  These
rules predict that (and related access-period pathologies) statically,
sharing the forced-density arithmetic with
:mod:`repro.core.diagnostics`.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.context import Finding, LintContext
from repro.lint.diagnostics import Location, Severity
from repro.lint.registry import rule

__all__: list[str] = []


@rule(
    "RA301",
    "forced-density-exceeds-registers",
    Severity.ERROR,
    "Restricted access times (or explicit pins) force more segments "
    "into the register file than it holds; the flow is provably "
    "infeasible before solving.",
    hint="raise the register count to at least the forced density, "
    "shorten the access period (smaller divisor), or unpin segments",
)
def check_forced_density(ctx: LintContext) -> Iterator[Finding]:
    """RA301: flag forced-segment density exceeding the register count."""
    from repro.core.diagnostics import forced_density_profile

    if ctx.segments is None:
        return  # RA2xx reports why the segments are underivable
    forced = forced_density_profile(ctx.problem)
    if not forced.overload_steps:
        return
    worst = max(forced.overload_steps, key=lambda k: forced.profile[k])
    steps = ", ".join(str(s) for s in forced.overload_steps)
    names = ", ".join(forced.peak_variables)
    yield Finding(
        f"{forced.density} forced segments are simultaneously live "
        f"(steps {steps}; variables {names}) but R = "
        f"{ctx.problem.register_count}; needs R >= {forced.density}",
        Location(step=worst, detail=f"variables {names}"),
    )


@rule(
    "RA302",
    "no-access-step-in-block",
    Severity.WARNING,
    "The restricted memory has no access step inside the block: every "
    "value is forced register-resident.",
    hint="lower the access offset below the block length, or drop the "
    "restriction (divisor 1)",
)
def check_no_access_step(ctx: LintContext) -> Iterator[Finding]:
    """RA302: flag restricted memories with no access step in the block."""
    memory = ctx.problem.memory
    if not memory.restricted:
        return
    access = ctx.access_times
    boundary = ctx.problem.horizon + 1
    if access is not None and not any(0 <= m <= boundary for m in access):
        yield Finding(
            f"memory at f/{memory.divisor} with offset {memory.offset} "
            f"has no access step in [0, {boundary}]",
            Location(detail=f"offset {memory.offset}"),
        )


@rule(
    "RA303",
    "forced-pin-unknown-segment",
    Severity.ERROR,
    "An explicit forced-segment pin names a (variable, index) pair that "
    "does not exist after splitting.",
    hint="pin keys must match Segment.key values produced by the "
    "splitter for this memory configuration",
)
def check_unknown_pin(ctx: LintContext) -> Iterator[Finding]:
    """RA303: flag forced_segments pins naming nonexistent segments."""
    segments = ctx.segments
    if segments is None:
        return
    known = {seg.key for segs in segments.values() for seg in segs}
    for key in sorted(ctx.problem.forced_segments - known):
        name, index = key
        yield Finding(
            f"forced_segments pins unknown segment {key!r}",
            Location(variable=name, segment=index),
        )


@rule(
    "RA304",
    "access-period-exceeds-block",
    Severity.NOTE,
    "The memory access period is longer than the block: at most one "
    "access step falls inside it, so almost everything is forced "
    "register-resident.",
    hint="such operating points rarely make sense for a single block; "
    "check the divisor against the schedule length",
)
def check_access_period(ctx: LintContext) -> Iterator[Finding]:
    """RA304: note access periods longer than the whole block."""
    memory = ctx.problem.memory
    if memory.restricted and memory.divisor > max(ctx.problem.horizon, 1):
        yield Finding(
            f"access period {memory.divisor} exceeds the block length "
            f"{ctx.problem.horizon}",
            Location(detail=f"divisor {memory.divisor}"),
        )


@rule(
    "RA305",
    "bank-fragmentation-forcing",
    Severity.NOTE,
    "Segments are legal under the union of bank access times but fit no "
    "single bank: bank fragmentation forces them register-resident.",
    hint="staggered bank phases can make the union look permissive "
    "while every individual bank rejects the segment's reads; align "
    "bank offsets or shorten the access period",
)
def check_bank_fragmentation(ctx: LintContext) -> Iterator[Finding]:
    """RA305: list segments forced to registers by bank fragmentation."""
    if ctx.segments is None or ctx.problem.storage is None:
        return
    forced = sorted(ctx.problem.banking_forced)
    if not forced:
        return
    names = ", ".join(f"{name}#{index}" for name, index in forced)
    worst_name, worst_index = forced[0]
    yield Finding(
        f"{len(forced)} segment(s) are memory-legal only under the "
        f"union of banks, not in any single bank: {names}",
        Location(variable=worst_name, segment=worst_index),
        evidence={"segments": [list(key) for key in forced]},
    )


@rule(
    "RA306",
    "density-exceeds-storage-capacity",
    Severity.ERROR,
    "Every bank is capacity-limited and the peak lifetime density "
    "exceeds the register file plus the summed bank capacities; no "
    "placement exists regardless of bank assignment.",
    hint="raise the register count, enlarge a bank, or add a bank; "
    "RA605 attaches the machine-checkable certificate",
)
def check_storage_capacity(ctx: LintContext) -> Iterator[Finding]:
    """RA306: flag peak density above total storage capacity."""
    storage = ctx.problem.storage
    if storage is None:
        return
    capacities = [level.capacity for level in storage.banks]
    if any(capacity is None for capacity in capacities):
        return  # an uncapped bank absorbs any density
    total = ctx.problem.register_count + sum(capacities)
    peak = ctx.problem.max_density
    if peak <= total:
        return
    profile = ctx.problem.density
    worst = profile.index(peak)
    yield Finding(
        f"{peak} values are simultaneously live (half-point {worst} + "
        f"0.5) but R={ctx.problem.register_count} registers plus "
        f"{sum(capacities)} bank locations hold only {total}",
        Location(step=worst, detail=f"peak density {peak}"),
        evidence={
            "peak": peak,
            "register_count": ctx.problem.register_count,
            "bank_capacities": capacities,
        },
    )
