"""Pre-solve static analysis of allocation instances.

A rule-based engine that checks an
:class:`~repro.core.problem.AllocationProblem` — and everything beneath
it: the schedule, the (split) lifetimes, the restricted-memory
configuration, the energy model and the constructed flow network —
*without solving*, emitting structured
:class:`~repro.lint.diagnostics.Diagnostic` records with stable rule
codes:

=======  ==============================================================
family   checks
=======  ==============================================================
RA1xx    schedule consistency (use-before-def, missing/unknown ops,
         nonpositive steps, horizon mismatch)
RA2xx    lifetime anomalies (dead writes, zero-length/inverted
         intervals, past-horizon reads, key mismatches, segment tiling)
RA3xx    section-5.2 restricted memory (forced density vs R, access
         period pathologies, unknown pins)
RA4xx    energy-model sanity (negative energies, evaluation failures,
         voltage/frequency consistency, operating-point mismatches)
RA5xx    network structure (construction failures, inverted arc
         bounds, non-adjacent density-region handoffs, unreachable
         segments, insufficient source capacity)
RA6xx    dataflow analysis and feasibility proofs (time-cut
         infeasibility certificates, worklist liveness vs declared
         lifetimes, terminal reachability of forced segments, arc-cost
         interval/sign analysis) — diagnostics carry machine-checkable
         ``evidence``
RA9xx    engine-internal (a rule crashed)
=======  ==============================================================

Entry points: :func:`run_lint` for a report, :func:`gate_problem` for
the opt-in pre-solve gate (``allocate(..., lint="error")``), text/JSON
reporters, and a SARIF 2.1.0 exporter for CI consumption.  The RA6xx
prover is also callable directly: :func:`prove_infeasible` returns an
:class:`InfeasibilityCertificate` (or ``None``) without ever solving a
flow, and :func:`check_certificate` re-verifies one through an
independent derivation.  The dynamic post-solve counterpart — oracles
that check *solutions* — lives in :mod:`repro.verify`.
"""

from repro.lint.context import Finding, LintContext
from repro.lint.dataflow import (
    Interval,
    LivenessResult,
    ReachingResult,
    fixed_point,
    liveness,
    reaching_definitions,
)
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Location,
    NO_LOCATION,
    Severity,
)
from repro.lint.engine import gate_problem, run_lint
from repro.lint.prove import (
    InfeasibilityCertificate,
    check_certificate,
    find_certificates,
    prove_infeasible,
)
from repro.lint.registry import (
    LintConfig,
    Rule,
    all_rules,
    get_rule,
    register,
    rule,
)
from repro.lint.reporters import (
    describe_rules,
    explain_rule,
    render_text,
    report_to_json,
    rules_markdown,
)
from repro.lint.sarif import merge_sarif, sarif_to_json, to_sarif

__all__ = [
    "Diagnostic",
    "Finding",
    "InfeasibilityCertificate",
    "Interval",
    "LintConfig",
    "LintContext",
    "LintReport",
    "LivenessResult",
    "Location",
    "NO_LOCATION",
    "ReachingResult",
    "Rule",
    "Severity",
    "all_rules",
    "check_certificate",
    "describe_rules",
    "explain_rule",
    "find_certificates",
    "fixed_point",
    "gate_problem",
    "get_rule",
    "liveness",
    "merge_sarif",
    "prove_infeasible",
    "reaching_definitions",
    "register",
    "render_text",
    "report_to_json",
    "rule",
    "rules_markdown",
    "run_lint",
    "sarif_to_json",
    "to_sarif",
]
