"""Shared analysis context handed to every rule.

Rules must never crash on malformed input — catching malformed input is
their whole purpose.  The :class:`LintContext` therefore wraps the
derived structure of an :class:`~repro.core.problem.AllocationProblem`
(split segments, density profile, the constructed flow network) in
guarded, cached accessors: a derivation that raises records the error
text instead of propagating, and dependent rules simply skip.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Any

from repro.lint.diagnostics import NO_LOCATION, Location, Severity
from repro.lint.registry import LintConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network_builder import BuiltNetwork
    from repro.core.problem import AllocationProblem
    from repro.lifetimes.intervals import Segment
    from repro.scheduling.schedule import Schedule

__all__ = ["Finding", "LintContext"]


@dataclass(frozen=True)
class Finding:
    """One raw finding yielded by a rule body.

    The engine combines it with the rule's metadata (code, slug, default
    severity and hint) into a full
    :class:`~repro.lint.diagnostics.Diagnostic`.

    Attributes:
        message: Instance-specific description of the defect.
        location: Anchor inside the instance.
        hint: Fix-it hint overriding the rule default.
        severity: Severity overriding the rule default (rarely needed;
            per-run overrides usually belong in :class:`LintConfig`).
        evidence: Machine-checkable supporting data (JSON-ready mapping)
            attached to the resulting diagnostic — e.g. the serialised
            infeasibility certificate behind an RA6xx proof.
    """

    message: str
    location: Location = NO_LOCATION
    hint: str | None = None
    severity: Severity | None = None
    evidence: dict | None = None


class LintContext:
    """The analysed instance plus guarded derived structure.

    Attributes:
        problem: The instance under analysis.
        schedule: The schedule the lifetimes came from, when the caller
            has one (enables the RA1xx schedule rules).
        config: The run configuration (rules read per-rule options).
    """

    def __init__(
        self,
        problem: "AllocationProblem",
        schedule: "Schedule | None" = None,
        config: LintConfig | None = None,
    ) -> None:
        self.problem = problem
        self.schedule = schedule
        self.config = config or LintConfig()

    def option(self, code: str, key: str, default: Any = None) -> Any:
        """Per-rule option lookup (delegates to the config)."""
        return self.config.option(code, key, default)

    # ------------------------------------------------------------------
    # guarded derivations
    # ------------------------------------------------------------------
    @cached_property
    def _segments_result(
        self,
    ) -> tuple["dict[str, list[Segment]] | None", str | None]:
        try:
            return dict(self.problem.segments), None
        except Exception as exc:  # malformed lifetimes break the splitter
            return None, f"{type(exc).__name__}: {exc}"

    @property
    def segments(self) -> "dict[str, list[Segment]] | None":
        """Split segments, or ``None`` when splitting failed."""
        return self._segments_result[0]

    @property
    def segments_error(self) -> str | None:
        """Why splitting failed (``None`` on success)."""
        return self._segments_result[1]

    @cached_property
    def _density_result(self) -> tuple[list[int] | None, str | None]:
        try:
            return list(self.problem.density), None
        except Exception as exc:
            return None, f"{type(exc).__name__}: {exc}"

    @property
    def density(self) -> list[int] | None:
        """Lifetime density profile, or ``None`` when underivable."""
        return self._density_result[0]

    @cached_property
    def _network_result(self) -> tuple["BuiltNetwork | None", str | None]:
        from repro.core.network_builder import build_network

        if self.segments is None or self.density is None:
            return None, (
                "network not constructed: lifetime derivation failed "
                f"({self.segments_error or self._density_result[1]})"
            )
        try:
            return build_network(self.problem), None
        except Exception as exc:
            return None, f"{type(exc).__name__}: {exc}"

    @property
    def built(self) -> "BuiltNetwork | None":
        """The constructed flow network, or ``None`` on failure."""
        return self._network_result[0]

    @property
    def network_error(self) -> str | None:
        """Why network construction failed (``None`` on success)."""
        return self._network_result[1]

    @cached_property
    def access_times(self) -> frozenset[int] | None:
        """Restricted access steps (``None`` for unrestricted memory)."""
        try:
            return self.problem.access_times
        except Exception:
            return None
