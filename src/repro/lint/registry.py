"""Rule registry and per-run configuration.

Rules self-register at import time through the :func:`rule` decorator;
:func:`all_rules` returns them in stable code order.  A
:class:`LintConfig` narrows a run to a rule subset (``select`` /
``ignore`` prefixes, mirroring the familiar flake8/ruff semantics),
overrides severities, and carries free-form per-rule options.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

from repro.exceptions import ReproError
from repro.lint.diagnostics import Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.lint.context import Finding, LintContext

__all__ = ["Rule", "LintConfig", "rule", "register", "all_rules", "get_rule"]

#: Signature of a rule body: findings for one instance, possibly none.
RuleCheck = Callable[["LintContext"], Iterable["Finding"]]


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis rule.

    Attributes:
        code: Stable code (``RA101`` …); unique across the registry.
        name: Kebab-case slug (``schedule-use-before-def``).
        severity: Default severity (overridable per run).
        summary: One-line description for ``--help`` output and the SARIF
            rule table.
        check: Rule body, or ``None`` for codes the engine emits itself
            (e.g. the internal-error code).
        hint: Default fix-it hint applied when a finding carries none.
        options: Declared per-rule options the body consumes via
            ``ctx.option(code, key, default)``: option name →
            ``"<type> (default <value>): <doc>"`` description, surfaced
            by ``repro-alloc lint --explain`` and the rules table.
    """

    code: str
    name: str
    severity: Severity
    summary: str
    check: RuleCheck | None = None
    hint: str | None = None
    options: Mapping[str, str] = field(default_factory=dict)

    @property
    def family(self) -> str:
        """Rule-family prefix, e.g. ``"RA1"``."""
        return self.code[:3]


_REGISTRY: dict[str, Rule] = {}


def register(entry: Rule) -> Rule:
    """Add *entry* to the registry (codes must be unique)."""
    if entry.code in _REGISTRY:
        raise ReproError(f"duplicate lint rule code {entry.code}")
    _REGISTRY[entry.code] = entry
    return entry


def rule(
    code: str,
    name: str,
    severity: Severity,
    summary: str,
    hint: str | None = None,
    options: Mapping[str, str] | None = None,
) -> Callable[[RuleCheck], RuleCheck]:
    """Decorator registering *fn* as the body of rule *code*."""

    def decorate(fn: RuleCheck) -> RuleCheck:
        register(
            Rule(
                code=code,
                name=name,
                severity=severity,
                summary=summary,
                check=fn,
                hint=hint,
                options=dict(options or {}),
            )
        )
        return fn

    return decorate


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule in stable code order."""
    _load_builtin_rules()
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rule(code: str) -> Rule:
    """Look up one rule by code (raises :class:`ReproError` if unknown)."""
    _load_builtin_rules()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise ReproError(f"unknown lint rule code {code!r}") from None


def _load_builtin_rules() -> None:
    """Import the built-in rule modules exactly once (self-registering)."""
    import repro.lint.rules_dataflow  # noqa: F401
    import repro.lint.rules_energy  # noqa: F401
    import repro.lint.rules_lifetimes  # noqa: F401
    import repro.lint.rules_memory  # noqa: F401
    import repro.lint.rules_network  # noqa: F401
    import repro.lint.rules_schedule  # noqa: F401


#: Engine-emitted code for a rule body that raised; has no body of its
#: own, but lives in the registry so reporters and SARIF can describe it.
INTERNAL_ERROR = register(
    Rule(
        code="RA900",
        name="lint-internal-error",
        severity=Severity.ERROR,
        summary="A lint rule crashed while analysing the instance.",
        hint="report the traceback; a rule must never raise, even on "
        "malformed input",
    )
)


@dataclass(frozen=True)
class LintConfig:
    """Per-run configuration of the rule set.

    Attributes:
        select: Code prefixes to run (``("RA3", "RA501")``); empty means
            every registered rule.
        ignore: Code prefixes to skip; applied after *select*.
        severity_overrides: Code → severity replacing the rule default.
        options: Code → free-form option mapping consumed by individual
            rules (e.g. tolerances).
    """

    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)
    options: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)

    def enabled(self, code: str) -> bool:
        """Whether rule *code* participates in this run."""
        if self.select and not any(code.startswith(p) for p in self.select):
            return False
        return not any(code.startswith(p) for p in self.ignore)

    def severity_of(self, entry: Rule) -> Severity:
        """Effective severity of *entry* under this configuration."""
        return self.severity_overrides.get(entry.code, entry.severity)

    def option(self, code: str, key: str, default: Any = None) -> Any:
        """Per-rule option lookup with a default."""
        return self.options.get(code, {}).get(key, default)

    def active_rules(self) -> Iterator[Rule]:
        """Registered rules enabled by this configuration, code order."""
        for entry in all_rules():
            if entry.check is not None and self.enabled(entry.code):
                yield entry
