"""RA4xx — energy-model sanity rules.

The flow costs are energies; a model returning a negative access energy
or charging the memory at a supply inconsistent with its operating
point quietly skews every arc cost while the solver still reports a
"globally optimal" allocation.  These rules evaluate the model on the
instance's own variables and cross-check the voltage/frequency pairing
against the CMOS delay relation of :mod:`repro.energy.voltage`.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.context import Finding, LintContext
from repro.lint.diagnostics import Location, Severity
from repro.lint.registry import rule

__all__: list[str] = []

#: Relative slack on the delay-factor check (RA403): operating points are
#: usually rounded voltages, so demand a clear miss before flagging.
_DELAY_SLACK = 0.05


def _access_energies(model, variable):
    """The four per-access energies of *variable* under *model*."""
    return (
        ("mem_read", model.mem_read(variable)),
        ("mem_write", model.mem_write(variable)),
        ("reg_read", model.reg_read(variable)),
        ("reg_write", model.reg_write(variable, None)),
    )


@rule(
    "RA401",
    "negative-access-energy",
    Severity.ERROR,
    "The energy model returns a negative per-access energy; flow costs "
    "would reward extra accesses.",
    hint="access energies are C * V^2 terms and must be >= 0; check the "
    "capacitance table and any custom model",
)
def check_negative_energy(ctx: LintContext) -> Iterator[Finding]:
    """RA401: flag negative per-access energies from the model."""
    model = ctx.problem.energy_model
    for name, lifetime in ctx.problem.lifetimes.items():
        try:
            energies = _access_energies(model, lifetime.variable)
        except Exception:
            return  # RA402 reports the evaluation failure
        for kind, value in energies:
            if value < 0:
                yield Finding(
                    f"{kind}({name!r}) = {value:g} < 0",
                    Location(variable=name, detail=kind),
                )


@rule(
    "RA402",
    "energy-model-evaluation-failed",
    Severity.ERROR,
    "The energy model raised while being evaluated on the instance's "
    "variables.",
    hint="every variable of the instance must be costable before the "
    "network can be built",
)
def check_model_evaluates(ctx: LintContext) -> Iterator[Finding]:
    """RA402: flag energy models that raise on the instance's variables."""
    model = ctx.problem.energy_model
    for name, lifetime in ctx.problem.lifetimes.items():
        try:
            _access_energies(model, lifetime.variable)
        except Exception as exc:
            yield Finding(
                f"evaluating the model on {name!r} raised "
                f"{type(exc).__name__}: {exc}",
                Location(variable=name),
            )
            return  # one representative failure is enough


@rule(
    "RA403",
    "memory-supply-below-frequency",
    Severity.WARNING,
    "The memory supply voltage is too low to meet the configured "
    "frequency divisor under the CMOS delay relation.",
    hint="pick the supply with max_divisor_supply(divisor) (or "
    "MemoryConfig.scaled) so voltage and access period stay consistent",
    options={
        "delay_slack": "float (default 0.05): relative slack on the "
        "CMOS delay-factor check before a slow supply is flagged",
    },
)
def check_supply_meets_divisor(ctx: LintContext) -> Iterator[Finding]:
    """RA403: flag memory supplies too slow for the access period."""
    from repro.energy.voltage import cmos_delay_factor

    memory = ctx.problem.memory
    if not memory.restricted:
        return
    slack = float(ctx.option("RA403", "delay_slack", _DELAY_SLACK))
    try:
        factor = cmos_delay_factor(memory.voltage)
    except Exception as exc:
        yield Finding(
            f"supply {memory.voltage} V is not operable: {exc}",
            Location(detail=f"voltage {memory.voltage}"),
            severity=Severity.ERROR,
        )
        return
    if factor > memory.divisor * (1.0 + slack):
        yield Finding(
            f"at {memory.voltage} V the memory is {factor:.2f}x slower "
            f"than nominal but the divisor only allows {memory.divisor}x",
            Location(detail=f"voltage {memory.voltage}"),
        )


@rule(
    "RA404",
    "registers-never-beneficial",
    Severity.NOTE,
    "Register accesses cost at least as much energy as memory accesses "
    "for every variable; the optimum will leave the register file "
    "empty.",
    hint="check the capacitance table / voltages if register residency "
    "was expected to save energy",
)
def check_registers_beneficial(ctx: LintContext) -> Iterator[Finding]:
    """RA404: note instances where registers never beat memory on energy."""
    model = ctx.problem.energy_model
    if not ctx.problem.lifetimes:
        return
    try:
        for lifetime in ctx.problem.lifetimes.values():
            v = lifetime.variable
            reg = model.reg_write(v, None) + model.reg_read(v)
            mem = model.mem_write(v) + model.mem_read(v)
            if reg < mem:
                return
    except Exception:
        return  # RA402 reports the evaluation failure
    yield Finding(
        "a register round-trip costs at least as much as a memory "
        "round-trip for every variable",
    )


@rule(
    "RA405",
    "model-operating-point-mismatch",
    Severity.WARNING,
    "The energy model charges memory accesses at a different supply "
    "than the memory operating point.",
    hint="rebuild the model with "
    "energy_model.with_voltages(memory.voltage, reg_voltage)",
)
def check_model_matches_memory(ctx: LintContext) -> Iterator[Finding]:
    """RA405: flag model/memory operating-point voltage mismatches."""
    model = ctx.problem.energy_model
    memory = ctx.problem.memory
    model_voltage = getattr(model, "mem_voltage", None)
    if model_voltage is None:
        return
    if abs(model_voltage - memory.voltage) > 1e-9:
        yield Finding(
            f"model charges memory at {model_voltage} V, operating "
            f"point is {memory.voltage} V",
            Location(
                detail=f"model {model_voltage} V vs memory "
                f"{memory.voltage} V"
            ),
        )
