"""Lifetime extraction from schedules.

Turns a :class:`~repro.scheduling.schedule.Schedule` into the lifetime set
Problem 1 operates on: each defined variable gets a write time (bottom edge
of its producer's finishing step) and read times (top edges of its
consumers' start steps).  Live-out variables receive an additional
pseudo-read at ``x + 1``, modelling consumption by a later task exactly as
variables ``c`` and ``d`` extend past time 7 in figure 1 of the paper.
"""

from __future__ import annotations

from typing import Literal

from repro.exceptions import LifetimeError
from repro.lifetimes.intervals import Lifetime
from repro.scheduling.schedule import Schedule

__all__ = ["extract_lifetimes"]

DeadPolicy = Literal["extend", "error", "drop"]


def extract_lifetimes(
    schedule: Schedule,
    dead_policy: DeadPolicy = "extend",
) -> dict[str, Lifetime]:
    """Compute the lifetime of every variable defined in the scheduled block.

    Args:
        schedule: A validated schedule.
        dead_policy: What to do with variables that are never read and not
            live out: ``"extend"`` gives them a one-step lifetime (the write
            still dissipates energy somewhere), ``"error"`` raises, and
            ``"drop"`` omits them from the result.

    Returns:
        Mapping from variable name to :class:`Lifetime`, in definition
        order.

    Raises:
        LifetimeError: On dead variables under the ``"error"`` policy.
    """
    block = schedule.block
    block_end = schedule.length + 1
    lifetimes: dict[str, Lifetime] = {}
    for op in block:
        if op.output is None:
            continue
        name = op.output
        write_time = schedule.write_step(op)
        reads = [schedule.read_step(c) for c in block.consumers(name)]
        live_out = name in block.live_out
        if live_out:
            reads.append(block_end)
        if not reads:
            if dead_policy == "error":
                raise LifetimeError(
                    f"variable {name!r} is dead (never read, not live out)"
                )
            if dead_policy == "drop":
                continue
            reads = [write_time + 1]
        lifetimes[name] = Lifetime(
            variable=block.variable(name),
            write_time=write_time,
            read_times=tuple(reads),
            live_out=live_out,
        )
    return lifetimes
