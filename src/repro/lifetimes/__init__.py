"""Lifetime analysis substrate: extraction, density, and splitting."""

from repro.lifetimes.analysis import extract_lifetimes
from repro.lifetimes.intervals import (
    Lifetime,
    Segment,
    density_profile,
    max_density,
    max_density_regions,
)
from repro.lifetimes.splitting import (
    periodic_access_times,
    split_all,
    split_lifetime,
)

__all__ = [
    "Lifetime",
    "Segment",
    "density_profile",
    "extract_lifetimes",
    "max_density",
    "max_density_regions",
    "periodic_access_times",
    "split_all",
    "split_lifetime",
]
