"""Lifetime and segment interval types plus density machinery.

Timing/occupancy conventions (shared with :mod:`repro.scheduling.schedule`):
a value written at the bottom of step ``w`` and last read at the top of step
``r`` occupies its storage location over the *open* window ``(w, r)``.
Occupancy is therefore measured at half-integer points ``k + 0.5``: the
lifetime ``[w, r]`` is alive at ``k + 0.5`` iff ``w <= k < r``.  Two
lifetimes conflict iff their open windows intersect, which lets a location
freed by a read at step ``k`` be rewritten at the bottom of the same step
(the same-control-step handoff figure 1 of the paper relies on).

The *density* at a half-point is the number of live lifetimes there; the
maximum density ``D`` is the minimum total number of storage locations the
block needs, and the maximal runs of half-points at density ``D`` are the
paper's "regions of maximum lifetime density" (section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import LifetimeError
from repro.ir.values import DataVariable

__all__ = [
    "Lifetime",
    "Segment",
    "density_profile",
    "max_density",
    "max_density_regions",
]


@dataclass(frozen=True)
class Lifetime:
    """The storage interval of one data variable.

    Attributes:
        variable: The variable this lifetime stores.
        write_time: Step at whose bottom edge the value is produced.
        read_times: Sorted, deduplicated steps at whose top edges the value
            is consumed (non-empty; the block-end pseudo-read of live-out
            variables is included at ``x + 1``).
        live_out: Whether the value is consumed by a later task.
    """

    variable: DataVariable
    write_time: int
    read_times: tuple[int, ...]
    live_out: bool = False

    def __post_init__(self) -> None:
        if not self.read_times:
            raise LifetimeError(
                f"lifetime of {self.variable.name!r} has no reads"
            )
        ordered = tuple(sorted(set(self.read_times)))
        object.__setattr__(self, "read_times", ordered)
        if ordered[0] <= self.write_time:
            raise LifetimeError(
                f"{self.variable.name!r} read at {ordered[0]} but written "
                f"at {self.write_time}"
            )

    @property
    def name(self) -> str:
        return self.variable.name

    @property
    def start(self) -> int:
        return self.write_time

    @property
    def end(self) -> int:
        """Last read time (``rlast``)."""
        return self.read_times[-1]

    @property
    def read_count(self) -> int:
        return len(self.read_times)

    def alive_at(self, half_point: int) -> bool:
        """Liveness at half-integer point ``half_point + 0.5``."""
        return self.start <= half_point < self.end

    def overlaps(self, other: "Lifetime") -> bool:
        """Whether the two open occupancy windows intersect."""
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class Segment:
    """One piece of a (possibly split) lifetime.

    Splitting (paper section 5.2) cuts a lifetime at interior read times
    and/or at restricted memory access times.  Each segment becomes one
    ``w_i(v) -> r_i(v)`` arc in the network flow graph.

    Attributes:
        variable: The owning variable.
        index: 0-based position among the variable's segments.
        start: Step at whose bottom edge the segment begins.
        end: Step at whose top edge the segment ends.
        reads: Read times served by the segment — every read in
            ``(start, end]`` (empty when the segment ends at a pure
            memory-access cut).  When lifetimes are split at read times the
            list holds at most the read at ``end``; unsplit multi-read
            lifetimes carry all their reads on one segment.
        is_first: Segment begins at the variable's definition.
        is_last: Segment ends at the variable's final read.
        starts_at_access_cut: Segment begins at a restricted-memory access
            cut rather than at the definition or a read.
        forced: Segment must be register-resident (flow lower bound 1);
            set when restricted access times make memory residency
            impossible for this window.
    """

    variable: DataVariable
    index: int
    start: int
    end: int
    reads: tuple[int, ...] = ()
    is_first: bool = True
    is_last: bool = True
    starts_at_access_cut: bool = False
    forced: bool = False

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise LifetimeError(
                f"segment {self.index} of {self.variable.name!r} is empty "
                f"([{self.start}, {self.end}])"
            )
        for read in self.reads:
            if not self.start < read <= self.end:
                raise LifetimeError(
                    f"segment {self.index} of {self.variable.name!r} spans "
                    f"[{self.start}, {self.end}] but serves a read at {read}"
                )

    @property
    def name(self) -> str:
        return self.variable.name

    @property
    def key(self) -> tuple[str, int]:
        """Stable identifier ``(variable name, segment index)``."""
        return (self.variable.name, self.index)

    @property
    def read_count(self) -> int:
        return len(self.reads)

    def alive_at(self, half_point: int) -> bool:
        return self.start <= half_point < self.end


def density_profile(
    intervals: Iterable[Lifetime | Segment], horizon: int
) -> list[int]:
    """Number of live intervals at each half-point ``k + 0.5``.

    Args:
        intervals: Lifetimes or segments (segments of one variable tile its
            lifetime without double counting).
        horizon: Largest step ``x``; the profile covers ``k = 0 .. horizon``.

    Returns:
        ``profile[k]`` = density at ``k + 0.5``.
    """
    profile = [0] * (horizon + 1)
    for interval in intervals:
        lo = max(interval.start, 0)
        hi = min(interval.end - 1, horizon)
        for k in range(lo, hi + 1):
            profile[k] += 1
    return profile


def max_density(intervals: Iterable[Lifetime | Segment], horizon: int) -> int:
    """Maximum lifetime density — the minimum total storage locations."""
    profile = density_profile(intervals, horizon)
    return max(profile, default=0)


def max_density_regions(profile: Sequence[int]) -> list[tuple[int, int]]:
    """Maximal runs of half-points at peak density.

    Args:
        profile: Output of :func:`density_profile`.

    Returns:
        List of ``(k_first, k_last)`` pairs: each region spans half-points
        ``k_first + 0.5 .. k_last + 0.5``, matching the paper's "region of
        maximum lifetime density from time k_first to time k_last + 1".
    """
    if not profile:
        return []
    peak = max(profile)
    if peak == 0:
        return []
    regions: list[tuple[int, int]] = []
    run_start: int | None = None
    for k, value in enumerate(profile):
        if value == peak and run_start is None:
            run_start = k
        elif value != peak and run_start is not None:
            regions.append((run_start, k - 1))
            run_start = None
    if run_start is not None:
        regions.append((run_start, len(profile) - 1))
    return regions
