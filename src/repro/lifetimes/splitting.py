"""Lifetime splitting (paper section 5.2).

A lifetime is divided into *split lifetimes* by cutting it at

* its interior read times (variables read more than once), and/or
* restricted memory access times — when the memory module runs at a lower
  frequency than the processor it is only accessible at a subset of control
  steps (e.g. every ``c`` steps), so values can only move between the
  register file and memory at those steps.

Each resulting :class:`~repro.lifetimes.intervals.Segment` becomes one
``w_i(v) -> r_i(v)`` arc of the network flow graph.  Segments that cannot
legally reside in memory (they begin and/or end strictly between memory
access times) are marked *forced* and receive a flow lower bound of 1 —
the bold arcs of figure 1c in the paper.

Memory-residency legality for a segment ``[a, b]`` of a variable written at
``w`` under access-time set ``M``:

* the value must be able to reach memory by the segment start: some
  ``m in M`` with ``w <= m <= a`` must exist (the definition write or a
  spill lands there);
* every read the segment serves must be a memory-access step.

Segment boundaries created *by* access cuts are trivially legal on that
side.  When ``M`` is ``None`` (unrestricted memory) nothing is forced.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.exceptions import LifetimeError
from repro.lifetimes.intervals import Lifetime, Segment

__all__ = [
    "periodic_access_times",
    "split_lifetime",
    "split_all",
]


def periodic_access_times(
    period: int, length: int, offset: int = 1
) -> frozenset[int]:
    """Access steps of a memory running every *period* control steps.

    Args:
        period: Steps between consecutive memory access opportunities
            (``c`` in the paper; 1 = memory accessible every step).
        length: Block length ``x``; access times are generated through
            ``x + 1`` so block-boundary traffic is representable.
        offset: First access step (figure 1c uses times 1, 3, 5, i.e.
            ``period=2, offset=1``).

    Returns:
        Frozen set of access steps.
    """
    if period < 1:
        raise LifetimeError(f"access period must be >= 1, got {period}")
    if offset < 0:
        raise LifetimeError(f"access offset must be >= 0, got {offset}")
    return frozenset(range(offset, length + 2, period))


def split_lifetime(
    lifetime: Lifetime,
    access_times: frozenset[int] | None = None,
    split_at_reads: bool = True,
) -> list[Segment]:
    """Split one lifetime into segments.

    Args:
        lifetime: The lifetime to split.
        access_times: Steps at which memory may be accessed, or ``None``
            for an unrestricted memory (no access cuts, nothing forced).
        split_at_reads: Cut at interior read times (the multi-read
            extension of section 5.2).  When ``False`` a multi-read
            variable stays on one segment carrying all its reads (the
            representation prior-art graphs use).

    Returns:
        Segments ordered by time, tiling ``[write_time, end]`` exactly.
    """
    reads = set(lifetime.read_times)
    cuts: set[int] = set()
    if split_at_reads:
        cuts.update(lifetime.read_times[:-1])
    access_cuts: set[int] = set()
    if access_times is not None:
        access_cuts = {
            m
            for m in access_times
            if lifetime.start < m < lifetime.end and m not in cuts
        }
        cuts.update(access_cuts)
    boundaries = [lifetime.start, *sorted(cuts), lifetime.end]

    segments: list[Segment] = []
    for index, (a, b) in enumerate(zip(boundaries, boundaries[1:])):
        served = tuple(r for r in lifetime.read_times if a < r <= b)
        starts_at_access_cut = a in access_cuts and a not in reads
        segments.append(
            Segment(
                variable=lifetime.variable,
                index=index,
                start=a,
                end=b,
                reads=served,
                is_first=(index == 0),
                is_last=(b == lifetime.end),
                starts_at_access_cut=starts_at_access_cut,
                forced=_is_forced(lifetime, a, served, access_times),
            )
        )
    return segments


def _is_forced(
    lifetime: Lifetime,
    start: int,
    served_reads: tuple[int, ...],
    access_times: frozenset[int] | None,
) -> bool:
    """Whether a segment must be register-resident (lower bound 1)."""
    if access_times is None:
        return False
    reaches_memory = any(
        lifetime.write_time <= m <= start for m in access_times
    )
    # The block-end pseudo-read of a live-out variable is always
    # memory-legal: the consuming task performs its own access.
    reads_legal = all(
        r in access_times or (lifetime.live_out and r == lifetime.end)
        for r in served_reads
    )
    return not (reaches_memory and reads_legal)


def split_all(
    lifetimes: Mapping[str, Lifetime] | Iterable[Lifetime],
    access_times: frozenset[int] | None = None,
    split_at_reads: bool = True,
) -> dict[str, list[Segment]]:
    """Split every lifetime; returns segments keyed by variable name."""
    values = (
        lifetimes.values() if isinstance(lifetimes, Mapping) else lifetimes
    )
    return {
        lifetime.name: split_lifetime(lifetime, access_times, split_at_reads)
        for lifetime in values
    }
