"""Exception hierarchy shared across the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """A network/graph construction request was malformed."""


class InfeasibleFlowError(ReproError):
    """No flow satisfying the requested value and bounds exists."""


class ScheduleError(ReproError):
    """A schedule is malformed or violates precedence/resource rules."""


class LifetimeError(ReproError):
    """Lifetime extraction or splitting failed."""


class AllocationError(ReproError):
    """An allocation result is inconsistent or could not be produced."""


class EnergyModelError(ReproError):
    """An energy model was queried with parameters it does not support."""


class WorkloadError(ReproError):
    """A workload generator received invalid parameters."""
