"""Exception hierarchy shared across the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """A network/graph construction request was malformed."""


class InfeasibleFlowError(ReproError):
    """No flow satisfying the requested value and bounds exists.

    Attributes:
        problem: The :class:`~repro.core.problem.AllocationProblem` the
            infeasible network was built from, when the solver knows it
            (``None`` for bare flow-level callers).  Lets catchers run
            :func:`repro.core.diagnostics.diagnose` without re-deriving
            the instance.
    """

    problem = None


class ScheduleError(ReproError):
    """A schedule is malformed or violates precedence/resource rules."""


class LifetimeError(ReproError):
    """Lifetime extraction or splitting failed."""


class AllocationError(ReproError):
    """An allocation result is inconsistent or could not be produced."""


class EnergyModelError(ReproError):
    """An energy model was queried with parameters it does not support."""


class WorkloadError(ReproError):
    """A workload generator received invalid parameters."""


class LintGateError(ReproError):
    """The pre-solve lint gate found findings at or above its threshold.

    Attributes:
        report: The full :class:`~repro.lint.diagnostics.LintReport`
            behind the failure (``None`` only for hand-raised copies).
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class ServiceError(ReproError):
    """The batch allocation service was misconfigured or fed bad input
    (malformed manifest, invalid executor parameters, bad cache store)."""


class DagError(ReproError):
    """Task-graph partitioning or DVFS co-optimisation was given an
    unmeetable constraint (deadline below the nominal makespan, an
    operating point violating the CMOS delay-slack relation) or a
    malformed plan."""
