"""Operations of the dataflow IR.

The paper assumes "a partially ordered list of code operations" (section 2).
We model each operation as a node of a dataflow graph: it consumes zero or
more named variables and defines at most one variable.  Opcodes carry the
functional-unit class the list scheduler budgets against and a relative
energy weight anchored to the ratios quoted from [14] (add = 1, mul = 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import GraphError

__all__ = ["OpCode", "Operation"]


class OpCode(enum.Enum):
    """Operation kinds understood by the scheduler and energy models."""

    INPUT = "input"  # value arrives from outside the block (no FU needed)
    CONST = "const"  # compile-time constant materialisation
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MAC = "mac"  # multiply-accumulate (DSP kernels)
    SHIFT = "shift"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NEG = "neg"
    ABS = "abs"
    CMP = "cmp"
    MOVE = "move"
    OUTPUT = "output"  # value leaves the block (consumed by a later task)

    @property
    def unit_class(self) -> str:
        """Functional-unit class used for resource-constrained scheduling."""
        return _UNIT_CLASS[self]

    @property
    def relative_energy(self) -> float:
        """Computation energy relative to a 16-bit add (ratios from [14])."""
        return _RELATIVE_ENERGY[self]

    @property
    def defines_value(self) -> bool:
        """Whether operations of this kind produce a variable."""
        return self is not OpCode.OUTPUT


_UNIT_CLASS: dict[OpCode, str] = {
    OpCode.INPUT: "io",
    OpCode.CONST: "io",
    OpCode.ADD: "alu",
    OpCode.SUB: "alu",
    OpCode.MUL: "mult",
    OpCode.MAC: "mult",
    OpCode.SHIFT: "alu",
    OpCode.AND: "alu",
    OpCode.OR: "alu",
    OpCode.XOR: "alu",
    OpCode.NEG: "alu",
    OpCode.ABS: "alu",
    OpCode.CMP: "alu",
    OpCode.MOVE: "alu",
    OpCode.OUTPUT: "io",
}

_RELATIVE_ENERGY: dict[OpCode, float] = {
    OpCode.INPUT: 0.0,
    OpCode.CONST: 0.0,
    OpCode.ADD: 1.0,
    OpCode.SUB: 1.0,
    OpCode.MUL: 4.0,
    OpCode.MAC: 5.0,
    OpCode.SHIFT: 0.5,
    OpCode.AND: 0.5,
    OpCode.OR: 0.5,
    OpCode.XOR: 0.5,
    OpCode.NEG: 0.5,
    OpCode.ABS: 0.5,
    OpCode.CMP: 0.5,
    OpCode.MOVE: 0.25,
    OpCode.OUTPUT: 0.0,
}


@dataclass(frozen=True)
class Operation:
    """A single IR operation.

    Attributes:
        name: Unique identifier within the block.
        opcode: The operation kind.
        inputs: Names of the variables read (in positional order).
        output: Name of the variable defined, or ``None`` for sinks
            (:data:`OpCode.OUTPUT`).
        delay: Latency in control steps (``>= 1``).
    """

    name: str
    opcode: OpCode
    inputs: tuple[str, ...] = field(default=())
    output: str | None = None
    delay: int = 1

    def __post_init__(self) -> None:
        if self.delay < 1:
            raise GraphError(f"operation {self.name!r} has delay {self.delay}")
        if self.opcode.defines_value and self.output is None:
            raise GraphError(
                f"operation {self.name!r} ({self.opcode.value}) must define "
                "a variable"
            )
        if not self.opcode.defines_value and self.output is not None:
            raise GraphError(
                f"sink operation {self.name!r} cannot define {self.output!r}"
            )
        if self.opcode in (OpCode.INPUT, OpCode.CONST) and self.inputs:
            raise GraphError(
                f"source operation {self.name!r} cannot read inputs"
            )
        if len(set(self.inputs)) != len(self.inputs):
            # Reading the same variable twice in one op is legal hardware-wise
            # but collapses to a single port access; callers should dedupe.
            raise GraphError(
                f"operation {self.name!r} lists a duplicate input"
            )

    def __str__(self) -> str:
        args = ", ".join(self.inputs)
        target = f"{self.output} = " if self.output else ""
        return f"{target}{self.opcode.value}({args})"
