"""Task flow graphs.

The paper's methodology (section 5) represents an application as a *task
flow graph*: tasks in a partial order, each task holding scheduled basic
blocks.  The allocator runs per basic block; the task graph supplies the
block ordering and the cross-task liveness that makes variables like
``c``/``d`` of figure 1 live out of their defining block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import GraphError
from repro.ir.basic_block import BasicBlock

__all__ = ["Task", "TaskGraph"]


@dataclass
class Task:
    """A schedulable unit holding one basic block.

    Attributes:
        name: Task identifier.
        block: The basic block the task executes.
        rate: Invocations per frame (used by energy roll-ups: a task running
            twice per frame dissipates twice its per-run energy).
    """

    name: str
    block: BasicBlock
    rate: int = 1

    def __post_init__(self) -> None:
        if self.rate < 1:
            raise GraphError(f"task {self.name!r} has rate {self.rate}")


class TaskGraph:
    """A DAG of tasks with precedence edges."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._tasks: dict[str, Task] = {}
        self._edges: set[tuple[str, str]] = set()

    def add_task(self, task: Task) -> Task:
        """Register *task*; names must be unique."""
        if task.name in self._tasks:
            raise GraphError(f"duplicate task {task.name!r}")
        self._tasks[task.name] = task
        return task

    def add_edge(self, before: str, after: str) -> None:
        """Declare that *before* must complete before *after* starts."""
        if before not in self._tasks or after not in self._tasks:
            raise GraphError(f"unknown task in edge {before!r} -> {after!r}")
        if before == after:
            raise GraphError(f"self-edge on task {before!r}")
        self._edges.add((before, after))
        if self.topological_order() is None:
            self._edges.remove((before, after))
            raise GraphError(
                f"edge {before!r} -> {after!r} would create a cycle"
            )

    @property
    def tasks(self) -> tuple[Task, ...]:
        return tuple(self._tasks.values())

    @property
    def edges(self) -> frozenset[tuple[str, str]]:
        return frozenset(self._edges)

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise GraphError(f"unknown task {name!r}") from None

    def predecessors(self, name: str) -> tuple[Task, ...]:
        return tuple(
            self._tasks[a] for a, b in sorted(self._edges) if b == name
        )

    def successors(self, name: str) -> tuple[Task, ...]:
        return tuple(
            self._tasks[b] for a, b in sorted(self._edges) if a == name
        )

    def topological_order(self) -> list[Task] | None:
        """Tasks in a precedence-respecting order, or ``None`` if cyclic."""
        indegree = {name: 0 for name in self._tasks}
        for _, after in self._edges:
            indegree[after] += 1
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: list[Task] = []
        while ready:
            name = ready.pop(0)
            order.append(self._tasks[name])
            for a, b in sorted(self._edges):
                if a == name:
                    indegree[b] -= 1
                    if indegree[b] == 0:
                        ready.append(b)
            ready.sort()
        if len(order) != len(self._tasks):
            return None
        return order

    def blocks(self) -> Iterator[BasicBlock]:
        """Basic blocks in topological task order."""
        order = self.topological_order()
        assert order is not None  # cycles rejected at add_edge time
        for task in order:
            yield task.block

    def __len__(self) -> int:
        return len(self._tasks)
