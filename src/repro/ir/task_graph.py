"""Task flow graphs.

The paper's methodology (section 5) represents an application as a *task
flow graph*: tasks in a partial order, each task holding scheduled basic
blocks.  The allocator runs per basic block; the task graph supplies the
block ordering and the cross-task liveness that makes variables like
``c``/``d`` of figure 1 live out of their defining block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.exceptions import GraphError
from repro.ir.basic_block import BasicBlock
from repro.ir.operations import OpCode, Operation
from repro.ir.values import DataVariable

__all__ = ["TASK_GRAPH_SCHEMA", "Task", "TaskGraph"]

#: Schema identifier stamped on serialised task graphs.
TASK_GRAPH_SCHEMA = "repro/task-graph/v1"


@dataclass
class Task:
    """A schedulable unit holding one basic block.

    Attributes:
        name: Task identifier.
        block: The basic block the task executes.
        rate: Invocations per frame (used by energy roll-ups: a task running
            twice per frame dissipates twice its per-run energy).
    """

    name: str
    block: BasicBlock
    rate: int = 1

    def __post_init__(self) -> None:
        if self.rate < 1:
            raise GraphError(f"task {self.name!r} has rate {self.rate}")


class TaskGraph:
    """A DAG of tasks with precedence edges."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._tasks: dict[str, Task] = {}
        self._edges: set[tuple[str, str]] = set()

    def add_task(self, task: Task) -> Task:
        """Register *task*; names must be unique."""
        if task.name in self._tasks:
            raise GraphError(f"duplicate task {task.name!r}")
        self._tasks[task.name] = task
        return task

    def add_edge(self, before: str, after: str) -> None:
        """Declare that *before* must complete before *after* starts."""
        if before not in self._tasks or after not in self._tasks:
            raise GraphError(f"unknown task in edge {before!r} -> {after!r}")
        if before == after:
            raise GraphError(f"self-edge on task {before!r}")
        self._edges.add((before, after))
        if self.topological_order() is None:
            self._edges.remove((before, after))
            raise GraphError(
                f"edge {before!r} -> {after!r} would create a cycle"
            )

    @property
    def tasks(self) -> tuple[Task, ...]:
        return tuple(self._tasks.values())

    @property
    def edges(self) -> frozenset[tuple[str, str]]:
        return frozenset(self._edges)

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise GraphError(f"unknown task {name!r}") from None

    def predecessors(self, name: str) -> tuple[Task, ...]:
        return tuple(
            self._tasks[a] for a, b in sorted(self._edges) if b == name
        )

    def successors(self, name: str) -> tuple[Task, ...]:
        return tuple(
            self._tasks[b] for a, b in sorted(self._edges) if a == name
        )

    def topological_order(self) -> list[Task] | None:
        """Tasks in a precedence-respecting order, or ``None`` if cyclic."""
        indegree = {name: 0 for name in self._tasks}
        for _, after in self._edges:
            indegree[after] += 1
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: list[Task] = []
        while ready:
            name = ready.pop(0)
            order.append(self._tasks[name])
            for a, b in sorted(self._edges):
                if a == name:
                    indegree[b] -= 1
                    if indegree[b] == 0:
                        ready.append(b)
            ready.sort()
        if len(order) != len(self._tasks):
            return None
        return order

    def blocks(self) -> Iterator[BasicBlock]:
        """Basic blocks in topological task order."""
        order = self.topological_order()
        assert order is not None  # cycles rejected at add_edge time
        for task in order:
            yield task.block

    def __len__(self) -> int:
        return len(self._tasks)

    # ------------------------------------------------------------------
    # serialisation (``repro/task-graph/v1``)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Serialise the graph (tasks, embedded blocks, edges) to JSON data.

        The document follows the :mod:`repro.workloads.serialize` idiom:
        a ``schema`` stamp plus plain lists that round-trip unchanged
        through ``json.dumps``/``json.loads``.  Blocks embed their full
        operation lists (opcode, inputs, output, delay), declared variable
        widths/traces and live-out sets, so :meth:`from_dict` rebuilds
        byte-identical :class:`~repro.ir.basic_block.BasicBlock` objects.
        """
        return {
            "schema": TASK_GRAPH_SCHEMA,
            "name": self.name,
            "tasks": [
                {
                    "name": task.name,
                    "rate": task.rate,
                    "block": _block_to_dict(task.block),
                }
                for task in self._tasks.values()
            ],
            "edges": sorted(list(edge) for edge in self._edges),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TaskGraph":
        """Rebuild a graph serialised by :meth:`to_dict`.

        Validates through the normal constructors: malformed blocks,
        duplicate tasks, unknown edge endpoints and cycles all raise
        :class:`~repro.exceptions.GraphError`.
        """
        if data.get("schema") != TASK_GRAPH_SCHEMA:
            raise GraphError(
                f"unknown task-graph schema {data.get('schema')!r}"
            )
        graph = cls(str(data.get("name", "graph")))
        for entry in data.get("tasks", ()):
            try:
                name = entry["name"]
                block = _block_from_dict(entry["block"])
            except KeyError as exc:
                raise GraphError(f"task entry missing field {exc}") from None
            graph.add_task(Task(str(name), block, int(entry.get("rate", 1))))
        for edge in data.get("edges", ()):
            before, after = edge
            graph.add_edge(str(before), str(after))
        return graph


def _block_to_dict(block: BasicBlock) -> dict[str, Any]:
    """JSON-ready view of one basic block (operations, variables, live-out)."""
    return {
        "name": block.name,
        "operations": [
            {
                "name": op.name,
                "opcode": op.opcode.value,
                "inputs": list(op.inputs),
                "output": op.output,
                "delay": op.delay,
            }
            for op in block.operations
        ],
        "variables": [
            {
                "name": var.name,
                "width": var.width,
                "trace": list(var.trace),
            }
            for var in block.variables.values()
        ],
        "live_out": sorted(block.live_out),
    }


def _block_from_dict(data: Mapping[str, Any]) -> BasicBlock:
    """Rebuild a block serialised by :func:`_block_to_dict`."""
    try:
        operations = [
            Operation(
                name=str(entry["name"]),
                opcode=OpCode(entry["opcode"]),
                inputs=tuple(str(i) for i in entry.get("inputs", ())),
                output=(
                    str(entry["output"])
                    if entry.get("output") is not None
                    else None
                ),
                delay=int(entry.get("delay", 1)),
            )
            for entry in data.get("operations", ())
        ]
    except KeyError as exc:
        raise GraphError(f"operation entry missing field {exc}") from None
    except ValueError as exc:
        raise GraphError(f"bad operation entry: {exc}") from None
    variables = [
        DataVariable(
            str(entry["name"]),
            int(entry.get("width", 16)),
            tuple(entry.get("trace", ())),
        )
        for entry in data.get("variables", ())
    ]
    return BasicBlock.from_operations(
        str(data.get("name", "block")),
        operations,
        live_out=tuple(str(v) for v in data.get("live_out", ())),
        variables=variables,
    )
