"""Data variables.

A :class:`DataVariable` is the unit the allocator places: a single-assignment
value produced by one operation and consumed by one or more operations
(Problem 1 in the paper).  Each variable carries a bit width and, optionally,
a *value trace* — the sequence of concrete values the storage location would
observe — used by the activity-based energy model to compute Hamming
distances (eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import GraphError

__all__ = ["DataVariable", "hamming_distance", "expected_hamming"]

#: Default word size used throughout the paper's experiments (16-bit CMOS
#: library, section 2).
DEFAULT_WIDTH = 16


@dataclass(frozen=True)
class DataVariable:
    """A single-assignment data value.

    Attributes:
        name: Unique identifier within its basic block.
        width: Bit width of the value (defaults to 16, the paper's library).
        trace: Optional tuple of concrete values the variable takes over
            successive block executions; used to estimate switching activity.
            An empty trace means "unknown" and activity falls back to the
            expected-Hamming approximation.
    """

    name: str
    width: int = DEFAULT_WIDTH
    trace: tuple[int, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise GraphError(f"variable {self.name!r} has width {self.width}")
        mask = (1 << self.width) - 1
        for value in self.trace:
            if value < 0 or value > mask:
                raise GraphError(
                    f"trace value {value} of {self.name!r} does not fit "
                    f"in {self.width} bits"
                )

    def representative_value(self) -> int | None:
        """First trace value, or ``None`` when no trace is attached."""
        return self.trace[0] if self.trace else None

    def __str__(self) -> str:
        return self.name


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two machine words."""
    return (a ^ b).bit_count()


def expected_hamming(width: int, activity_factor: float = 0.5) -> float:
    """Expected Hamming distance for unknown data.

    The paper assumes half the bits switch when nothing is known ("0.5 of the
    bits change at time 0", section 6); *activity_factor* makes the fraction
    tunable for correlated data.
    """
    if not 0.0 <= activity_factor <= 1.0:
        raise GraphError(f"activity factor {activity_factor} outside [0, 1]")
    return width * activity_factor


def mean_trace_hamming(v1: DataVariable, v2: DataVariable) -> float:
    """Average Hamming distance between paired trace samples of two variables.

    Falls back to :func:`expected_hamming` over the wider of the two widths
    when either trace is missing; mismatched trace lengths compare the common
    prefix.
    """
    if not v1.trace or not v2.trace:
        return expected_hamming(max(v1.width, v2.width))
    pairs = list(zip(v1.trace, v2.trace))
    return sum(hamming_distance(a, b) for a, b in pairs) / len(pairs)


def normalized_switching(v1: DataVariable, v2: DataVariable) -> float:
    """Switching activity as a fraction of the word width (paper fig. 3).

    The paper's examples quote activities as "number of bits which change
    over total number of bits"; this helper reproduces that normalisation.
    """
    width = max(v1.width, v2.width)
    return mean_trace_hamming(v1, v2) / width


def variables_by_name(variables: Iterable[DataVariable]) -> dict[str, DataVariable]:
    """Index *variables* by name, rejecting duplicates."""
    table: dict[str, DataVariable] = {}
    for var in variables:
        if var.name in table:
            raise GraphError(f"duplicate variable name {var.name!r}")
        table[var.name] = var
    return table
