"""Basic blocks: single-assignment operation lists with dataflow queries.

A :class:`BasicBlock` is the unit the paper's technique operates on
("the minimum cost network flow approach is applied to each basic block",
section 5).  It validates the single-assignment discipline the lifetime
model relies on (each variable has exactly one write time) and exposes the
producer/consumer relations the scheduler and lifetime analysis need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.exceptions import GraphError
from repro.ir.operations import Operation
from repro.ir.values import DataVariable

__all__ = ["BasicBlock"]


@dataclass
class BasicBlock:
    """An ordered, single-assignment list of operations.

    Attributes:
        name: Block identifier (used in reports).
        operations: Operations in program order; the order is a valid
            linearisation of the dataflow dependences (checked).
        variables: Declared variables; any variable referenced by an
            operation but not declared is auto-declared with default width.
        live_out: Names of variables read by later tasks (their lifetimes
            extend past the end of the block, like ``c`` and ``d`` in
            figure 1 of the paper).
    """

    name: str
    operations: list[Operation] = field(default_factory=list)
    variables: dict[str, DataVariable] = field(default_factory=dict)
    live_out: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        self.live_out = frozenset(self.live_out)
        self._producer: dict[str, Operation] = {}
        self._consumers: dict[str, list[Operation]] = {}
        names: set[str] = set()
        defined: set[str] = set()
        for op in self.operations:
            if op.name in names:
                raise GraphError(
                    f"duplicate operation name {op.name!r} in block {self.name!r}"
                )
            names.add(op.name)
            for read in op.inputs:
                if read not in defined:
                    raise GraphError(
                        f"operation {op.name!r} reads {read!r} before its "
                        f"definition in block {self.name!r}"
                    )
                self._consumers.setdefault(read, []).append(op)
            if op.output is not None:
                if op.output in defined:
                    raise GraphError(
                        f"variable {op.output!r} assigned twice in block "
                        f"{self.name!r} (single assignment required)"
                    )
                defined.add(op.output)
                self._producer[op.output] = op
        for var in defined:
            if var not in self.variables:
                self.variables[var] = DataVariable(var)
        unknown = set(self.variables) - defined
        if unknown:
            raise GraphError(
                f"declared variables never defined in block {self.name!r}: "
                f"{sorted(unknown)}"
            )
        missing_live_out = self.live_out - defined
        if missing_live_out:
            raise GraphError(
                f"live-out variables not defined in block {self.name!r}: "
                f"{sorted(missing_live_out)}"
            )

    # ------------------------------------------------------------------
    # dataflow queries
    # ------------------------------------------------------------------
    def producer(self, variable: str) -> Operation:
        """The unique operation defining *variable*."""
        try:
            return self._producer[variable]
        except KeyError:
            raise GraphError(
                f"no producer for {variable!r} in block {self.name!r}"
            ) from None

    def consumers(self, variable: str) -> tuple[Operation, ...]:
        """Operations reading *variable*, in program order."""
        return tuple(self._consumers.get(variable, ()))

    def variable(self, name: str) -> DataVariable:
        """Declared :class:`DataVariable` for *name*."""
        try:
            return self.variables[name]
        except KeyError:
            raise GraphError(
                f"unknown variable {name!r} in block {self.name!r}"
            ) from None

    def variable_names(self) -> tuple[str, ...]:
        """All defined variable names, in definition order."""
        return tuple(
            op.output for op in self.operations if op.output is not None
        )

    def operation(self, name: str) -> Operation:
        """Operation with the given *name*."""
        for op in self.operations:
            if op.name == name:
                return op
        raise GraphError(f"unknown operation {name!r} in block {self.name!r}")

    def predecessors(self, op: Operation) -> tuple[Operation, ...]:
        """Operations whose outputs *op* reads."""
        return tuple(self.producer(read) for read in op.inputs)

    def successors(self, op: Operation) -> tuple[Operation, ...]:
        """Operations reading the output of *op*."""
        if op.output is None:
            return ()
        return self.consumers(op.output)

    def dependence_edges(self) -> Iterator[tuple[Operation, Operation]]:
        """All dataflow edges ``(producer, consumer)``."""
        for op in self.operations:
            for read in op.inputs:
                yield self.producer(read), op

    def is_dead(self, variable: str) -> bool:
        """True if *variable* has no consumer and is not live out."""
        return not self._consumers.get(variable) and variable not in self.live_out

    def sources(self) -> tuple[Operation, ...]:
        """Operations with no dataflow predecessors."""
        return tuple(op for op in self.operations if not op.inputs)

    def critical_path_length(self) -> int:
        """Length (in control steps) of the longest dependence chain."""
        available: dict[str, int] = {}  # variable name -> ready time
        longest = 0
        for op in self.operations:
            start = max((available[read] for read in op.inputs), default=0)
            finish = start + op.delay
            if op.output is not None:
                available[op.output] = finish
            longest = max(longest, finish)
        return longest

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    @classmethod
    def from_operations(
        cls,
        name: str,
        operations: Iterable[Operation],
        live_out: Iterable[str] = (),
        variables: Iterable[DataVariable] = (),
    ) -> "BasicBlock":
        """Convenience constructor accepting iterables."""
        return cls(
            name=name,
            operations=list(operations),
            variables={v.name: v for v in variables},
            live_out=frozenset(live_out),
        )
