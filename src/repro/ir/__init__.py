"""Dataflow intermediate representation substrate.

Provides the program objects Problem 1 is defined over: single-assignment
data variables, operations, basic blocks, task graphs, and a fluent builder
for writing kernels.
"""

from repro.ir.basic_block import BasicBlock
from repro.ir.builder import BlockBuilder
from repro.ir.operations import OpCode, Operation
from repro.ir.task_graph import TASK_GRAPH_SCHEMA, Task, TaskGraph
from repro.ir.values import (
    DEFAULT_WIDTH,
    DataVariable,
    expected_hamming,
    hamming_distance,
    mean_trace_hamming,
    normalized_switching,
)

__all__ = [
    "BasicBlock",
    "BlockBuilder",
    "DEFAULT_WIDTH",
    "DataVariable",
    "OpCode",
    "Operation",
    "TASK_GRAPH_SCHEMA",
    "Task",
    "TaskGraph",
    "expected_hamming",
    "hamming_distance",
    "mean_trace_hamming",
    "normalized_switching",
]
