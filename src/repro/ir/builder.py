"""Fluent builder for dataflow kernels.

Writing :class:`~repro.ir.basic_block.BasicBlock` instances by hand is
verbose; the builder lets workload modules and examples express kernels
compactly::

    b = BlockBuilder("fir3")
    x0, x1, x2 = (b.input(f"x{i}") for i in range(3))
    c0, c1, c2 = (b.const(f"c{i}") for i in range(3))
    p0 = b.mul(x0, c0)
    p1 = b.mul(x1, c1)
    acc = b.add(p0, p1)
    y = b.add(acc, b.mul(x2, c2), name="y")
    b.output(y)
    block = b.build()
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.exceptions import GraphError
from repro.ir.basic_block import BasicBlock
from repro.ir.operations import OpCode, Operation
from repro.ir.values import DEFAULT_WIDTH, DataVariable

__all__ = ["BlockBuilder"]


class BlockBuilder:
    """Incrementally constructs a single-assignment basic block."""

    def __init__(self, name: str, default_width: int = DEFAULT_WIDTH) -> None:
        self.name = name
        self.default_width = default_width
        self._operations: list[Operation] = []
        self._variables: dict[str, DataVariable] = {}
        self._live_out: set[str] = set()
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def input(
        self,
        name: str | None = None,
        width: int | None = None,
        trace: Iterable[int] = (),
    ) -> str:
        """Declare an externally produced value; returns its variable name."""
        return self._emit(OpCode.INPUT, (), name, width, trace)

    def const(
        self,
        name: str | None = None,
        width: int | None = None,
        trace: Iterable[int] = (),
    ) -> str:
        """Declare a constant value; returns its variable name."""
        return self._emit(OpCode.CONST, (), name, width, trace)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def add(self, a: str, b: str, name: str | None = None, **kw) -> str:
        return self._emit(OpCode.ADD, (a, b), name, **kw)

    def sub(self, a: str, b: str, name: str | None = None, **kw) -> str:
        return self._emit(OpCode.SUB, (a, b), name, **kw)

    def mul(self, a: str, b: str, name: str | None = None, **kw) -> str:
        return self._emit(OpCode.MUL, (a, b), name, **kw)

    def mac(self, a: str, b: str, c: str, name: str | None = None, **kw) -> str:
        """Multiply-accumulate ``a * b + c``."""
        return self._emit(OpCode.MAC, (a, b, c), name, **kw)

    def shift(self, a: str, name: str | None = None, **kw) -> str:
        return self._emit(OpCode.SHIFT, (a,), name, **kw)

    def neg(self, a: str, name: str | None = None, **kw) -> str:
        return self._emit(OpCode.NEG, (a,), name, **kw)

    def move(self, a: str, name: str | None = None, **kw) -> str:
        return self._emit(OpCode.MOVE, (a,), name, **kw)

    def op(
        self,
        opcode: OpCode,
        inputs: Iterable[str],
        name: str | None = None,
        **kw,
    ) -> str:
        """Emit an arbitrary value-defining operation."""
        if not opcode.defines_value:
            raise GraphError("use output() for sink operations")
        return self._emit(opcode, tuple(inputs), name, **kw)

    # ------------------------------------------------------------------
    # sinks
    # ------------------------------------------------------------------
    def output(self, variable: str) -> None:
        """Mark *variable* as consumed by an OUTPUT sink inside the block."""
        self._check_defined(variable)
        op_name = f"out_{variable}_{next(self._counter)}"
        self._operations.append(
            Operation(op_name, OpCode.OUTPUT, inputs=(variable,))
        )

    def live_out(self, *variables: str) -> None:
        """Mark variables as read by a later task (lifetime extends past the
        block end, like ``c``/``d`` in figure 1 of the paper)."""
        for variable in variables:
            self._check_defined(variable)
            self._live_out.add(variable)

    # ------------------------------------------------------------------
    # finish
    # ------------------------------------------------------------------
    def build(self) -> BasicBlock:
        """Produce the validated :class:`BasicBlock`."""
        return BasicBlock(
            name=self.name,
            operations=list(self._operations),
            variables=dict(self._variables),
            live_out=frozenset(self._live_out),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _emit(
        self,
        opcode: OpCode,
        inputs: tuple[str, ...],
        name: str | None,
        width: int | None = None,
        trace: Iterable[int] = (),
        delay: int = 1,
    ) -> str:
        for read in inputs:
            self._check_defined(read)
        out = name or f"v{next(self._counter)}"
        if out in self._variables:
            raise GraphError(f"variable {out!r} already defined")
        self._variables[out] = DataVariable(
            out, width or self.default_width, tuple(trace)
        )
        self._operations.append(
            Operation(
                f"op_{out}",
                opcode,
                inputs=inputs,
                output=out,
                delay=delay,
            )
        )
        return out

    def _check_defined(self, variable: str) -> None:
        if variable not in self._variables:
            raise GraphError(
                f"variable {variable!r} is not defined in builder {self.name!r}"
            )
