"""Task-graph partitioning and per-partition DVFS co-optimisation.

The paper allocates one basic block at a time; this package lifts the
technique to whole applications.  A :class:`~repro.ir.task_graph.TaskGraph`
is cut into per-core/per-era partitions under a deadline
(:mod:`repro.dag.partition`), each partition gets the cheapest feasible
``(voltage, frequency)`` operating point under the classic CMOS
delay/voltage relation (:mod:`repro.dag.operating_points`), the per-block
flow solves fan out through the batch service
(:mod:`repro.dag.manifest_emit`), and everything is rolled up into a
versioned ``repro.dag/report/v1`` document (:mod:`repro.dag.report`) that
the :func:`repro.verify.oracles.oracle_dag_reconciliation` oracle can
re-check independently.

The partition + energy minimisation problem is NP-hard even in restricted
forms (Liu/Chen/Yang, see PAPERS.md), so the cut is an earliest-finish-time
heuristic with a handoff-cost refinement pass — but every per-block solve
below it stays the paper's *optimal* min-cost flow, certificate checks
included, and the roll-up is oracle-reconciled.
"""

from repro.dag.manifest_emit import DagJob, build_jobs, dispatch_blocks, emit_manifest
from repro.dag.operating_points import (
    DELAY_SLACK,
    DvfsSelection,
    FrontierPoint,
    OperatingPoint,
    default_ladder,
    sweep_operating_points,
)
from repro.dag.partition import (
    HandoffCost,
    Partition,
    PartitionPlan,
    partition_graph,
    plan_handoffs,
)
from repro.dag.report import (
    DAG_REPORT_SCHEMA,
    build_dag_report,
    render_dag_text,
    report_to_json,
)

__all__ = [
    "DAG_REPORT_SCHEMA",
    "DELAY_SLACK",
    "DagJob",
    "DvfsSelection",
    "FrontierPoint",
    "HandoffCost",
    "OperatingPoint",
    "Partition",
    "PartitionPlan",
    "build_dag_report",
    "build_jobs",
    "default_ladder",
    "dispatch_blocks",
    "emit_manifest",
    "partition_graph",
    "plan_handoffs",
    "render_dag_text",
    "report_to_json",
    "sweep_operating_points",
]
