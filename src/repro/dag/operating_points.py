"""Per-partition DVFS co-optimisation.

Given a :class:`~repro.dag.partition.PartitionPlan`, this module assigns
each partition a ``(slowdown, voltage)`` **operating point**: slowing a
partition's clock by a divisor ``d`` lets its supply drop to the lowest
voltage still meeting the classic CMOS delay relation
``delay(V)/delay(V_nominal) <= d``, and every memory/register access
inside the partition then costs ``(V/V_nominal)^2`` of its nominal
energy.  The feasibility check is the same delay-slack relation the lint
rule RA403 enforces (:data:`DELAY_SLACK` is asserted equal to the lint
constant by the test battery, so the two cannot drift apart).

The co-optimiser re-solves every task's min-cost-flow allocation at every
candidate voltage.  Because only supply voltages change — the clock
divisor of the *storage* stays 1 — each re-solve is a cost-only
perturbation of an unchanged network topology, so the sweep builds each
task's network once, re-costs it per point
(:func:`~repro.core.network_builder.recost_network`) and warm-starts
every solve after the first out of a shared
:class:`~repro.flow.warm_start.WarmStartCache`, exactly like the
design-space explorer (:mod:`repro.analysis.exploration`).

Selection is greedy but exact per step: partitions are visited in
descending-work order and each takes the cheapest operating point whose
induced frame makespan still meets the deadline.  The full
energy-vs-makespan trade-off (all uniform ladder assignments plus the
selected mixed assignment, non-dominated points only) is returned as a
Pareto frontier for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.network_builder import BuiltNetwork, build_network, recost_network
from repro.core.options import SolveOptions
from repro.core.problem import AllocationProblem
from repro.core.solver import solve_built
from repro.dag.partition import PartitionPlan
from repro.energy.models import (
    EnergyModel,
    StaticEnergyModel,
    reference_reg_voltage,
)
from repro.energy.voltage import (
    NOMINAL_VOLTAGE,
    MemoryConfig,
    cmos_delay_factor,
    max_divisor_supply,
)
from repro.exceptions import DagError, GraphError
from repro.flow.warm_start import WarmStartCache
from repro.obs import trace as obs

__all__ = [
    "DELAY_SLACK",
    "DvfsSelection",
    "FrontierPoint",
    "OperatingPoint",
    "default_ladder",
    "sweep_operating_points",
]

#: Tolerated overshoot of the CMOS delay factor over the clock slowdown.
#: Mirrors the lint rule RA403 slack (``repro.lint.rules_energy``); a
#: parity test pins the two together.
DELAY_SLACK = 0.05


@dataclass(frozen=True)
class OperatingPoint:
    """One ``(slowdown, voltage)`` DVFS setting.

    Attributes:
        slowdown: Clock divisor relative to the nominal frequency
            (``1.0`` = full speed); multiplies every member task's
            runtime in the makespan model.
        voltage: Supply the partition's storage runs at.
    """

    slowdown: float
    voltage: float

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise DagError(
                f"operating-point slowdown must be >= 1, got {self.slowdown}"
            )

    @property
    def feasible(self) -> bool:
        """Whether the point satisfies the RA403 delay-slack relation:
        ``cmos_delay_factor(V) <= slowdown * (1 + DELAY_SLACK)``."""
        factor = cmos_delay_factor(self.voltage)
        return factor <= self.slowdown * (1.0 + DELAY_SLACK)

    def to_dict(self) -> dict[str, float]:
        """JSON-ready ``{"slowdown", "voltage"}`` view."""
        return {"slowdown": self.slowdown, "voltage": self.voltage}


def default_ladder(
    slowdowns: Sequence[float] = (1.0, 1.5, 2.0, 3.0, 4.0),
) -> tuple[OperatingPoint, ...]:
    """The standard candidate ladder for *slowdowns*.

    Slowdown 1 pins the nominal supply; every other rung takes the
    lowest supply still meeting its divisor under the CMOS delay
    relation (:func:`~repro.energy.voltage.max_divisor_supply`), rounded
    to millivolts the way the banked-grid presets are.
    """
    points = []
    for slowdown in slowdowns:
        if slowdown == 1.0:
            voltage = NOMINAL_VOLTAGE
        else:
            voltage = round(max_divisor_supply(slowdown), 3)
        points.append(OperatingPoint(slowdown=float(slowdown), voltage=voltage))
    return tuple(points)


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated energy-vs-makespan trade-off.

    Attributes:
        label: Human tag (``uniform:2x`` for a ladder-uniform
            assignment, ``selected`` for the greedy pick).
        makespan: Frame makespan under the assignment.
        energy: Per-frame energy: all per-block allocation energies at
            the assigned voltages plus cross-partition handoffs.
        assignment: Partition id → operating point.
        meets_deadline: Whether *makespan* is within the plan deadline.
    """

    label: str
    makespan: float
    energy: float
    assignment: Mapping[str, OperatingPoint]
    meets_deadline: bool


@dataclass(frozen=True)
class DvfsSelection:
    """Outcome of one DVFS co-optimisation sweep.

    Attributes:
        assignment: Partition id → chosen operating point.
        partition_energies: Partition id → per-frame allocation energy
            of its member blocks at the chosen point.
        block_energies: Task name → per-frame allocation energy at its
            partition's chosen point (rate-weighted).
        handoff_energy: Total cross-partition handoff energy (voltage
            independent: handoffs go through the shared memory at its
            reference supply).
        total_energy: ``sum(partition_energies) + handoff_energy``.
        makespan: Frame makespan under the chosen assignment.
        frontier: Non-dominated (makespan, energy) trade-offs, sorted by
            ascending makespan.
    """

    assignment: Mapping[str, OperatingPoint]
    partition_energies: Mapping[str, float]
    block_energies: Mapping[str, float]
    handoff_energy: float
    total_energy: float
    makespan: float
    frontier: tuple[FrontierPoint, ...]


def _point_model(base: EnergyModel, voltage: float) -> EnergyModel:
    """*base* rescaled to a partition supply of *voltage*.

    The register file tracks the core supply proportionally (a custom
    model's nominal register supply is resolved through
    :func:`~repro.energy.models.reference_reg_voltage`, so a nominal
    point leaves the model untouched).
    """
    reg = reference_reg_voltage(base) * voltage / NOMINAL_VOLTAGE
    return base.with_voltages(voltage, reg)


def task_problem(
    plan: PartitionPlan,
    task_name: str,
    point: OperatingPoint,
    register_count: int,
    energy_model: EnergyModel | None = None,
) -> AllocationProblem:
    """The allocation instance of one task at one operating point.

    Built from the plan's own list schedule so timing and allocation see
    the same horizon; the memory config carries the point's supply with
    divisor 1 — the slowdown stretches wall-clock time, not the
    storage/datapath clock ratio, so the flow network topology is
    voltage-invariant and re-solves warm-start.
    """
    base = energy_model or StaticEnergyModel()
    return AllocationProblem.from_schedule(
        plan.schedules[task_name],
        register_count,
        energy_model=_point_model(base, point.voltage),
        memory=MemoryConfig(voltage=point.voltage),
    )


def _non_dominated(points: list[FrontierPoint]) -> tuple[FrontierPoint, ...]:
    """Filter to Pareto-optimal (makespan, energy) points."""
    kept = []
    for candidate in points:
        dominated = any(
            other.makespan <= candidate.makespan
            and other.energy <= candidate.energy
            and (
                other.makespan < candidate.makespan
                or other.energy < candidate.energy
            )
            for other in points
            if other is not candidate
        )
        if not dominated:
            kept.append(candidate)
    deduped: list[FrontierPoint] = []
    for point in sorted(kept, key=lambda p: (p.makespan, p.energy, p.label)):
        if deduped and (
            deduped[-1].makespan == point.makespan
            and deduped[-1].energy == point.energy
        ):
            continue
        deduped.append(point)
    return tuple(deduped)


def sweep_operating_points(
    plan: PartitionPlan,
    register_count: int = 4,
    ladder: Sequence[OperatingPoint] | None = None,
    energy_model: EnergyModel | None = None,
    handoff_energy: float = 0.0,
    warm_start: bool = True,
) -> DvfsSelection:
    """Pick the cheapest feasible operating point per partition.

    Every task is allocated (min-cost flow) at every ladder voltage —
    one network build per task, warm-started cost-only re-solves for the
    rest.  Partitions then greedily take, in descending-work order, the
    cheapest point that keeps the frame makespan within
    ``plan.deadline``; the returned selection also carries the Pareto
    frontier over all uniform ladder assignments plus the selected one.

    Args:
        plan: The partitioned task graph.
        register_count: Register-file size of every per-task solve.
        ladder: Candidate operating points (default
            :func:`default_ladder`); every rung must satisfy the RA403
            delay-slack relation.
        energy_model: Base (nominal-voltage) energy model.
        handoff_energy: Total cross-partition handoff energy to fold
            into frontier/total energies (compute it with
            :func:`~repro.dag.partition.plan_handoffs`; voltage
            independent, so it is a constant offset).
        warm_start: Set ``False`` to force independent cold solves
            (results are identical; this only trades speed).

    Returns:
        A :class:`DvfsSelection`.

    Raises:
        DagError: Empty or RA403-infeasible ladder, or no assignment
            meets the deadline (cannot happen when the ladder contains a
            nominal point, since the plan's nominal makespan is already
            within its deadline).
    """
    points = tuple(ladder) if ladder is not None else default_ladder()
    if not points:
        raise DagError("operating-point ladder is empty")
    for point in points:
        if not point.feasible:
            raise DagError(
                f"operating point {point.slowdown:g}x @ {point.voltage:g}V "
                f"violates the CMOS delay-slack relation (RA403): "
                f"delay factor {cmos_delay_factor(point.voltage):.3f} > "
                f"{point.slowdown:g} * (1 + {DELAY_SLACK})"
            )
    base = energy_model or StaticEnergyModel()
    with obs.span("dag.dvfs_sweep"):
        # per-frame allocation energy of every task at every rung
        cache = WarmStartCache() if warm_start else None
        task_energy: dict[tuple[str, float], float] = {}
        order = plan.graph.topological_order()
        assert order is not None
        for task in order:
            built: BuiltNetwork | None = None
            for point in points:
                problem = task_problem(
                    plan, task.name, point, register_count, base
                )
                if cache is None:
                    built = build_network(problem)
                else:
                    if built is not None:
                        try:
                            built = recost_network(built, problem)
                        except GraphError:
                            built = None  # topology moved: rebuild below
                    if built is None:
                        built = build_network(problem)
                allocation = solve_built(
                    built, SolveOptions(warm_cache=cache)
                )
                task_energy[(task.name, point.voltage)] = (
                    allocation.total_energy * task.rate
                )
                obs.count("dag.dvfs_sweep.solves")
        obs.count("dag.dvfs_sweep.points", len(points))

        def partition_energy(pid: str, point: OperatingPoint) -> float:
            partition = next(p for p in plan.partitions if p.id == pid)
            return sum(
                task_energy[(name, point.voltage)] for name in partition.tasks
            )

        # greedy selection: cheapest feasible point, heaviest partition first
        nominal = min(points, key=lambda p: p.slowdown)
        assignment: dict[str, OperatingPoint] = {
            p.id: nominal for p in plan.partitions
        }
        if plan.makespan({pid: pt.slowdown for pid, pt in assignment.items()}) > (
            plan.deadline
        ):
            raise DagError(
                f"no ladder point meets the deadline {plan.deadline:g}: even "
                f"the fastest assignment exceeds it"
            )
        for partition in sorted(
            plan.partitions, key=lambda p: (-p.work, p.id)
        ):
            best = assignment[partition.id]
            best_energy = partition_energy(partition.id, best)
            for point in points:
                trial = dict(assignment)
                trial[partition.id] = point
                makespan = plan.makespan(
                    {pid: pt.slowdown for pid, pt in trial.items()}
                )
                if makespan > plan.deadline:
                    continue
                energy = partition_energy(partition.id, point)
                if energy < best_energy or (
                    energy == best_energy and point.slowdown < best.slowdown
                ):
                    best, best_energy = point, energy
            assignment[partition.id] = best

        def evaluate(
            label: str, candidate: Mapping[str, OperatingPoint]
        ) -> FrontierPoint:
            makespan = plan.makespan(
                {pid: pt.slowdown for pid, pt in candidate.items()}
            )
            energy = (
                sum(
                    partition_energy(pid, point)
                    for pid, point in candidate.items()
                )
                + handoff_energy
            )
            return FrontierPoint(
                label=label,
                makespan=makespan,
                energy=energy,
                assignment=dict(candidate),
                meets_deadline=makespan <= plan.deadline,
            )

        candidates = [
            evaluate(
                f"uniform:{point.slowdown:g}x",
                {p.id: point for p in plan.partitions},
            )
            for point in points
        ]
        selected = evaluate("selected", assignment)
        frontier = _non_dominated(candidates + [selected])
        partition_energies = {
            pid: partition_energy(pid, point)
            for pid, point in assignment.items()
        }
        block_energies = {
            task.name: task_energy[
                (task.name, assignment[plan.partition_of(task.name).id].voltage)
            ]
            for task in order
        }
        return DvfsSelection(
            assignment=dict(assignment),
            partition_energies=partition_energies,
            block_energies=block_energies,
            handoff_energy=handoff_energy,
            total_energy=sum(partition_energies.values()) + handoff_energy,
            makespan=selected.makespan,
            frontier=frontier,
        )
