"""Versioned DAG allocation reports (``repro.dag/report/v1``).

The roll-up document of a full task-graph run: the partition structure,
each partition's chosen operating point, per-block allocation energies
(with batch-executor provenance when the blocks went through
:func:`~repro.dag.manifest_emit.dispatch_blocks`), the cross-partition
handoff bill, and the energy-vs-makespan Pareto frontier.  The document
is self-reconciling — ``energy.total`` must equal the sum of the block
energies plus the handoff energies, which is exactly what the
:func:`repro.verify.oracles.oracle_dag_reconciliation` oracle re-checks
from the raw entries.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

from repro.analysis.tables import format_table
from repro.dag.operating_points import DvfsSelection
from repro.dag.partition import HandoffCost, PartitionPlan
from repro.service.executor import JobResult

__all__ = [
    "DAG_REPORT_SCHEMA",
    "build_dag_report",
    "render_dag_text",
    "report_to_json",
]

#: Schema identifier stamped on DAG allocation reports.
DAG_REPORT_SCHEMA = "repro.dag/report/v1"


def build_dag_report(
    plan: PartitionPlan,
    selection: DvfsSelection,
    handoffs: Sequence[HandoffCost],
    results: Sequence[JobResult] | None = None,
    register_count: int | None = None,
) -> dict[str, Any]:
    """Assemble the ``repro.dag/report/v1`` document.

    Args:
        plan: The partitioned task graph.
        selection: The DVFS co-optimisation outcome for *plan*.
        handoffs: Cut-edge costs from
            :func:`~repro.dag.partition.plan_handoffs` (their total must
            match ``selection.handoff_energy`` — the oracle checks).
        results: Batch-executor results, when the blocks were
            dispatched; folded in as per-block provenance
            (status/cached/certified/objective).
        register_count: Register-file size of the per-block solves,
            recorded for reproducibility.

    Returns:
        A JSON-ready dict.
    """
    provenance: dict[str, JobResult] = {}
    for result in results or ():
        task = result.job_id.rsplit(":", 1)[-1]
        provenance[task] = result
    partitions = [
        {
            "id": partition.id,
            "core": partition.core,
            "era": partition.era,
            "tasks": list(partition.tasks),
            "work": partition.work,
            "operating_point": selection.assignment[partition.id].to_dict(),
            "energy": selection.partition_energies[partition.id],
        }
        for partition in plan.partitions
    ]
    blocks = []
    for partition in plan.partitions:
        for task_name in partition.tasks:
            task = plan.graph.task(task_name)
            entry: dict[str, Any] = {
                "task": task_name,
                "partition": partition.id,
                "rate": task.rate,
                "energy": selection.block_energies[task_name],
            }
            result = provenance.get(task_name)
            if result is not None:
                entry["job"] = {
                    "job_id": result.job_id,
                    "status": result.status,
                    "cached": result.cached,
                    "certified": result.certified,
                    "objective": result.objective,
                }
            blocks.append(entry)
    handoff_entries = [
        {
            "edge": list(handoff.edge),
            "from": handoff.from_partition,
            "to": handoff.to_partition,
            "variables": list(handoff.variables),
            "energy": handoff.energy,
        }
        for handoff in handoffs
    ]
    frontier = [
        {
            "label": point.label,
            "makespan": point.makespan,
            "energy": point.energy,
            "meets_deadline": point.meets_deadline,
            "assignment": {
                pid: op.to_dict() for pid, op in sorted(point.assignment.items())
            },
        }
        for point in selection.frontier
    ]
    report: dict[str, Any] = {
        "schema": DAG_REPORT_SCHEMA,
        "graph": plan.graph.name,
        "tasks": len(plan.graph),
        "deadline": plan.deadline,
        "nominal_makespan": plan.nominal_makespan,
        "makespan": selection.makespan,
        "partitions": partitions,
        "blocks": blocks,
        "handoffs": handoff_entries,
        "energy": {
            "blocks": sum(selection.block_energies.values()),
            "handoffs": selection.handoff_energy,
            "total": selection.total_energy,
        },
        "frontier": frontier,
    }
    if register_count is not None:
        report["register_count"] = register_count
    return report


def report_to_json(report: Mapping[str, Any]) -> str:
    """Serialise *report* to indented JSON with a trailing newline."""
    return json.dumps(report, indent=2) + "\n"


def render_dag_text(report: Mapping[str, Any]) -> str:
    """Human-readable rendering of a ``repro.dag/report/v1`` document."""
    lines = [
        f"task graph {report['graph']!r}: {report['tasks']} task(s), "
        f"makespan {report['makespan']:g} / deadline {report['deadline']:g}"
    ]
    lines.append(
        format_table(
            ["partition", "tasks", "slowdown", "voltage", "energy"],
            [
                [
                    p["id"],
                    " ".join(p["tasks"]),
                    p["operating_point"]["slowdown"],
                    p["operating_point"]["voltage"],
                    p["energy"],
                ]
                for p in report["partitions"]
            ],
            title="partitions",
        )
    )
    if report["handoffs"]:
        lines.append(
            format_table(
                ["edge", "from", "to", "values", "energy"],
                [
                    [
                        "->".join(h["edge"]),
                        h["from"],
                        h["to"],
                        len(h["variables"]),
                        h["energy"],
                    ]
                    for h in report["handoffs"]
                ],
                title="handoffs",
            )
        )
    lines.append(
        format_table(
            ["label", "makespan", "energy", "feasible"],
            [
                [
                    f["label"],
                    f["makespan"],
                    f["energy"],
                    "yes" if f["meets_deadline"] else "no",
                ]
                for f in report["frontier"]
            ],
            title="energy/makespan frontier",
        )
    )
    energy = report["energy"]
    lines.append(
        f"energy: blocks {energy['blocks']:.3f} + handoffs "
        f"{energy['handoffs']:.3f} = {energy['total']:.3f} per frame"
    )
    return "\n\n".join(lines) + "\n"
