"""Deadline-constrained task-graph partitioning.

Cuts a :class:`~repro.ir.task_graph.TaskGraph` into per-core/per-era
partitions: tasks on one core run sequentially, cores run in parallel, and
a core's sequence may be further split into *eras* — contiguous runs that
can later receive their own DVFS operating point.  Every edge whose
endpoints land in different partitions becomes a **memory handoff**: the
producer's live-out values must be written to the shared memory and read
back by the consumer, costed through the existing
:class:`~repro.energy.models.EnergyModel` (and, under a multi-bank
hierarchy, at the :class:`~repro.core.storage.StorageSpec` reference
supply).

Minimising handoff energy subject to a makespan deadline is NP-hard even
in restricted forms (Liu/Chen/Yang, PAPERS.md), so the cut is heuristic:

1. **Earliest-finish-time list scheduling** assigns tasks to cores in
   topological order, minimising the nominal makespan;
2. a **refinement pass** greedily relocates tasks across cores when that
   strictly lowers total handoff energy without pushing the nominal
   makespan past the deadline (moves that would break the
   topological-subsequence invariant of a core's queue are skipped);
3. **era splitting** cuts each core's sequence at zero-flow points — the
   extra partition boundaries cost nothing (no value crosses them on that
   core) and give the DVFS co-optimiser finer slack granularity for free.

The result is deterministic for a given graph: ties break on task name
and core index, never on dict iteration order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.storage import StorageSpec
from repro.energy.models import (
    EnergyModel,
    StaticEnergyModel,
    reference_reg_voltage,
)
from repro.exceptions import DagError
from repro.ir.task_graph import TaskGraph
from repro.obs import trace as obs
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.resources import ResourceSet
from repro.scheduling.schedule import Schedule

__all__ = [
    "HandoffCost",
    "Partition",
    "PartitionPlan",
    "partition_graph",
    "plan_handoffs",
]


@dataclass(frozen=True)
class Partition:
    """One per-core/per-era slice of the task graph.

    Attributes:
        id: Stable identifier, ``core<c>/era<e>``.
        core: Core index the partition executes on.
        era: Position of the partition within its core's sequence.
        tasks: Member task names, in execution (topological) order.
        work: Nominal control steps per frame (scheduled length x rate,
            summed over members) — the quantity DVFS slowdowns multiply.
    """

    id: str
    core: int
    era: int
    tasks: tuple[str, ...]
    work: float


@dataclass(frozen=True)
class HandoffCost:
    """Memory handoff charged for one cut edge.

    Attributes:
        edge: The severed ``(producer task, consumer task)`` edge.
        from_partition: Partition id of the producer.
        to_partition: Partition id of the consumer.
        variables: Live-out variable names that cross the cut.
        energy: Per-frame handoff energy: each crossing value is written
            once per producer run and read once per consumer run at the
            shared memory's operating point.
    """

    edge: tuple[str, str]
    from_partition: str
    to_partition: str
    variables: tuple[str, ...]
    energy: float


@dataclass
class PartitionPlan:
    """A partitioned task graph plus the timing facts later stages need.

    Attributes:
        graph: The partitioned task graph.
        partitions: All partitions, ordered by (core, era).
        deadline: Makespan bound (control steps per frame) the DVFS
            co-optimiser must respect.
        nominal_makespan: Makespan of the plan with every partition at
            full speed (slowdown 1).
        schedules: Task name → its list schedule (reused to build the
            per-block allocation problems, so timing and allocation see
            the same schedule).
        runtimes: Task name → nominal control steps per frame
            (scheduled length x rate).
    """

    graph: TaskGraph
    partitions: tuple[Partition, ...]
    deadline: float
    nominal_makespan: float
    schedules: dict[str, Schedule] = field(default_factory=dict)
    runtimes: dict[str, float] = field(default_factory=dict)

    def partition_of(self, task: str) -> Partition:
        """The partition containing *task*."""
        for partition in self.partitions:
            if task in partition.tasks:
                return partition
        raise DagError(f"task {task!r} is in no partition")

    def cut_edges(self) -> tuple[tuple[str, str], ...]:
        """Graph edges whose endpoints sit in different partitions."""
        owner = {
            task: partition.id
            for partition in self.partitions
            for task in partition.tasks
        }
        return tuple(
            (before, after)
            for before, after in sorted(self.graph.edges)
            if owner[before] != owner[after]
        )

    def makespan(self, slowdowns: Mapping[str, float] | None = None) -> float:
        """Frame makespan under per-partition clock *slowdowns*.

        Simulates the plan's execution semantics: each core runs its
        partitions era by era, tasks sequentially, and a task starts only
        once its core is free *and* all its predecessors (any core) have
        finished.  ``slowdowns`` maps partition id → clock divisor
        (missing partitions run at full speed).
        """
        factors = dict(slowdowns or {})
        owner = {
            task: partition
            for partition in self.partitions
            for task in partition.tasks
        }
        order = self.graph.topological_order()
        assert order is not None  # TaskGraph rejects cycles at construction
        finish: dict[str, float] = {}
        core_free: dict[int, float] = {}
        for task in order:
            partition = owner[task.name]
            factor = float(factors.get(partition.id, 1.0))
            ready = max(
                (finish[pred.name] for pred in self.graph.predecessors(task.name)),
                default=0.0,
            )
            start = max(ready, core_free.get(partition.core, 0.0))
            end = start + self.runtimes[task.name] * factor
            finish[task.name] = end
            core_free[partition.core] = end
        return max(finish.values(), default=0.0)


def _handoff_model(
    energy_model: EnergyModel | None, storage: StorageSpec | None
) -> EnergyModel:
    """The model handoff traffic is charged against.

    Cross-partition values travel through the *shared* memory: under a
    multi-bank hierarchy that is the spec's reference bank, so the model
    is rescaled to its supply exactly as the batch manifests do.
    """
    model = energy_model or StaticEnergyModel()
    if storage is not None:
        model = model.with_voltages(
            storage.reference.voltage, reference_reg_voltage(model)
        )
    return model


def _edge_handoff(
    graph: TaskGraph, edge: tuple[str, str], model: EnergyModel
) -> tuple[tuple[str, ...], float]:
    """Crossing variables and per-frame energy of one cut edge."""
    before, after = edge
    producer = graph.task(before)
    consumer = graph.task(after)
    variables = tuple(sorted(producer.block.live_out))
    energy = 0.0
    for name in variables:
        variable = producer.block.variable(name)
        energy += model.mem_write(variable) * producer.rate
        energy += model.mem_read(variable) * consumer.rate
    return variables, energy


def plan_handoffs(
    plan: PartitionPlan,
    energy_model: EnergyModel | None = None,
    storage: StorageSpec | None = None,
) -> list[HandoffCost]:
    """Cost every cut edge of *plan* as a memory handoff.

    Each severed edge charges one shared-memory write per producer run
    and one read per consumer run for every live-out value of the
    producer block; values staying inside a partition hand off through
    the core's own register file and are already paid for by the
    per-block flow solves.
    """
    model = _handoff_model(energy_model, storage)
    handoffs = []
    for edge in plan.cut_edges():
        variables, energy = _edge_handoff(plan.graph, edge, model)
        handoffs.append(
            HandoffCost(
                edge=edge,
                from_partition=plan.partition_of(edge[0]).id,
                to_partition=plan.partition_of(edge[1]).id,
                variables=variables,
                energy=energy,
            )
        )
    return handoffs


def _cut_cost(
    graph: TaskGraph,
    assignment: Mapping[str, int],
    model: EnergyModel,
) -> float:
    """Total handoff energy of a task → core assignment."""
    total = 0.0
    for edge in sorted(graph.edges):
        if assignment[edge[0]] != assignment[edge[1]]:
            total += _edge_handoff(graph, edge, model)[1]
    return total


def _core_makespan(
    graph: TaskGraph,
    runtimes: Mapping[str, float],
    sequences: Mapping[int, list[str]],
) -> float:
    """Nominal makespan of explicit per-core task sequences."""
    owner = {
        task: core for core, tasks in sequences.items() for task in tasks
    }
    order = graph.topological_order()
    assert order is not None
    finish: dict[str, float] = {}
    core_free: dict[int, float] = {}
    for task in order:
        core = owner[task.name]
        ready = max(
            (finish[pred.name] for pred in graph.predecessors(task.name)),
            default=0.0,
        )
        start = max(ready, core_free.get(core, 0.0))
        finish[task.name] = start + runtimes[task.name]
        core_free[core] = finish[task.name]
    return max(finish.values(), default=0.0)


def _refine_assignment(
    graph: TaskGraph,
    runtimes: Mapping[str, float],
    sequences: dict[int, list[str]],
    topo_index: Mapping[str, int],
    deadline: float,
    model: EnergyModel,
    rounds: int = 2,
) -> dict[int, list[str]]:
    """Greedy cut-cost reduction: relocate tasks across cores.

    For every cut edge (costliest first) try moving the producer to the
    consumer's core and vice versa; accept a move only when it strictly
    lowers total handoff energy, keeps every core queue a topological
    subsequence, and does not *increase* the nominal makespan (within
    the deadline).  The no-increase rule matters: makespan slack is the
    budget the DVFS stage converts into voltage scaling, and a refinement
    that serialised the graph to kill its last handoff would usually
    burn far more energy in lost slowdown opportunity than it saved.
    """
    assignment = {
        task: core for core, tasks in sequences.items() for task in tasks
    }
    bound = min(deadline, _core_makespan(graph, runtimes, sequences))
    for _ in range(rounds):
        improved = False
        cut = [
            (edge, _edge_handoff(graph, edge, model)[1])
            for edge in sorted(graph.edges)
            if assignment[edge[0]] != assignment[edge[1]]
        ]
        cut.sort(key=lambda item: (-item[1], item[0]))
        for (before, after), _cost in cut:
            for mover, target in (
                (before, assignment[after]),
                (after, assignment[before]),
            ):
                source = assignment[mover]
                if source == target:
                    continue
                trial = {
                    core: [t for t in tasks if t != mover]
                    for core, tasks in sequences.items()
                }
                queue = sorted(
                    trial[target] + [mover], key=lambda t: topo_index[t]
                )
                trial[target] = queue
                trial_assignment = dict(assignment)
                trial_assignment[mover] = target
                if _cut_cost(graph, trial_assignment, model) >= _cut_cost(
                    graph, assignment, model
                ):
                    continue
                if _core_makespan(graph, runtimes, trial) > bound:
                    continue
                sequences = trial
                assignment = trial_assignment
                improved = True
                break
        if not improved:
            break
    return sequences


def _split_eras(
    graph: TaskGraph, sequence: list[str]
) -> list[list[str]]:
    """Split a core sequence at zero-flow points.

    A split between positions ``i`` and ``i+1`` is free exactly when no
    graph edge runs from the prefix into the suffix *on this core* — no
    value would start crossing a partition boundary that stayed local
    before.  Splitting there costs no handoff energy but lets the DVFS
    pass pick a different operating point per era.
    """
    if not sequence:
        return []
    eras: list[list[str]] = [[sequence[0]]]
    members = set(sequence)
    for task in sequence[1:]:
        prefix = {t for era in eras for t in era}
        suffix = members - prefix
        crossing = any(
            before in prefix and after in suffix
            for before, after in graph.edges
        )
        if crossing:
            eras[-1].append(task)
        else:
            eras.append([task])
    return eras


def partition_graph(
    graph: TaskGraph,
    cores: int = 2,
    deadline: float | None = None,
    slack: float = 1.5,
    energy_model: EnergyModel | None = None,
    storage: StorageSpec | None = None,
    resources: ResourceSet | None = None,
) -> PartitionPlan:
    """Cut *graph* into per-core/per-era partitions under a deadline.

    Args:
        graph: The application's task flow graph.
        cores: Cores the partitions may occupy (``>= 1``).
        deadline: Makespan bound in control steps per frame.  ``None``
            derives one as ``nominal makespan x slack`` — the headroom
            the DVFS co-optimiser will spend on voltage scaling.
        slack: Deadline multiplier used when *deadline* is ``None``.
        energy_model: Model handoff traffic is costed against (default
            static).
        storage: Optional multi-bank hierarchy; handoffs are charged at
            its reference supply.
        resources: Datapath for the per-task list schedules.

    Returns:
        A :class:`PartitionPlan`.

    Raises:
        DagError: Non-positive core count, or a deadline below the
            nominal makespan the heuristic achieved.
    """
    if cores < 1:
        raise DagError(f"core count must be >= 1, got {cores}")
    if slack < 1.0:
        raise DagError(f"deadline slack must be >= 1, got {slack}")
    if len(graph) == 0:
        raise DagError(f"task graph {graph.name!r} has no tasks")
    with obs.span("dag.partition"):
        order = graph.topological_order()
        assert order is not None  # cycles rejected at add_edge time
        topo_index = {task.name: i for i, task in enumerate(order)}
        schedules = {
            task.name: list_schedule(task.block, resources) for task in order
        }
        runtimes = {
            task.name: float(schedules[task.name].length * task.rate)
            for task in order
        }
        # 1. earliest-finish-time list scheduling onto the cores
        sequences: dict[int, list[str]] = {c: [] for c in range(cores)}
        finish: dict[str, float] = {}
        core_free: dict[int, float] = {c: 0.0 for c in range(cores)}
        for task in order:
            ready = max(
                (finish[p.name] for p in graph.predecessors(task.name)),
                default=0.0,
            )
            core = min(
                range(cores),
                key=lambda c: (max(core_free[c], ready), c),
            )
            start = max(core_free[core], ready)
            finish[task.name] = start + runtimes[task.name]
            core_free[core] = finish[task.name]
            sequences[core].append(task.name)
        nominal = max(finish.values(), default=0.0)
        bound = deadline if deadline is not None else nominal * slack
        if bound < nominal:
            raise DagError(
                f"deadline {bound:g} is below the achievable nominal "
                f"makespan {nominal:g} on {cores} core(s)"
            )
        # 2. handoff-cost refinement within the deadline
        model = _handoff_model(energy_model, storage)
        sequences = _refine_assignment(
            graph, runtimes, sequences, topo_index, bound, model
        )
        nominal = _core_makespan(graph, runtimes, sequences)
        # 3. era splitting at zero-flow points
        partitions: list[Partition] = []
        for core in sorted(sequences):
            for era, members in enumerate(_split_eras(graph, sequences[core])):
                partitions.append(
                    Partition(
                        id=f"core{core}/era{era}",
                        core=core,
                        era=era,
                        tasks=tuple(members),
                        work=sum(runtimes[t] for t in members),
                    )
                )
        plan = PartitionPlan(
            graph=graph,
            partitions=tuple(partitions),
            deadline=float(bound),
            nominal_makespan=float(nominal),
            schedules=schedules,
            runtimes=runtimes,
        )
        obs.count("dag.partition.tasks", len(graph))
        obs.count("dag.partition.partitions", len(partitions))
        obs.count("dag.partition.cut_edges", len(plan.cut_edges()))
        return plan
