"""Lowering partition plans onto the batch service.

Once :mod:`repro.dag.partition` has cut the task graph and
:mod:`repro.dag.operating_points` has fixed each partition's DVFS point,
what remains is a plain batch of per-block allocation instances — one
per task, at its partition's supply voltage.  This module lowers that
batch two ways:

* :func:`dispatch_blocks` fans the solves out through the in-process
  :class:`~repro.service.executor.BatchExecutor`, inheriting its cache,
  admission lint-gate and certificate spot-check semantics unchanged;
* :func:`emit_manifest` writes the same batch as a
  ``repro.service/manifest/v2`` document plus serialised
  ``repro-instance-v1`` files, so ``repro-alloc batch`` or a ``POST
  /v1/batch`` against the allocation server replays it later, remotely,
  or under different executor settings.

Both paths go through instance-kind jobs on purpose: the serialised
instance embeds the *full* operating point (both rescaled supply
voltages, the memory config), so no manifest schema change is needed to
carry DVFS information — a v2 manifest consumer that has never heard of
``repro.dag`` still solves the batch at the right voltages.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.core.problem import AllocationProblem
from repro.dag.operating_points import DvfsSelection, OperatingPoint, task_problem
from repro.dag.partition import PartitionPlan
from repro.energy.models import EnergyModel
from repro.exceptions import DagError
from repro.obs import trace as obs
from repro.scheduling.schedule import Schedule
from repro.service.executor import BatchExecutor, JobResult
from repro.service.manifest import SCHEMA_V2
from repro.workloads.serialize import problem_to_dict

__all__ = ["DagJob", "build_jobs", "dispatch_blocks", "emit_manifest"]


@dataclass(frozen=True)
class DagJob:
    """One per-block solve of a lowered partition plan.

    Attributes:
        job_id: Batch identifier, ``<partition id>:<task name>``.
        task: Task name.
        partition: Owning partition id.
        point: The partition's chosen operating point.
        problem: The allocation instance at that point.
        schedule: The task's list schedule (forwarded to the executor so
            schedule-aware lint rules run at admission time).
    """

    job_id: str
    task: str
    partition: str
    point: OperatingPoint
    problem: AllocationProblem
    schedule: Schedule


def build_jobs(
    plan: PartitionPlan,
    selection: DvfsSelection,
    register_count: int = 4,
    energy_model: EnergyModel | None = None,
) -> list[DagJob]:
    """Materialise the per-block batch of a partitioned, DVFS'd plan.

    One job per task, in topological order, at the operating point of
    the task's partition.  The instance is built by
    :func:`~repro.dag.operating_points.task_problem` — the exact
    construction the sweep priced, so executor objectives reconcile with
    sweep energies to the frame-rate weight.
    """
    order = plan.graph.topological_order()
    assert order is not None  # cycles rejected at graph construction
    jobs = []
    for task in order:
        partition = plan.partition_of(task.name)
        try:
            point = selection.assignment[partition.id]
        except KeyError:
            raise DagError(
                f"selection has no operating point for partition "
                f"{partition.id!r}"
            ) from None
        jobs.append(
            DagJob(
                job_id=f"{partition.id}:{task.name}",
                task=task.name,
                partition=partition.id,
                point=point,
                problem=task_problem(
                    plan, task.name, point, register_count, energy_model
                ),
                schedule=plan.schedules[task.name],
            )
        )
    return jobs


def dispatch_blocks(
    jobs: list[DagJob],
    executor: BatchExecutor | None = None,
    **executor_args: Any,
) -> list[JobResult]:
    """Fan the per-block solves out through the batch executor.

    Args:
        jobs: The batch from :func:`build_jobs`.
        executor: An existing executor to reuse (its cache, lint gate
            and certify settings apply unchanged).  ``None`` constructs
            a fresh one from *executor_args*
            (:class:`~repro.service.executor.BatchExecutor` keywords,
            e.g. ``workers=4`` or ``certify_fraction=1.0``).

    Returns:
        :class:`~repro.service.executor.JobResult` per job, in
        submission (topological) order.
    """
    runner = executor or BatchExecutor(**executor_args)
    for job in jobs:
        runner.submit(job.problem, job_id=job.job_id, schedule=job.schedule)
    results = runner.gather()
    obs.count("dag.blocks_dispatched", len(jobs))
    return results


def _instance_filename(job_id: str) -> str:
    """Filesystem-safe instance filename for *job_id*."""
    return job_id.replace("/", "-").replace(":", "-") + ".json"


def emit_manifest(
    jobs: list[DagJob],
    directory: str | Path,
    graph_name: str = "dag",
    extra_defaults: Mapping[str, Any] | None = None,
) -> Path:
    """Write the batch as a v2 manifest + instance files under *directory*.

    Each job becomes a serialised ``repro-instance-v1`` file (the full
    operating point travels inside the instance document) and one
    ``{"kind": "instance"}`` manifest line labelled with the job id.
    Returns the path of the written ``manifest.json``; feed it to
    ``repro-alloc batch`` or POST its content to ``/v1/batch``.
    """
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, Any] = {"schema": SCHEMA_V2, "jobs": []}
    if extra_defaults:
        manifest["defaults"] = dict(extra_defaults)
    for job in jobs:
        filename = _instance_filename(job.job_id)
        (base / filename).write_text(
            json.dumps(problem_to_dict(job.problem), indent=2) + "\n",
            encoding="utf-8",
        )
        manifest["jobs"].append(
            {"kind": "instance", "path": filename, "label": job.job_id}
        )
    path = base / f"{graph_name}.manifest.json"
    path.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
    return path
