"""Functional-unit resource descriptions for list scheduling."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ScheduleError
from repro.ir.operations import Operation

__all__ = ["ResourceSet"]

#: Unit classes with effectively unlimited availability (block I/O is wiring,
#: not a datapath resource).
_UNLIMITED = frozenset({"io"})


@dataclass(frozen=True)
class ResourceSet:
    """Available functional units per unit class.

    Attributes:
        units: Mapping from unit class (see :attr:`OpCode.unit_class`) to the
            number of instances available per control step.  Classes absent
            from the mapping default to one unit; classes in ``_UNLIMITED``
            are never constrained.
    """

    units: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for unit, count in self.units.items():
            if count < 1:
                raise ScheduleError(f"resource {unit!r} has count {count}")

    def available(self, unit_class: str) -> int:
        """Units of *unit_class* usable in a single control step.

        Classes in ``_UNLIMITED`` (block I/O) default to unbounded but can
        still be budgeted explicitly — e.g. a streaming front end that
        delivers at most four samples per step declares ``{"io": 4}``.
        """
        if unit_class in self.units:
            return self.units[unit_class]
        if unit_class in _UNLIMITED:
            return 1 << 30
        return 1

    def capacity_for(self, op: Operation) -> int:
        """Units usable per step by *op*."""
        return self.available(op.opcode.unit_class)

    @classmethod
    def unlimited(cls) -> "ResourceSet":
        """A resource set that never constrains the schedule."""
        return cls({cls_name: 1 << 30 for cls_name in ("alu", "mult")})

    @classmethod
    def typical_dsp(cls) -> "ResourceSet":
        """One multiplier + two ALUs: a common small DSP datapath."""
        return cls({"mult": 1, "alu": 2})
