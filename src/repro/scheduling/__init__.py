"""Scheduling substrate: ASAP/ALAP and resource-constrained list scheduling."""

from repro.scheduling.asap_alap import alap_schedule, asap_schedule, mobility
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.resources import ResourceSet
from repro.scheduling.schedule import Schedule

__all__ = [
    "ResourceSet",
    "Schedule",
    "alap_schedule",
    "asap_schedule",
    "list_schedule",
    "mobility",
]
