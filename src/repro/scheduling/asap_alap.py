"""ASAP and ALAP scheduling.

As-soon-as-possible / as-late-as-possible schedules bound every operation's
feasible start window; the list scheduler uses the ALAP-derived slack as its
priority function, and workload generators use ASAP directly for
resource-unconstrained kernels.
"""

from __future__ import annotations

from repro.exceptions import ScheduleError
from repro.ir.basic_block import BasicBlock
from repro.scheduling.schedule import Schedule

__all__ = ["asap_schedule", "alap_schedule", "mobility"]


def asap_schedule(block: BasicBlock) -> Schedule:
    """Earliest-start schedule honouring dataflow precedence only."""
    available: dict[str, int] = {}  # variable -> first step it can be read
    start: dict[str, int] = {}
    for op in block:  # program order is a topological order (validated)
        earliest = max((available[read] for read in op.inputs), default=1)
        start[op.name] = earliest
        if op.output is not None:
            available[op.output] = earliest + op.delay
    return Schedule(block, start)


def alap_schedule(block: BasicBlock, deadline: int | None = None) -> Schedule:
    """Latest-start schedule finishing by *deadline*.

    Args:
        block: Block to schedule.
        deadline: Last allowed control step; defaults to the critical-path
            length (the tightest feasible deadline).

    Raises:
        ScheduleError: If *deadline* is shorter than the critical path.
    """
    critical = asap_schedule(block).length
    if deadline is None:
        deadline = critical
    if deadline < critical:
        raise ScheduleError(
            f"deadline {deadline} below critical path length {critical}"
        )
    # Latest finish per variable: constrained by every consumer's start.
    start: dict[str, int] = {}
    for op in reversed(block.operations):
        latest_finish = deadline
        if op.output is not None:
            for consumer in block.consumers(op.output):
                # value must be written strictly before the consumer reads
                latest_finish = min(latest_finish, start[consumer.name] - 1)
        start[op.name] = latest_finish - op.delay + 1
        if start[op.name] < 1:
            raise ScheduleError(
                f"operation {op.name!r} cannot meet deadline {deadline}"
            )
    return Schedule(block, start)


def mobility(block: BasicBlock, deadline: int | None = None) -> dict[str, int]:
    """Slack (ALAP start − ASAP start) per operation name.

    Zero-mobility operations lie on the critical path; the list scheduler
    prioritises small mobility.
    """
    asap = asap_schedule(block)
    alap = alap_schedule(block, deadline)
    return {
        op.name: alap.start_of(op) - asap.start_of(op) for op in block
    }
