"""Schedules: the assignment of operations to control steps.

Problem 1 assumes "an initial schedule of operations" is given.  A
:class:`Schedule` maps each operation of a basic block to the control step
at which it starts.  Timing conventions (fixed here and used by every other
module):

* Control steps are numbered from 1 to the schedule length ``x``.
* An operation starting at step ``s`` with delay ``d`` **reads** its inputs
  at the top of step ``s`` and **writes** its output at the bottom of step
  ``s + d - 1``.
* A value written at the bottom of step ``k`` is readable from the top of
  step ``k + 1``; a storage location freed by a read at step ``k`` can be
  rewritten at the bottom of the same step ``k`` (this is what lets the
  paper connect the reads of ``a``/``b`` to the write of ``d`` inside
  control step 3 of figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.exceptions import ScheduleError
from repro.ir.basic_block import BasicBlock
from repro.ir.operations import Operation

__all__ = ["Schedule"]


@dataclass
class Schedule:
    """An operation → start-step mapping over a basic block.

    Attributes:
        block: The scheduled basic block.
        start: Start control step per operation name (all ``>= 1``).
    """

    block: BasicBlock
    start: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def start_of(self, op: Operation | str) -> int:
        """Start step of an operation (by object or name)."""
        name = op if isinstance(op, str) else op.name
        try:
            return self.start[name]
        except KeyError:
            raise ScheduleError(f"operation {name!r} is unscheduled") from None

    def write_step(self, op: Operation | str) -> int:
        """Step whose bottom edge carries the operation's result write."""
        operation = self._resolve(op)
        return self.start_of(operation) + operation.delay - 1

    def read_step(self, op: Operation | str) -> int:
        """Step whose top edge carries the operation's input reads."""
        return self.start_of(op)

    @property
    def length(self) -> int:
        """Number of control steps ``x`` the block occupies."""
        return max(
            (self.start[op.name] + op.delay - 1 for op in self.block),
            default=0,
        )

    def operations_at(self, step: int) -> tuple[Operation, ...]:
        """Operations busy during *step* (between start and finish)."""
        return tuple(
            op
            for op in self.block
            if self.start[op.name] <= step <= self.write_step(op)
        )

    def as_ordered_list(self) -> list[Operation]:
        """Operations sorted by start step (the paper's 'ordered list')."""
        return sorted(self.block, key=lambda op: (self.start[op.name], op.name))

    def __iter__(self) -> Iterator[tuple[Operation, int]]:
        for op in self.block:
            yield op, self.start[op.name]

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check completeness, step positivity, and dataflow precedence."""
        for op in self.block:
            if op.name not in self.start:
                raise ScheduleError(
                    f"operation {op.name!r} missing from schedule of "
                    f"block {self.block.name!r}"
                )
            if self.start[op.name] < 1:
                raise ScheduleError(
                    f"operation {op.name!r} starts at step "
                    f"{self.start[op.name]} (< 1)"
                )
        extra = set(self.start) - {op.name for op in self.block}
        if extra:
            raise ScheduleError(
                f"schedule mentions unknown operations: {sorted(extra)}"
            )
        for producer, consumer in self.block.dependence_edges():
            if self.start_of(consumer) <= self.write_step(producer):
                raise ScheduleError(
                    f"{consumer.name!r} (step {self.start_of(consumer)}) "
                    f"reads the output of {producer.name!r} before it is "
                    f"written (bottom of step {self.write_step(producer)})"
                )

    def _resolve(self, op: Operation | str) -> Operation:
        return self.block.operation(op) if isinstance(op, str) else op

    @classmethod
    def from_mapping(
        cls, block: BasicBlock, mapping: Mapping[str, int]
    ) -> "Schedule":
        """Build a schedule from any mapping, validating it."""
        return cls(block, dict(mapping))
