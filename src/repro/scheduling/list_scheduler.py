"""Resource-constrained list scheduling.

Produces the "initial schedule" Problem 1 takes as given: a
mobility-prioritised list scheduler that respects per-step functional-unit
budgets (:class:`~repro.scheduling.resources.ResourceSet`).  Units are
assumed fully pipelined (a unit can start a new operation every step even
while a multi-cycle operation is in flight).  Ties are broken
deterministically so workloads are reproducible.
"""

from __future__ import annotations

from repro.exceptions import ScheduleError
from repro.ir.basic_block import BasicBlock
from repro.ir.operations import Operation
from repro.scheduling.asap_alap import asap_schedule, mobility
from repro.scheduling.resources import ResourceSet
from repro.scheduling.schedule import Schedule

__all__ = ["list_schedule"]

#: Safety bound on schedule length relative to an all-serial execution.
_MAX_STRETCH = 4


def list_schedule(
    block: BasicBlock,
    resources: ResourceSet | None = None,
    deadline: int | None = None,
    lazy: bool = False,
) -> Schedule:
    """Schedule *block* under *resources* using list scheduling.

    Args:
        block: Block to schedule.
        resources: Per-step functional-unit budget; defaults to
            :meth:`ResourceSet.typical_dsp`.
        deadline: Optional deadline used only to compute mobility
            priorities; the scheduler itself runs until all operations are
            placed.
        lazy: Hold slack-rich operations back until their as-late-as-
            possible start instead of starting them the moment a unit is
            free.  Keeps variable lifetimes short (less storage pressure)
            at identical schedule length when resources allow — the
            storage-friendly policy the allocation literature assumes.

    Returns:
        A valid :class:`Schedule`.

    Raises:
        ScheduleError: If the scheduler fails to place all operations within
            a generous safety bound (indicates malformed resources).
    """
    if resources is None:
        resources = ResourceSet.typical_dsp()
    if not len(block):
        return Schedule(block, {})

    try:
        slack = mobility(block, deadline)
    except ScheduleError:
        # Deadline tighter than the critical path: fall back to critical
        # path priorities without a deadline.
        slack = mobility(block, None)
    latest_start: dict[str, int] = {}
    if lazy:
        reference = asap_schedule(block)
        latest_start = {
            name: reference.start_of(name) + slack[name] for name in slack
        }
    start: dict[str, int] = {}
    ready_time: dict[str, int] = {}  # variable -> first readable step
    placed: set[str] = set()
    horizon = _MAX_STRETCH * sum(op.delay for op in block) + 1

    step = 1
    pending: list[Operation] = list(block.operations)
    while pending:
        if step > horizon:
            raise ScheduleError(
                f"list scheduler exceeded {horizon} steps on block "
                f"{block.name!r}; resources are likely malformed"
            )
        budget = {
            op.opcode.unit_class: resources.available(op.opcode.unit_class)
            for op in pending
        }
        # Operations whose inputs are all available at this step, most
        # urgent (smallest slack, then longest delay) first.
        ready = [
            op
            for op in pending
            if all(
                read in ready_time and ready_time[read] <= step
                for read in op.inputs
            )
            and (not lazy or latest_start.get(op.name, step) <= step)
        ]
        ready.sort(key=lambda op: (slack[op.name], -op.delay, op.name))
        for op in ready:
            unit = op.opcode.unit_class
            if budget[unit] <= 0:
                continue
            budget[unit] -= 1
            start[op.name] = step
            placed.add(op.name)
            if op.output is not None:
                ready_time[op.output] = step + op.delay
        pending = [op for op in pending if op.name not in placed]
        step += 1
    return Schedule(block, start)
