"""Shared result type and accounting for baseline allocators.

Baselines operate on *unsplit* lifetimes (prior art has no split-lifetime
machinery) and produce the same kind of report as the flow allocator so
comparisons are apples-to-apples: identical energy model, identical access
counting rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.allocation import assign_addresses
from repro.energy.models import EnergyModel
from repro.energy.report import EnergyReport
from repro.lifetimes.intervals import Lifetime

__all__ = ["BaselineResult", "report_for_partition"]


@dataclass
class BaselineResult:
    """Outcome of a baseline allocator.

    Attributes:
        name: Identifier of the baseline (used in comparison tables).
        chains: Register chains (time-ordered lifetimes per register).
        memory_addresses: Variable name → address for memory residents.
        report: Access/energy accounting under the shared energy model.
        register_count: Register-file size the baseline was given.
    """

    name: str
    chains: list[list[Lifetime]]
    memory_addresses: dict[str, int]
    report: EnergyReport
    register_count: int

    @property
    def objective(self) -> float:
        """Total storage energy (comparable to ``Allocation.objective``)."""
        return self.report.total_energy

    @property
    def registers_used(self) -> int:
        return len(self.chains)

    @property
    def address_count(self) -> int:
        if not self.memory_addresses:
            return 0
        return max(self.memory_addresses.values()) + 1

    @property
    def storage_locations(self) -> int:
        return self.registers_used + self.address_count

    def register_variables(self) -> list[str]:
        return sorted(lt.name for chain in self.chains for lt in chain)

    def memory_variables(self) -> list[str]:
        return sorted(self.memory_addresses)


def report_for_partition(
    lifetimes: Mapping[str, Lifetime],
    chains: Iterable[Iterable[Lifetime]],
    model: EnergyModel,
) -> EnergyReport:
    """Account a chains-plus-memory partition without split lifetimes.

    Variables on a chain live entirely in the register file: one register
    write per chain entry (activity models see the previous tenant) and all
    reads from the register.  Every other variable lives entirely in
    memory: one write plus its reads.
    """
    report = EnergyReport()
    on_chain: set[str] = set()
    for chain in chains:
        prev = None
        for lifetime in chain:
            on_chain.add(lifetime.name)
            report.add_reg_write(model.reg_write(lifetime.variable, prev))
            report.add_reg_read(
                lifetime.read_count * model.reg_read(lifetime.variable),
                lifetime.read_count,
            )
            prev = lifetime.variable
    for lifetime in lifetimes.values():
        if lifetime.name in on_chain:
            continue
        report.add_mem_write(model.mem_write(lifetime.variable))
        report.add_mem_read(
            lifetime.read_count * model.mem_read(lifetime.variable),
            lifetime.read_count,
        )
    return report


def build_result(
    name: str,
    lifetimes: Mapping[str, Lifetime],
    chains: list[list[Lifetime]],
    model: EnergyModel,
    register_count: int,
) -> BaselineResult:
    """Assemble a :class:`BaselineResult` from chains over *lifetimes*."""
    on_chain = {lt.name for chain in chains for lt in chain}
    memory = {
        name_: (lt.start, lt.end)
        for name_, lt in lifetimes.items()
        if name_ not in on_chain
    }
    return BaselineResult(
        name=name,
        chains=chains,
        memory_addresses=assign_addresses(memory),
        report=report_for_partition(lifetimes, chains, model),
        register_count=register_count,
    )
