"""Chang-Pedram-style low-power register allocation ([8], DAC 1995).

Prior art the paper builds on: register allocation and binding that
minimises the switching activity between consecutive values sharing a
register, formulated as a flow over the *complete* compatibility graph
(every pair of non-overlapping lifetimes is connectable).  Memory is not
considered: every variable receives a register, so the symbolic register
count must be at least the lifetime density.

This is also phase 1 of the two-phase baseline the paper's figure 3
compares against.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.chain_flow import ChainAssignment, optimal_interval_chains
from repro.energy.models import EnergyModel
from repro.exceptions import AllocationError
from repro.lifetimes.intervals import Lifetime, max_density

__all__ = ["chang_pedram_binding"]


def chang_pedram_binding(
    lifetimes: Mapping[str, Lifetime],
    horizon: int,
    model: EnergyModel,
    register_count: int | None = None,
    style: str = "all_pairs",
) -> ChainAssignment:
    """Bind every variable to a register, minimising switching energy.

    Args:
        lifetimes: The block's lifetimes (unsplit).
        horizon: Block length ``x``.
        model: Energy model; ``reg_write(v2, prev=v1)`` supplies the
            pair cost (the ``H(v1,v2) * C`` term of [8]).
        register_count: Number of symbolic registers; defaults to the
            lifetime density (the minimum feasible).
        style: Compatibility rule — [8] uses ``"all_pairs"``; passing
            ``"adjacent"`` yields the paper's restricted graph for
            ablation.

    Returns:
        The minimum-switching :class:`ChainAssignment` covering every
        variable.

    Raises:
        AllocationError: If *register_count* is below the lifetime density
            (no full binding exists).
    """
    density = max_density(lifetimes.values(), horizon)
    if register_count is None:
        register_count = density
    if register_count < density:
        raise AllocationError(
            f"register binding needs at least {density} registers, "
            f"got {register_count}"
        )

    def pair_cost(prev: Lifetime | None, nxt: Lifetime) -> float:
        return model.reg_write(
            nxt.variable, prev.variable if prev is not None else None
        )

    return optimal_interval_chains(
        lifetimes.values(),
        horizon=horizon,
        pair_cost=pair_cost,
        chain_count=register_count,
        style=style,
        force_all=True,
    )
