"""Left-edge register allocation (classic, energy-oblivious).

The textbook interval allocator used throughout datapath synthesis: sort
lifetimes by start time and greedily pack each into the lowest-numbered
free register.  With ``R`` registers, lifetimes that do not fit (density
exceeds ``R`` at their start) fall through to memory.  It minimises the
number of registers used but is blind to energy, making it the
"performance-oriented compiler technique" reference point of section 1.
"""

from __future__ import annotations

from typing import Mapping

from repro.baselines.common import BaselineResult, build_result
from repro.energy.models import EnergyModel
from repro.lifetimes.intervals import Lifetime

__all__ = ["left_edge_allocate"]


def left_edge_allocate(
    lifetimes: Mapping[str, Lifetime],
    horizon: int,
    register_count: int,
    model: EnergyModel,
) -> BaselineResult:
    """Pack lifetimes into registers left-to-right; overflow goes to memory.

    Args:
        lifetimes: The block's lifetimes (unsplit).
        horizon: Block length ``x`` (unused; kept for interface symmetry).
        register_count: Register-file size ``R``.
        model: Energy model used only for accounting.

    Returns:
        A :class:`BaselineResult` named ``"left-edge"``.
    """
    order = sorted(
        lifetimes.values(), key=lambda lt: (lt.start, lt.end, lt.name)
    )
    free_at = [0] * register_count  # register -> end of current tenant
    chains: list[list[Lifetime]] = [[] for _ in range(register_count)]
    for lifetime in order:
        for register in range(register_count):
            if free_at[register] <= lifetime.start:
                free_at[register] = lifetime.end
                chains[register].append(lifetime)
                break
        # No free register: the lifetime is left for memory.
    chains = [chain for chain in chains if chain]
    return build_result(
        "left-edge", lifetimes, chains, model, register_count
    )
