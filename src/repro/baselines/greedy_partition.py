"""Greedy energy-aware partition heuristic.

A cheap non-optimal contender: rank variables by the energy their register
residency would save, admit them greedily while the register file has room
(checked by interval packing), then bind the admitted set with left-edge.
Sits between the energy-oblivious compiler baselines and the optimal flow —
useful for quantifying how much of the paper's win comes from *optimality*
versus from mere energy awareness.
"""

from __future__ import annotations

from typing import Mapping

from repro.baselines.common import BaselineResult, build_result
from repro.energy.models import EnergyModel
from repro.lifetimes.intervals import Lifetime, max_density

__all__ = ["greedy_partition_allocate"]


def greedy_partition_allocate(
    lifetimes: Mapping[str, Lifetime],
    horizon: int,
    register_count: int,
    model: EnergyModel,
) -> BaselineResult:
    """Admit the highest-saving variables that still pack into ``R`` registers.

    Args:
        lifetimes: The block's lifetimes (unsplit).
        horizon: Block length ``x``.
        register_count: Register-file size ``R``.
        model: Energy model (supplies both ranking and accounting).

    Returns:
        A :class:`BaselineResult` named ``"greedy"``.
    """

    def saving(lifetime: Lifetime) -> float:
        v = lifetime.variable
        memory = model.mem_write(v) + lifetime.read_count * model.mem_read(v)
        register = model.reg_write(v, None) + lifetime.read_count * (
            model.reg_read(v)
        )
        return memory - register

    admitted: list[Lifetime] = []
    for lifetime in sorted(
        lifetimes.values(), key=lambda lt: (-saving(lt), lt.name)
    ):
        if saving(lifetime) <= 0:
            break
        candidate = admitted + [lifetime]
        if max_density(candidate, horizon) <= register_count:
            admitted.append(lifetime)

    # Bind the admitted set with left-edge packing.
    order = sorted(admitted, key=lambda lt: (lt.start, lt.end, lt.name))
    free_at = [0] * register_count
    chains: list[list[Lifetime]] = [[] for _ in range(register_count)]
    for lifetime in order:
        for register in range(register_count):
            if free_at[register] <= lifetime.start:
                free_at[register] = lifetime.end
                chains[register].append(lifetime)
                break
        else:  # pragma: no cover - density check above prevents this
            continue
    chains = [chain for chain in chains if chain]
    return build_result("greedy", lifetimes, chains, model, register_count)
