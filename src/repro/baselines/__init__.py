"""Prior-art baseline allocators the paper compares against."""

from repro.baselines.chang_pedram import chang_pedram_binding
from repro.baselines.common import BaselineResult, report_for_partition
from repro.baselines.graph_coloring import graph_coloring_allocate
from repro.baselines.greedy_partition import greedy_partition_allocate
from repro.baselines.left_edge import left_edge_allocate
from repro.baselines.two_phase import PartitionRule, two_phase_allocate

__all__ = [
    "BaselineResult",
    "PartitionRule",
    "chang_pedram_binding",
    "graph_coloring_allocate",
    "greedy_partition_allocate",
    "left_edge_allocate",
    "report_for_partition",
    "two_phase_allocate",
]
