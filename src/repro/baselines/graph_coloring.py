"""Chaitin-style graph-colouring register allocation with spilling.

The compiler-community baseline the paper's introduction cites ([6], [7]):
build the interference graph over lifetimes, repeatedly *simplify* (remove
nodes of degree < K), and when stuck pick a spill candidate by the classic
spill metric (access count / interference degree — cheap-to-spill,
high-pressure variables go first).  Spilled variables live in memory;
coloured variables are bound to registers.

Colour classes become register chains (time-ordered) so the shared
accounting — including activity-based register write energy — applies
unchanged.  The allocator optimises for *colourability*, not energy, which
is the point of comparing against it.
"""

from __future__ import annotations

from typing import Mapping

from repro.baselines.common import BaselineResult, build_result
from repro.energy.models import EnergyModel
from repro.lifetimes.intervals import Lifetime

__all__ = ["graph_coloring_allocate"]


def _interference(
    lifetimes: Mapping[str, Lifetime],
) -> dict[str, set[str]]:
    """Interference graph: edges between overlapping lifetimes."""
    names = list(lifetimes)
    graph: dict[str, set[str]] = {name: set() for name in names}
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            if lifetimes[a].overlaps(lifetimes[b]):
                graph[a].add(b)
                graph[b].add(a)
    return graph


def graph_coloring_allocate(
    lifetimes: Mapping[str, Lifetime],
    horizon: int,
    register_count: int,
    model: EnergyModel,
) -> BaselineResult:
    """Colour the interference graph with ``R`` colours, spilling as needed.

    Args:
        lifetimes: The block's lifetimes (unsplit).
        horizon: Block length ``x`` (interface symmetry).
        register_count: Number of colours ``K`` = register-file size.
        model: Energy model used only for accounting.

    Returns:
        A :class:`BaselineResult` named ``"graph-coloring"``.
    """
    graph = _interference(lifetimes)
    degrees = {name: len(neigh) for name, neigh in graph.items()}
    active = set(graph)
    stack: list[str] = []
    spilled: set[str] = set()

    def spill_metric(name: str) -> tuple[float, str]:
        accesses = 1 + lifetimes[name].read_count
        degree = max(1, degrees[name])
        return (accesses / degree, name)

    while active:
        trivial = sorted(
            (n for n in active if degrees[n] < register_count)
        )
        if trivial:
            chosen = trivial[0]
        else:
            # Blocked: optimistically push the best spill candidate; if it
            # cannot be coloured later it is spilled for real.
            chosen = min(active, key=spill_metric)
        stack.append(chosen)
        active.remove(chosen)
        for neighbour in graph[chosen]:
            if neighbour in active:
                degrees[neighbour] -= 1

    colour: dict[str, int] = {}
    for name in reversed(stack):
        taken = {
            colour[n] for n in graph[name] if n in colour and n not in spilled
        }
        candidates = [
            c for c in range(register_count) if c not in taken
        ]
        if candidates:
            colour[name] = candidates[0]
        else:
            spilled.add(name)

    chains: list[list[Lifetime]] = [[] for _ in range(register_count)]
    for name, c in colour.items():
        if name not in spilled:
            chains[c].append(lifetimes[name])
    for chain in chains:
        chain.sort(key=lambda lt: lt.start)
    chains = [chain for chain in chains if chain]
    return build_result(
        "graph-coloring", lifetimes, chains, model, register_count
    )
