"""The two-phase prior-art flow: register allocation *then* partitioning.

This is the "previous research" figure 3a of the paper illustrates: first
perform optimal low-power register allocation over symbolic registers
(Chang-Pedram [8] binding, every variable gets a symbolic register), then
partition the symbolic registers between the physical register file and
memory.

Two partition rules are provided:

* ``"max_switching"`` — the paper's stated heuristic: keep the chains with
  the highest switching activity in the register file, "since average
  switched capacitance is smaller" there (figure 3a);
* ``"max_saving"`` (default) — keep the chains whose register residency
  saves the most energy *under the evaluation model itself* (memory access
  cost avoided minus register cost incurred).  This is the strongest
  possible two-phase opponent, so improvement factors measured against it
  are conservative.

Because partitioning happens after binding, whole chains move to memory at
once; the simultaneous formulation (the paper's contribution) can instead
cut across chains, which is exactly where its 1.4-2.5x energy advantage
comes from.
"""

from __future__ import annotations

from typing import Literal, Mapping

from repro.baselines.chang_pedram import chang_pedram_binding
from repro.baselines.common import BaselineResult, build_result
from repro.energy.models import EnergyModel
from repro.exceptions import AllocationError
from repro.lifetimes.intervals import Lifetime

__all__ = ["two_phase_allocate", "PartitionRule"]

PartitionRule = Literal["max_saving", "max_switching"]


def _chain_register_cost(
    chain: list[Lifetime], model: EnergyModel
) -> float:
    """Register-file energy if *chain* stays in the register file."""
    total = 0.0
    prev = None
    for lifetime in chain:
        total += model.reg_write(
            lifetime.variable, prev.variable if prev is not None else None
        )
        total += lifetime.read_count * model.reg_read(lifetime.variable)
        prev = lifetime
    return total


def _chain_memory_cost(chain: list[Lifetime], model: EnergyModel) -> float:
    """Memory energy if *chain* is pushed out to memory."""
    return sum(
        model.mem_write(lt.variable)
        + lt.read_count * model.mem_read(lt.variable)
        for lt in chain
    )


def two_phase_allocate(
    lifetimes: Mapping[str, Lifetime],
    horizon: int,
    register_count: int,
    model: EnergyModel,
    binding_style: str = "all_pairs",
    partition_rule: PartitionRule = "max_saving",
) -> BaselineResult:
    """Run binding-then-partitioning and account the result.

    Args:
        lifetimes: The block's lifetimes (unsplit).
        horizon: Block length ``x``.
        register_count: Physical register-file size ``R``.
        model: Shared energy model (also supplies the binding pair costs).
        binding_style: Compatibility rule for phase 1 (see
            :func:`~repro.baselines.chang_pedram.chang_pedram_binding`).
        partition_rule: Chain ranking for phase 2 (see module docstring).

    Returns:
        A :class:`BaselineResult` named ``"two-phase"``.
    """
    binding = chang_pedram_binding(
        lifetimes, horizon, model, register_count=None, style=binding_style
    )
    if partition_rule == "max_saving":
        def rank(chain: list[Lifetime]) -> float:
            return _chain_memory_cost(chain, model) - _chain_register_cost(
                chain, model
            )
    elif partition_rule == "max_switching":
        def rank(chain: list[Lifetime]) -> float:
            return _chain_register_cost(chain, model)
    else:
        raise AllocationError(f"unknown partition rule {partition_rule!r}")

    ranked = sorted(
        binding.chains, key=lambda chain: (-rank(chain), chain[0].name)
    )
    kept = ranked[:register_count]
    return build_result("two-phase", lifetimes, kept, model, register_count)
