"""Optimality certificates for fixed-value minimum-cost flows.

A feasible flow of fixed value is minimum-cost **iff** its residual
network contains no negative-cost directed cycle (Klein's optimality
condition).  The classic constructive witness is a vector of *node
potentials* ``pi`` under which every residual arc has non-negative
reduced cost ``c + pi(tail) - pi(head)`` — equivalently, the
complementary-slackness conditions of the section-4 LP hold:

* an arc with residual capacity left (``flow < capacity``) must have
  reduced cost ``>= 0`` (otherwise pushing more flow would be cheaper);
* an arc with retractable flow (``flow > lower``) must have reduced cost
  ``<= 0`` (otherwise pushing the flow back would be cheaper).

:func:`compute_potentials` *constructs* the witness by running
Bellman-Ford over the residual network from a virtual super source; a
relaxation surviving ``n`` passes exposes a negative residual cycle,
which is recovered and reported — the flow is provably suboptimal.
:func:`check_certificate` then *verifies* the witness by pure
per-arc arithmetic: no search, no trust in the construction.  Together
they let any caller (tests, the fuzz harness, the ``certify`` switch of
:func:`repro.core.solver.allocate`) turn "the solver said so" into a
machine-checked proof of optimality.

Everything here depends only on :mod:`repro.flow`, so the solver core
can import it lazily without cycles.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Sequence

from repro.exceptions import ReproError
from repro.flow.graph import Arc, FlowNetwork, FlowResult

__all__ = [
    "CertificateError",
    "compute_potentials",
    "check_certificate",
    "certify_optimal",
    "certify_flow",
]

#: Absolute slack allowed on reduced costs (floating-point drift along a
#: path accumulates a few ULPs per hop; allocation networks are small).
DEFAULT_TOLERANCE = 1e-6


class CertificateError(ReproError):
    """A flow failed certification: it is provably not minimum-cost
    (negative residual cycle found) or the offered potentials do not
    satisfy complementary slackness."""


def _residual_arcs(
    network: FlowNetwork, flows: Sequence[int]
) -> Iterator[tuple[Hashable, Hashable, float, Arc, bool]]:
    """Yield residual arcs ``(tail, head, cost, original_arc, forward)``.

    A forward residual arc exists while the original arc has capacity
    left; a backward residual arc (negated cost) exists while flow can be
    pushed back down to the arc's lower bound.
    """
    for arc in network.arcs:
        f = flows[arc.index]
        if f < arc.capacity:
            yield arc.tail, arc.head, arc.cost, arc, True
        if f > arc.lower:
            yield arc.head, arc.tail, -arc.cost, arc, False


def compute_potentials(
    network: FlowNetwork,
    flows: Sequence[int],
    tolerance: float = DEFAULT_TOLERANCE,
) -> dict[Hashable, float]:
    """Construct certifying node potentials for *flows*, or prove none exist.

    Runs Bellman-Ford on the residual network with every node seeded at
    distance zero (a virtual super source).  The resulting distances are
    valid potentials exactly when no negative residual cycle exists.

    Args:
        network: The network the flow lives on.
        flows: Integer flow per arc, indexed by ``arc.index``.
        tolerance: Absolute slack before a relaxation counts as real.

    Returns:
        Node → potential mapping satisfying complementary slackness.

    Raises:
        CertificateError: If the residual network contains a
            negative-cost cycle — i.e. the flow is provably suboptimal
            for its value.  The message names the cycle's arcs and its
            total cost.
    """
    nodes = list(network.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    residual = [
        (index[tail], index[head], cost, arc, forward)
        for tail, head, cost, arc, forward in _residual_arcs(network, flows)
    ]
    dist = [0.0] * n
    pred: list[tuple[int, Arc, bool] | None] = [None] * n
    last_relaxed = -1
    for _ in range(n):
        last_relaxed = -1
        for u, v, cost, arc, forward in residual:
            if dist[u] + cost < dist[v] - tolerance:
                dist[v] = dist[u] + cost
                pred[v] = (u, arc, forward)
                last_relaxed = v
        if last_relaxed == -1:
            return {node: dist[index[node]] for node in nodes}
    # A relaxation on the n-th pass: walk predecessors into the cycle.
    node = last_relaxed
    for _ in range(n):
        entry = pred[node]
        assert entry is not None
        node = entry[0]
    cycle: list[tuple[Arc, bool]] = []
    current = node
    while True:
        entry = pred[current]
        assert entry is not None
        prev, arc, forward = entry
        cycle.append((arc, forward))
        current = prev
        if current == node:
            break
    cycle.reverse()
    total = sum(arc.cost if forward else -arc.cost for arc, forward in cycle)
    steps = ", ".join(
        f"{arc.tail}->{arc.head}" if forward else f"{arc.head}<-{arc.tail}"
        for arc, forward in cycle
    )
    raise CertificateError(
        f"flow is not optimal: residual cycle of cost {total:.6g} "
        f"({steps})"
    )


def check_certificate(
    network: FlowNetwork,
    flows: Sequence[int],
    potentials: dict[Hashable, float],
    tolerance: float = DEFAULT_TOLERANCE,
) -> None:
    """Verify complementary slackness of *potentials* by pure arithmetic.

    For every arc ``u -> v`` with cost ``c`` and reduced cost
    ``rc = c + pi(u) - pi(v)``:

    * ``flow < capacity`` requires ``rc >= -tolerance``;
    * ``flow > lower`` requires ``rc <= tolerance``.

    Args:
        network: The network the flow lives on.
        flows: Integer flow per arc, indexed by ``arc.index``.
        potentials: Candidate witness (every network node must appear).
        tolerance: Absolute slack allowed per condition.

    Raises:
        CertificateError: Naming the first violated condition, or a node
            missing from the witness.
    """
    for node in network.nodes:
        if node not in potentials:
            raise CertificateError(f"certificate misses node {node!r}")
    for arc in network.arcs:
        f = flows[arc.index]
        reduced = arc.cost + potentials[arc.tail] - potentials[arc.head]
        if f < arc.capacity and reduced < -tolerance:
            raise CertificateError(
                f"slackness violated on {arc}: flow {f} below capacity but "
                f"reduced cost {reduced:.6g} < 0 (cheaper flow exists)"
            )
        if f > arc.lower and reduced > tolerance:
            raise CertificateError(
                f"slackness violated on {arc}: flow {f} above lower bound "
                f"but reduced cost {reduced:.6g} > 0 (retracting is cheaper)"
            )


def certify_optimal(
    network: FlowNetwork,
    flows: Sequence[int],
    tolerance: float = DEFAULT_TOLERANCE,
) -> dict[Hashable, float]:
    """Construct **and** verify an optimality certificate for *flows*.

    Args:
        network: The network the flow lives on (lower bounds allowed).
        flows: Integer flow per arc, indexed by ``arc.index``.
        tolerance: Absolute reduced-cost slack.

    Returns:
        The verified potentials — a reusable witness that the flow is
        minimum-cost among all feasible flows of the same value.

    Raises:
        CertificateError: If the flow is provably suboptimal.
    """
    potentials = compute_potentials(network, flows, tolerance)
    check_certificate(network, flows, potentials, tolerance)
    return potentials


def certify_flow(
    result: FlowResult, tolerance: float = DEFAULT_TOLERANCE
) -> dict[Hashable, float]:
    """Convenience wrapper: certify a solver's :class:`FlowResult`."""
    return certify_optimal(result.network, result.flows, tolerance)
