"""Invariant oracles over solved allocation instances.

Every oracle takes a solved :class:`~repro.core.allocation.Allocation`
(or, for the code-generation oracle, a full
:class:`~repro.core.pipeline.PipelineResult`) and re-derives one paper
invariant *independently* of the code that produced the solution:

* ``flow_conservation`` — bounds, conservation and source/sink balance of
  the flow vector (section 4 constraints);
* ``total_flow`` — the shipped value equals the register count ``R``
  (eq. 5) and the chains plus bypass units account for every unit;
* ``split_lower_bounds`` — section 5.2's must-be-register rule,
  re-derived from scratch: a segment may sit in memory only if the value
  can reach memory by the segment start and every served read is a
  memory-access step; the network's arc lower bounds and the solution's
  residency must both agree with the re-derivation;
* ``optimality_certificate`` — constructs and verifies node potentials
  proving the flow minimum-cost (see :mod:`repro.verify.certificates`);
* ``energy_agreement`` — the flow objective (plus the constant
  all-in-memory term) equals the energy recomputed from the extracted
  chains by independent accounting;
* ``codegen_agreement`` — the lowered program's memory traffic reconciles
  exactly with the allocation report, and simulated execution matches the
  reference dataflow evaluation on random inputs.

Oracles raise :class:`OracleViolation`; :func:`check_allocation` runs a
battery and returns the violations as data (the fuzz harness consumes
them, tests usually assert the list is empty).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.core.allocation import Allocation, compute_report
from repro.core.network_builder import SINK, SOURCE
from repro.exceptions import ReproError
from repro.flow.validate import FlowValidationError, check_flow, flow_cost
from repro.verify.certificates import CertificateError, certify_flow

__all__ = [
    "OracleViolation",
    "Violation",
    "ALLOCATION_ORACLES",
    "check_allocation",
    "oracle_flow_conservation",
    "oracle_total_flow",
    "oracle_split_lower_bounds",
    "oracle_optimality_certificate",
    "oracle_energy_agreement",
    "oracle_codegen_agreement",
]

#: Relative tolerance for energy comparisons.
_ENERGY_TOL = 1e-6


class OracleViolation(ReproError):
    """A solved instance broke one of the verification invariants.

    Attributes:
        oracle: Name of the violated oracle.
    """

    def __init__(self, oracle: str, message: str) -> None:
        super().__init__(f"[{oracle}] {message}")
        self.oracle = oracle


@dataclass(frozen=True)
class Violation:
    """One recorded oracle violation (pure data, JSON-friendly).

    Attributes:
        oracle: Name of the violated oracle.
        message: Human-readable description of the broken invariant.
    """

    oracle: str
    message: str


def oracle_flow_conservation(allocation: Allocation) -> None:
    """Flow bounds, conservation and terminal balance (section 4).

    Delegates to :func:`repro.flow.validate.check_flow` (which itself
    sits on the shared :func:`~repro.flow.validate.node_balances`
    arithmetic) rather than re-implementing conservation here — one
    balance computation, two consumers.
    """
    try:
        check_flow(
            allocation.flow,
            SOURCE,
            SINK,
            allocation.problem.register_count,
        )
    except FlowValidationError as exc:
        raise OracleViolation("flow_conservation", str(exc)) from exc


def oracle_total_flow(allocation: Allocation) -> None:
    """Total flow equals ``R`` and decomposes into chains + bypass units."""
    problem = allocation.problem
    value = allocation.flow.value
    if value != problem.register_count:
        raise OracleViolation(
            "total_flow",
            f"flow ships {value} units, register count is "
            f"{problem.register_count}",
        )
    accounted = len(allocation.chains) + allocation.unused_registers
    if accounted != problem.register_count:
        raise OracleViolation(
            "total_flow",
            f"{len(allocation.chains)} chains + "
            f"{allocation.unused_registers} bypass units != R = "
            f"{problem.register_count}",
        )


def _memory_legal(problem, segment) -> bool:
    """Independent re-derivation of section 5.2 memory-residency legality."""
    access = problem.access_times
    if access is None:
        return True
    lifetime = problem.lifetimes[segment.name]
    reaches_memory = any(
        lifetime.write_time <= m <= segment.start for m in access
    )
    reads_legal = all(
        r in access or (lifetime.live_out and r == lifetime.end)
        for r in segment.reads
    )
    return reaches_memory and reads_legal


def oracle_split_lower_bounds(allocation: Allocation) -> None:
    """Section 5.2 must-be-register segments carry lower bound 1 and flow 1.

    Re-derives memory-residency legality from the paper's rules (without
    calling the splitter's own ``forced`` logic) and checks three facts
    per segment arc: the arc's lower bound matches the re-derivation plus
    any explicit pins, the flow respects the bound, and every forced
    segment is register-resident in the extracted solution.
    """
    problem = allocation.problem
    network = allocation.flow.network
    seen: set[tuple[str, int]] = set()
    for arc in network.arcs:
        if not (isinstance(arc.data, tuple) and arc.data[0] == "segment"):
            continue
        segment = arc.data[1]
        seen.add(segment.key)
        pinned = segment.key in problem.forced_segments
        expected_lower = 0 if _memory_legal(problem, segment) and not pinned else 1
        if arc.lower != expected_lower:
            raise OracleViolation(
                "split_lower_bounds",
                f"segment {segment.key} has arc lower bound {arc.lower}, "
                f"re-derived legality demands {expected_lower}",
            )
        flow = allocation.flow.flows[arc.index]
        if flow < expected_lower:
            raise OracleViolation(
                "split_lower_bounds",
                f"forced segment {segment.key} carries flow {flow}",
            )
        if expected_lower == 1 and segment.key not in allocation.residency:
            raise OracleViolation(
                "split_lower_bounds",
                f"forced segment {segment.key} is not register-resident",
            )
    expected_keys = {
        seg.key for segs in problem.segments.values() for seg in segs
    }
    if seen != expected_keys:
        missing = sorted(expected_keys - seen)
        raise OracleViolation(
            "split_lower_bounds",
            f"network lacks segment arcs for {missing}",
        )


def oracle_optimality_certificate(allocation: Allocation) -> None:
    """Machine-checked proof that the flow is minimum-cost for value R."""
    try:
        certify_flow(allocation.flow)
    except CertificateError as exc:
        raise OracleViolation("optimality_certificate", str(exc)) from exc


def oracle_energy_agreement(allocation: Allocation) -> None:
    """Flow objective == chain-recomputed energy == reported objective."""
    problem = allocation.problem
    objective = problem.constant_energy() + flow_cost(allocation.flow)
    recomputed = compute_report(problem, allocation.chains).total_energy
    scale = 1.0 + abs(objective)
    if abs(recomputed - objective) > _ENERGY_TOL * scale:
        raise OracleViolation(
            "energy_agreement",
            f"flow objective {objective:.6f} vs chain accounting "
            f"{recomputed:.6f}",
        )
    if abs(allocation.objective - objective) > _ENERGY_TOL * scale:
        raise OracleViolation(
            "energy_agreement",
            f"stored objective {allocation.objective:.6f} vs recomputed "
            f"{objective:.6f}",
        )


def oracle_codegen_agreement(
    result, rng: random.Random | None = None, trials: int = 3
) -> None:
    """Lowered program ⇄ allocation report ⇄ simulator agreement.

    Three independent checks on a full
    :class:`~repro.core.pipeline.PipelineResult`:

    * the program's memory writes (``Mem`` destinations) equal the
      report's memory-write count;
    * the program's distinct memory read samples — ``(variable, step)``
      pairs over non-piggyback operands — plus the live-out pseudo-reads
      the block boundary leaves to the consuming task equal the report's
      memory-read count;
    * simulating the program on *trials* random input vectors reproduces
      the reference dataflow evaluation for every output and live-out
      value.

    Args:
        result: The pipeline result (schedule + allocation) to verify.
        rng: Seeded generator for the input vectors (default seed 0).
        trials: Number of random input vectors to simulate.

    Raises:
        OracleViolation: On any reconciliation or simulation mismatch.
    """
    from repro.codegen.lower import lower
    from repro.codegen.program import Kind, Mem
    from repro.codegen.simulator import verify_program
    from repro.exceptions import AllocationError
    from repro.ir.operations import OpCode

    rng = rng if rng is not None else random.Random(0)
    allocation = result.allocation
    problem = allocation.problem
    program = lower(result, use_layout=False)

    mem_writes = sum(
        1 for ins in program.instructions if isinstance(ins.dest, Mem)
    )
    read_samples: set[tuple[str, int]] = set()
    for ins in program.instructions:
        if ins.kind is Kind.MOVE and ins.piggyback:
            continue
        for operand in ins.operands:
            if isinstance(operand, Mem):
                read_samples.add((operand.variable, ins.step))
    pseudo_reads = 0
    boundary = problem.horizon + 1
    for name, segments in problem.segments.items():
        lifetime = problem.lifetimes[name]
        if not lifetime.live_out:
            continue
        for seg in segments:
            if seg.key in allocation.residency:
                continue
            for r in seg.reads:
                if r == boundary and (name, r) not in read_samples:
                    pseudo_reads += 1
    report = allocation.report
    if mem_writes != report.mem_writes:
        raise OracleViolation(
            "codegen_agreement",
            f"program performs {mem_writes} memory writes, report counts "
            f"{report.mem_writes}",
        )
    total_reads = len(read_samples) + pseudo_reads
    if total_reads != report.mem_reads:
        raise OracleViolation(
            "codegen_agreement",
            f"program samples {len(read_samples)} memory reads "
            f"(+{pseudo_reads} block-boundary pseudo-reads), report counts "
            f"{report.mem_reads}",
        )

    block = result.schedule.block
    sources = [
        op.output
        for op in block
        if op.output and op.opcode in (OpCode.INPUT, OpCode.CONST)
    ]
    for _ in range(trials):
        inputs = {
            name: rng.getrandbits(block.variable(name).width)
            for name in sources
        }
        try:
            verify_program(program, block, allocation, inputs)
        except AllocationError as exc:
            raise OracleViolation("codegen_agreement", str(exc)) from exc


#: The oracle battery applicable to any solved allocation.
ALLOCATION_ORACLES: dict[str, Callable[[Allocation], None]] = {
    "flow_conservation": oracle_flow_conservation,
    "total_flow": oracle_total_flow,
    "split_lower_bounds": oracle_split_lower_bounds,
    "optimality_certificate": oracle_optimality_certificate,
    "energy_agreement": oracle_energy_agreement,
}


def check_allocation(
    allocation: Allocation,
    oracles: tuple[str, ...] = tuple(ALLOCATION_ORACLES),
) -> list[Violation]:
    """Run the named oracles on *allocation*; return violations as data.

    Args:
        allocation: The solved instance to verify.
        oracles: Names from :data:`ALLOCATION_ORACLES` to run, in order.

    Returns:
        One :class:`Violation` per failed oracle (empty = fully verified).
    """
    violations: list[Violation] = []
    for name in oracles:
        try:
            ALLOCATION_ORACLES[name](allocation)
        except OracleViolation as exc:
            violations.append(Violation(oracle=name, message=str(exc)))
    return violations
