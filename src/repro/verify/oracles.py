"""Invariant oracles over solved allocation instances.

Every oracle takes a solved :class:`~repro.core.allocation.Allocation`
(or, for the code-generation oracle, a full
:class:`~repro.core.pipeline.PipelineResult`) and re-derives one paper
invariant *independently* of the code that produced the solution:

* ``flow_conservation`` — bounds, conservation and source/sink balance of
  the flow vector (section 4 constraints);
* ``total_flow`` — the shipped value equals the register count ``R``
  (eq. 5) and the chains plus bypass units account for every unit;
* ``split_lower_bounds`` — section 5.2's must-be-register rule,
  re-derived from scratch: a segment may sit in memory only if the value
  can reach memory by the segment start and every served read is a
  memory-access step; the network's arc lower bounds and the solution's
  residency must both agree with the re-derivation;
* ``bank_assignment`` — under a multi-level storage hierarchy, the
  banking pass's placements are complete, bank-legal, within per-bank
  capacity and port cuts, and the delta-energy roll-up re-derives from
  the level parameters;
* ``optimality_certificate`` — constructs and verifies node potentials
  proving the flow minimum-cost (see :mod:`repro.verify.certificates`);
* ``energy_agreement`` — the flow objective (plus the constant
  all-in-memory term) equals the energy recomputed from the extracted
  chains by independent accounting;
* ``codegen_agreement`` — the lowered program's memory traffic reconciles
  exactly with the allocation report, and simulated execution matches the
  reference dataflow evaluation on random inputs;
* ``dag_reconciliation`` — a ``repro.dag/report/v1`` document is
  internally consistent: per-block energies roll up to partition and
  report totals, batch-executor objectives agree with the sweep's
  energies, the makespan meets the deadline and the frontier's
  feasibility flags are truthful.

Oracles raise :class:`OracleViolation`; :func:`check_allocation` runs a
battery and returns the violations as data (the fuzz harness consumes
them, tests usually assert the list is empty).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.core.allocation import Allocation, compute_report
from repro.core.network_builder import SINK, SOURCE
from repro.exceptions import ReproError
from repro.flow.validate import FlowValidationError, check_flow, flow_cost
from repro.verify.certificates import CertificateError, certify_flow

__all__ = [
    "OracleViolation",
    "Violation",
    "ALLOCATION_ORACLES",
    "check_allocation",
    "oracle_flow_conservation",
    "oracle_total_flow",
    "oracle_split_lower_bounds",
    "oracle_bank_assignment",
    "oracle_optimality_certificate",
    "oracle_energy_agreement",
    "oracle_codegen_agreement",
    "oracle_dag_reconciliation",
]

#: Relative tolerance for energy comparisons.
_ENERGY_TOL = 1e-6

#: Sentinel distinguishing "use the problem's union access set" from an
#: explicit ``None`` (= unrestricted) bank access set.
UNSET_ACCESS = object()


class OracleViolation(ReproError):
    """A solved instance broke one of the verification invariants.

    Attributes:
        oracle: Name of the violated oracle.
    """

    def __init__(self, oracle: str, message: str) -> None:
        super().__init__(f"[{oracle}] {message}")
        self.oracle = oracle


@dataclass(frozen=True)
class Violation:
    """One recorded oracle violation (pure data, JSON-friendly).

    Attributes:
        oracle: Name of the violated oracle.
        message: Human-readable description of the broken invariant.
    """

    oracle: str
    message: str


def oracle_flow_conservation(allocation: Allocation) -> None:
    """Flow bounds, conservation and terminal balance (section 4).

    Delegates to :func:`repro.flow.validate.check_flow` (which itself
    sits on the shared :func:`~repro.flow.validate.node_balances`
    arithmetic) rather than re-implementing conservation here — one
    balance computation, two consumers.
    """
    try:
        check_flow(
            allocation.flow,
            SOURCE,
            SINK,
            allocation.problem.register_count,
        )
    except FlowValidationError as exc:
        raise OracleViolation("flow_conservation", str(exc)) from exc


def oracle_total_flow(allocation: Allocation) -> None:
    """Total flow equals ``R`` and decomposes into chains + bypass units."""
    problem = allocation.problem
    value = allocation.flow.value
    if value != problem.register_count:
        raise OracleViolation(
            "total_flow",
            f"flow ships {value} units, register count is "
            f"{problem.register_count}",
        )
    accounted = len(allocation.chains) + allocation.unused_registers
    if accounted != problem.register_count:
        raise OracleViolation(
            "total_flow",
            f"{len(allocation.chains)} chains + "
            f"{allocation.unused_registers} bypass units != R = "
            f"{problem.register_count}",
        )


def _memory_legal(problem, segment, access=UNSET_ACCESS) -> bool:
    """Independent re-derivation of section 5.2 memory-residency legality.

    *access* defaults to the problem's (union) access-time set; pass a
    bank's own access set to re-derive single-bank legality.
    """
    if access is UNSET_ACCESS:
        access = problem.access_times
    if access is None:
        return True
    lifetime = problem.lifetimes[segment.name]
    reaches_memory = any(
        lifetime.write_time <= m <= segment.start for m in access
    )
    reads_legal = all(
        r in access or (lifetime.live_out and r == lifetime.end)
        for r in segment.reads
    )
    return reaches_memory and reads_legal


def _banking_forced(problem, segment) -> bool:
    """Independent re-derivation of the multi-bank forcing rule.

    Under a multi-bank hierarchy a segment must be register-resident
    when it is legal against the *union* of bank access times but not
    against any *single* bank (values never migrate between banks, so
    union legality alone cannot place it)."""
    storage = problem.storage
    if storage is None or storage.is_degenerate:
        return False
    if not _memory_legal(problem, segment):
        return False  # already union-forced; nothing extra to add
    return not any(
        _memory_legal(problem, segment, access=bank_access)
        for bank_access in storage.bank_access_times(problem.horizon)
    )


def oracle_split_lower_bounds(allocation: Allocation) -> None:
    """Section 5.2 must-be-register segments carry lower bound 1 and flow 1.

    Re-derives memory-residency legality from the paper's rules (without
    calling the splitter's own ``forced`` logic) and checks three facts
    per segment arc: the arc's lower bound matches the re-derivation plus
    any explicit pins, the flow respects the bound, and every forced
    segment is register-resident in the extracted solution.
    """
    problem = allocation.problem
    network = allocation.flow.network
    seen: set[tuple[str, int]] = set()
    for arc in network.arcs:
        if not (isinstance(arc.data, tuple) and arc.data[0] == "segment"):
            continue
        segment = arc.data[1]
        seen.add(segment.key)
        pinned = segment.key in problem.forced_segments
        legal = (
            _memory_legal(problem, segment)
            and not _banking_forced(problem, segment)
        )
        expected_lower = 0 if legal and not pinned else 1
        if arc.lower != expected_lower:
            raise OracleViolation(
                "split_lower_bounds",
                f"segment {segment.key} has arc lower bound {arc.lower}, "
                f"re-derived legality demands {expected_lower}",
            )
        flow = allocation.flow.flows[arc.index]
        if flow < expected_lower:
            raise OracleViolation(
                "split_lower_bounds",
                f"forced segment {segment.key} carries flow {flow}",
            )
        if expected_lower == 1 and segment.key not in allocation.residency:
            raise OracleViolation(
                "split_lower_bounds",
                f"forced segment {segment.key} is not register-resident",
            )
    expected_keys = {
        seg.key for segs in problem.segments.values() for seg in segs
    }
    if seen != expected_keys:
        missing = sorted(expected_keys - seen)
        raise OracleViolation(
            "split_lower_bounds",
            f"network lacks segment arcs for {missing}",
        )


def oracle_bank_assignment(allocation: Allocation) -> None:
    """Multi-bank invariants of the banking second pass.

    Checks, independently of :mod:`repro.core.banking`'s placement code:

    * a storage-hierarchy solve carries a bank assignment and vice versa;
    * every placement names a real bank and is *legal* there — each
      memory-resident segment satisfies the section-5.2 rule against the
      bank's own access set, every spill/reload lands on a bank access
      step, and the initial write window contains one;
    * the recorded traffic reconciles with the allocation report in
      aggregate (total memory writes/reads) and per variable (memory
      segment read steps);
    * per-bank forced density: each bank's resident hulls pack into its
      capacity;
    * bank-conflict time cuts: no access step of a bank demands more
      simultaneous accesses than the bank has ports;
    * the energy roll-up: each delta re-derives from the bank's level
      parameters, deltas sum to ``delta_energy``, and ``total_energy``
      equals the flow objective plus that sum.
    """
    problem = allocation.problem
    banking = allocation.banking
    if problem.storage is None:
        if banking is not None:
            raise OracleViolation(
                "bank_assignment",
                "allocation carries a bank assignment without a storage "
                "spec on the problem",
            )
        return
    if banking is None:
        raise OracleViolation(
            "bank_assignment",
            "storage-hierarchy solve returned no bank assignment",
        )
    spec = banking.spec
    bank_access = spec.bank_access_times(problem.horizon)
    bank_count = len(spec.banks)

    total_writes = total_reads = 0
    for name, placement in banking.placements.items():
        traffic = placement.traffic
        if not 0 <= placement.bank < bank_count:
            raise OracleViolation(
                "bank_assignment",
                f"{name} placed in nonexistent bank {placement.bank}",
            )
        access = bank_access[placement.bank]
        lifetime = problem.lifetimes[name]
        mem_read_steps: list[int] = []
        for seg in problem.segments[name]:
            if seg.key in allocation.residency:
                continue
            if not _memory_legal(problem, seg, access=access):
                raise OracleViolation(
                    "bank_assignment",
                    f"segment {seg.key} is memory resident but illegal "
                    f"in its assigned bank {placement.bank}",
                )
            for r in seg.reads:
                if not (lifetime.live_out and r == lifetime.end):
                    mem_read_steps.append(r)
        if sorted(mem_read_steps) != sorted(traffic.read_steps):
            raise OracleViolation(
                "bank_assignment",
                f"{name}: recorded read steps "
                f"{sorted(traffic.read_steps)} disagree with residency-"
                f"derived steps {sorted(mem_read_steps)}",
            )
        if access is not None:
            boundary = [
                step
                for step in (*traffic.spill_steps, *traffic.reload_steps)
                if step not in access
            ]
            if boundary:
                raise OracleViolation(
                    "bank_assignment",
                    f"{name}: spill/reload steps {boundary} miss bank "
                    f"{placement.bank}'s access steps",
                )
            if traffic.initial_window is not None:
                lo, hi = traffic.initial_window
                if not any(lo <= m <= hi for m in access):
                    raise OracleViolation(
                        "bank_assignment",
                        f"{name}: initial write window [{lo}, {hi}] "
                        f"contains no access step of bank "
                        f"{placement.bank}",
                    )
        total_writes += traffic.writes
        total_reads += traffic.reads
    report = allocation.report
    if (total_writes, total_reads) != (report.mem_writes, report.mem_reads):
        raise OracleViolation(
            "bank_assignment",
            f"placed traffic totals ({total_writes} writes, "
            f"{total_reads} reads) disagree with the report "
            f"({report.mem_writes} writes, {report.mem_reads} reads)",
        )

    delta_sum = 0.0
    for name, placement in banking.placements.items():
        level = spec.banks[placement.bank]
        traffic = placement.traffic
        model = problem.energy_model
        variable = problem.lifetimes[name].variable
        base = traffic.writes * model.mem_write(variable) + (
            traffic.reads * model.mem_read(variable)
        )
        ratio = level.voltage / spec.reference.voltage
        expected = (
            base * (ratio * ratio * level.access_scale - 1.0)
            + level.transfer_cost * traffic.writes
            + level.idle_energy * (traffic.hull[1] - traffic.hull[0])
        )
        if abs(placement.delta - expected) > _ENERGY_TOL * (1 + abs(expected)):
            raise OracleViolation(
                "bank_assignment",
                f"{name}: recorded delta {placement.delta:.6f} vs "
                f"re-derived {expected:.6f}",
            )
        delta_sum += placement.delta
    scale = 1.0 + abs(delta_sum)
    if abs(delta_sum - banking.delta_energy) > _ENERGY_TOL * scale:
        raise OracleViolation(
            "bank_assignment",
            f"delta roll-up {delta_sum:.6f} vs recorded "
            f"{banking.delta_energy:.6f}",
        )
    expected_total = allocation.objective + banking.delta_energy
    if abs(allocation.total_energy - expected_total) > _ENERGY_TOL * (
        1.0 + abs(expected_total)
    ):
        raise OracleViolation(
            "bank_assignment",
            f"total energy {allocation.total_energy:.6f} vs objective + "
            f"deltas {expected_total:.6f}",
        )

    for index, level in enumerate(spec.banks):
        hulls = [
            placement.traffic.hull
            for placement in banking.placements.values()
            if placement.bank == index
        ]
        if level.capacity is not None:
            events: dict[int, int] = {}
            for lo, hi in hulls:
                if hi <= lo:
                    continue
                events[lo] = events.get(lo, 0) + 1
                events[hi] = events.get(hi, 0) - 1
            depth = 0
            for step in sorted(events):
                depth += events[step]
                if depth > level.capacity:
                    raise OracleViolation(
                        "bank_assignment",
                        f"bank {index} holds {depth} simultaneous values "
                        f"at step {step}, capacity is {level.capacity}",
                    )
        if level.ports is not None:
            access = bank_access[index]
            counts: dict[int, int] = {}
            for placement in banking.placements.values():
                if placement.bank != index:
                    continue
                traffic = placement.traffic
                steps = list(traffic.spill_steps)
                steps.extend(traffic.read_steps)
                steps.extend(traffic.reload_steps)
                if traffic.initial_window is not None:
                    lo, hi = traffic.initial_window
                    if access is None:
                        steps.append(lo)
                    else:
                        legal = [m for m in access if lo <= m <= hi]
                        if legal:
                            steps.append(max(legal))
                for step in steps:
                    counts[step] = counts.get(step, 0) + 1
            for step in sorted(counts):
                if counts[step] > level.ports:
                    raise OracleViolation(
                        "bank_assignment",
                        f"bank {index} needs {counts[step]} simultaneous "
                        f"accesses at step {step}, has {level.ports} "
                        f"ports",
                    )


def oracle_optimality_certificate(allocation: Allocation) -> None:
    """Machine-checked proof that the flow is minimum-cost for value R."""
    try:
        certify_flow(allocation.flow)
    except CertificateError as exc:
        raise OracleViolation("optimality_certificate", str(exc)) from exc


def oracle_energy_agreement(allocation: Allocation) -> None:
    """Flow objective == chain-recomputed energy == reported objective."""
    problem = allocation.problem
    objective = problem.constant_energy() + flow_cost(allocation.flow)
    recomputed = compute_report(problem, allocation.chains).total_energy
    scale = 1.0 + abs(objective)
    if abs(recomputed - objective) > _ENERGY_TOL * scale:
        raise OracleViolation(
            "energy_agreement",
            f"flow objective {objective:.6f} vs chain accounting "
            f"{recomputed:.6f}",
        )
    if abs(allocation.objective - objective) > _ENERGY_TOL * scale:
        raise OracleViolation(
            "energy_agreement",
            f"stored objective {allocation.objective:.6f} vs recomputed "
            f"{objective:.6f}",
        )


def oracle_codegen_agreement(
    result, rng: random.Random | None = None, trials: int = 3
) -> None:
    """Lowered program ⇄ allocation report ⇄ simulator agreement.

    Three independent checks on a full
    :class:`~repro.core.pipeline.PipelineResult`:

    * the program's memory writes (``Mem`` destinations) equal the
      report's memory-write count;
    * the program's distinct memory read samples — ``(variable, step)``
      pairs over non-piggyback operands — plus the live-out pseudo-reads
      the block boundary leaves to the consuming task equal the report's
      memory-read count;
    * simulating the program on *trials* random input vectors reproduces
      the reference dataflow evaluation for every output and live-out
      value.

    Args:
        result: The pipeline result (schedule + allocation) to verify.
        rng: Seeded generator for the input vectors (default seed 0).
        trials: Number of random input vectors to simulate.

    Raises:
        OracleViolation: On any reconciliation or simulation mismatch.
    """
    from repro.codegen.lower import lower
    from repro.codegen.program import Kind, Mem
    from repro.codegen.simulator import verify_program
    from repro.exceptions import AllocationError
    from repro.ir.operations import OpCode

    rng = rng if rng is not None else random.Random(0)
    allocation = result.allocation
    problem = allocation.problem
    program = lower(result, use_layout=False)

    mem_writes = sum(
        1 for ins in program.instructions if isinstance(ins.dest, Mem)
    )
    read_samples: set[tuple[str, int]] = set()
    for ins in program.instructions:
        if ins.kind is Kind.MOVE and ins.piggyback:
            continue
        for operand in ins.operands:
            if isinstance(operand, Mem):
                read_samples.add((operand.variable, ins.step))
    pseudo_reads = 0
    boundary = problem.horizon + 1
    for name, segments in problem.segments.items():
        lifetime = problem.lifetimes[name]
        if not lifetime.live_out:
            continue
        for seg in segments:
            if seg.key in allocation.residency:
                continue
            for r in seg.reads:
                if r == boundary and (name, r) not in read_samples:
                    pseudo_reads += 1
    report = allocation.report
    if mem_writes != report.mem_writes:
        raise OracleViolation(
            "codegen_agreement",
            f"program performs {mem_writes} memory writes, report counts "
            f"{report.mem_writes}",
        )
    total_reads = len(read_samples) + pseudo_reads
    if total_reads != report.mem_reads:
        raise OracleViolation(
            "codegen_agreement",
            f"program samples {len(read_samples)} memory reads "
            f"(+{pseudo_reads} block-boundary pseudo-reads), report counts "
            f"{report.mem_reads}",
        )

    block = result.schedule.block
    sources = [
        op.output
        for op in block
        if op.output and op.opcode in (OpCode.INPUT, OpCode.CONST)
    ]
    for _ in range(trials):
        inputs = {
            name: rng.getrandbits(block.variable(name).width)
            for name in sources
        }
        try:
            verify_program(program, block, allocation, inputs)
        except AllocationError as exc:
            raise OracleViolation("codegen_agreement", str(exc)) from exc


#: The oracle battery applicable to any solved allocation.
ALLOCATION_ORACLES: dict[str, Callable[[Allocation], None]] = {
    "flow_conservation": oracle_flow_conservation,
    "total_flow": oracle_total_flow,
    "split_lower_bounds": oracle_split_lower_bounds,
    "bank_assignment": oracle_bank_assignment,
    "optimality_certificate": oracle_optimality_certificate,
    "energy_agreement": oracle_energy_agreement,
}


def check_allocation(
    allocation: Allocation,
    oracles: tuple[str, ...] = tuple(ALLOCATION_ORACLES),
) -> list[Violation]:
    """Run the named oracles on *allocation*; return violations as data.

    Args:
        allocation: The solved instance to verify.
        oracles: Names from :data:`ALLOCATION_ORACLES` to run, in order.

    Returns:
        One :class:`Violation` per failed oracle (empty = fully verified).
    """
    violations: list[Violation] = []
    for name in oracles:
        try:
            ALLOCATION_ORACLES[name](allocation)
        except OracleViolation as exc:
            violations.append(Violation(oracle=name, message=str(exc)))
    return violations


def oracle_dag_reconciliation(
    report, require_certified: bool = False
) -> None:
    """Re-check a ``repro.dag/report/v1`` document's internal accounting.

    Independently of :mod:`repro.dag.report`, re-derives every roll-up
    from the raw entries:

    * each partition's energy equals the sum of its member blocks;
    * ``energy.blocks`` / ``energy.handoffs`` / ``energy.total`` equal
      the block sum, the handoff sum and their total respectively;
    * every block with batch provenance solved (``status == "ok"``) and
      its executor objective times the task rate equals the block's
      per-frame energy — i.e. the batch really solved the same instances
      the DVFS sweep priced;
    * the chosen makespan meets the deadline, and every frontier entry's
      ``meets_deadline`` flag is truthful.

    Args:
        report: A decoded ``repro.dag/report/v1`` document.
        require_certified: Also demand that every dispatched block
            carried a spot-checked optimality certificate.

    Raises:
        OracleViolation: Any reconciliation failure.
    """
    name = "dag_reconciliation"
    schema = report.get("schema")
    if schema != "repro.dag/report/v1":
        raise OracleViolation(name, f"unknown report schema {schema!r}")
    blocks = report.get("blocks", [])
    partitions = report.get("partitions", [])
    handoffs = report.get("handoffs", [])
    energy = report.get("energy", {})

    by_partition: dict = {}
    for block in blocks:
        by_partition.setdefault(block["partition"], 0.0)
        by_partition[block["partition"]] += float(block["energy"])
    for partition in partitions:
        expected = by_partition.get(partition["id"], 0.0)
        got = float(partition["energy"])
        if abs(got - expected) > _ENERGY_TOL * (1 + abs(expected)):
            raise OracleViolation(
                name,
                f"partition {partition['id']!r} energy {got} != sum of "
                f"its blocks {expected}",
            )
        members = set(partition["tasks"])
        listed = {
            b["task"] for b in blocks if b["partition"] == partition["id"]
        }
        if members != listed:
            raise OracleViolation(
                name,
                f"partition {partition['id']!r} lists tasks "
                f"{sorted(members)} but blocks cover {sorted(listed)}",
            )

    block_sum = sum(float(b["energy"]) for b in blocks)
    handoff_sum = sum(float(h["energy"]) for h in handoffs)
    for key, expected in (
        ("blocks", block_sum),
        ("handoffs", handoff_sum),
        ("total", block_sum + handoff_sum),
    ):
        got = float(energy.get(key, float("nan")))
        if not abs(got - expected) <= _ENERGY_TOL * (1 + abs(expected)):
            raise OracleViolation(
                name,
                f"energy.{key} = {got} does not reconcile with the "
                f"re-derived {expected}",
            )

    for block in blocks:
        job = block.get("job")
        if job is None:
            continue
        if job.get("status") != "ok":
            raise OracleViolation(
                name,
                f"block {block['task']!r} job {job.get('job_id')!r} has "
                f"status {job.get('status')!r}",
            )
        if require_certified and not job.get("certified"):
            raise OracleViolation(
                name,
                f"block {block['task']!r} solve carried no optimality "
                f"certificate",
            )
        objective = job.get("objective")
        if objective is None:
            raise OracleViolation(
                name, f"block {block['task']!r} job reports no objective"
            )
        expected = float(objective) * float(block.get("rate", 1))
        got = float(block["energy"])
        if abs(got - expected) > _ENERGY_TOL * (1 + abs(expected)):
            raise OracleViolation(
                name,
                f"block {block['task']!r} energy {got} != executor "
                f"objective x rate = {expected}",
            )

    deadline = float(report.get("deadline", float("inf")))
    makespan = float(report.get("makespan", float("nan")))
    if not makespan <= deadline:
        raise OracleViolation(
            name, f"makespan {makespan} exceeds the deadline {deadline}"
        )
    for point in report.get("frontier", []):
        flagged = bool(point.get("meets_deadline"))
        actual = float(point["makespan"]) <= deadline
        if flagged != actual:
            raise OracleViolation(
                name,
                f"frontier point {point.get('label')!r} claims "
                f"meets_deadline={flagged} but makespan "
                f"{point['makespan']} vs deadline {deadline} says {actual}",
            )
