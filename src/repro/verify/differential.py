"""Differential solver cross-checking and baseline dominance.

Two independent agreement checks back the paper's central optimality
claim:

* :func:`cross_check` solves the *same* network with three unrelated
  methods — the successive-shortest-path production solver, the Klein
  cycle-cancelling solver, and (when scipy is present) the section-4 LP
  relaxation — and asserts they agree on the objective value, or agree
  that the instance is infeasible.  The LP also witnesses the
  integrality property: its fractional optimum must equal the integral
  one.
* :func:`baseline_dominance` re-runs every prior-art baseline on the
  instance and asserts the flow-optimal allocation dominates or ties
  each of them on modeled energy (on unrestricted memory, every baseline
  partition is a feasible point of the flow formulation, so a loss would
  disprove optimality).

Both return plain-data outcomes the fuzz harness serialises directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

from repro.baselines.chang_pedram import chang_pedram_binding
from repro.baselines.common import build_result
from repro.baselines.graph_coloring import graph_coloring_allocate
from repro.baselines.greedy_partition import greedy_partition_allocate
from repro.baselines.left_edge import left_edge_allocate
from repro.baselines.two_phase import two_phase_allocate
from repro.core.allocation import Allocation
from repro.exceptions import InfeasibleFlowError, ReproError
from repro.flow.cycle_canceling import solve_by_cycle_canceling
from repro.flow.graph import FlowNetwork
from repro.flow.lower_bounds import solve as ssp_solve, transform_lower_bounds
from repro.lifetimes.intervals import max_density

__all__ = [
    "DifferentialMismatch",
    "CrossCheckOutcome",
    "DominanceOutcome",
    "cross_check",
    "baseline_dominance",
    "BASELINE_RUNNERS",
]

#: Absolute-plus-relative tolerance for objective agreement.
_COST_TOL = 1e-6


class DifferentialMismatch(ReproError):
    """Two independent solution methods disagreed on the same instance."""


@dataclass
class CrossCheckOutcome:
    """Agreement record of one multi-solver run.

    Attributes:
        costs: Objective value per solver that found a solution.
        infeasible: Solvers that reported the instance infeasible.
        skipped: Solvers not run (e.g. LP without scipy).
        agreed: Whether every run solver agreed (costs within tolerance,
            or unanimous infeasibility).
        spread: Largest pairwise objective difference observed.
        message: Human-readable diagnosis when ``agreed`` is ``False``.
    """

    costs: dict[str, float] = field(default_factory=dict)
    infeasible: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    agreed: bool = True
    spread: float = 0.0
    message: str = ""

    def to_dict(self) -> dict:
        """JSON-ready view of the outcome."""
        return {
            "costs": dict(self.costs),
            "infeasible": list(self.infeasible),
            "skipped": list(self.skipped),
            "agreed": self.agreed,
            "spread": self.spread,
            "message": self.message,
        }


def _lp_available() -> bool:
    """Whether scipy's LP backend can be imported."""
    try:
        import scipy.optimize  # noqa: F401
    except ImportError:
        return False
    return True


def cross_check(
    network: FlowNetwork,
    source: Hashable,
    sink: Hashable,
    flow_value: int,
    use_lp: bool | None = None,
    tolerance: float = _COST_TOL,
) -> CrossCheckOutcome:
    """Solve one network with SSP, cycle cancelling and the LP; compare.

    Args:
        network: The instance (lower-bounded arcs allowed; the
            cycle-cancelling solver runs on the excess/deficit
            transformation of exactly the same instance).
        source: Source node.
        sink: Sink node.
        flow_value: Fixed source→sink flow value.
        use_lp: Force the LP check on/off; ``None`` runs it when scipy
            is importable.
        tolerance: Absolute-plus-relative objective agreement slack.

    Returns:
        The populated :class:`CrossCheckOutcome` (never raises on
        disagreement — callers decide; see
        :meth:`CrossCheckOutcome.to_dict` and ``agreed``).
    """
    outcome = CrossCheckOutcome()

    try:
        outcome.costs["ssp"] = ssp_solve(
            network, source, sink, flow_value
        ).cost
    except InfeasibleFlowError:
        outcome.infeasible.append("ssp")

    try:
        if network.has_lower_bounds():
            transform = transform_lower_bounds(
                network, source, sink, flow_value
            )
            inner = solve_by_cycle_canceling(
                transform.network,
                transform.super_source,
                transform.super_sink,
                transform.demand,
            )
            outcome.costs["cycle_canceling"] = transform.recover(inner).cost
        else:
            outcome.costs["cycle_canceling"] = solve_by_cycle_canceling(
                network, source, sink, flow_value
            ).cost
    except InfeasibleFlowError:
        outcome.infeasible.append("cycle_canceling")

    if use_lp is None:
        use_lp = _lp_available()
    if use_lp:
        from repro.flow.lp_check import lp_min_cost

        try:
            outcome.costs["lp"] = lp_min_cost(
                network, source, sink, flow_value
            )
        except InfeasibleFlowError:
            outcome.infeasible.append("lp")
    else:
        outcome.skipped.append("lp")

    if outcome.costs and outcome.infeasible:
        outcome.agreed = False
        outcome.message = (
            f"feasibility disagreement: {sorted(outcome.costs)} solved, "
            f"{outcome.infeasible} reported infeasible"
        )
        return outcome
    if outcome.costs:
        values = sorted(outcome.costs.values())
        outcome.spread = values[-1] - values[0]
        scale = 1.0 + max(abs(v) for v in values)
        if outcome.spread > tolerance * scale:
            outcome.agreed = False
            outcome.message = (
                "objective disagreement: "
                + ", ".join(
                    f"{name}={cost:.9g}"
                    for name, cost in sorted(outcome.costs.items())
                )
            )
    return outcome


#: Baseline registry used by the dominance check: name -> runner with the
#: uniform ``(lifetimes, horizon, register_count, model)`` signature.
BASELINE_RUNNERS = {
    "two-phase": two_phase_allocate,
    "left-edge": left_edge_allocate,
    "graph-coloring": graph_coloring_allocate,
    "greedy": greedy_partition_allocate,
}


@dataclass
class DominanceOutcome:
    """Record of the flow-vs-baselines energy comparison.

    Attributes:
        flow_objective: Energy of the flow-optimal allocation.
        baselines: Energy per baseline that ran.
        skipped: Baselines not applicable to the instance (e.g.
            Chang-Pedram below the density floor).
        dominated: Whether the flow allocation tied or beat every
            baseline within tolerance.
        message: Diagnosis of the first loss when ``dominated`` is
            ``False``.
    """

    flow_objective: float
    baselines: dict[str, float] = field(default_factory=dict)
    skipped: list[str] = field(default_factory=list)
    dominated: bool = True
    message: str = ""

    def to_dict(self) -> dict:
        """JSON-ready view of the outcome."""
        return {
            "flow_objective": self.flow_objective,
            "baselines": dict(self.baselines),
            "skipped": list(self.skipped),
            "dominated": self.dominated,
            "message": self.message,
        }


def run_baselines(
    lifetimes: Mapping,
    horizon: int,
    register_count: int,
    model,
) -> tuple[dict[str, float], list[str]]:
    """Run all five prior-art baselines; return objectives and skips.

    The four partition-capable baselines always run; the Chang-Pedram
    full binding additionally requires ``R >= max density`` (it has no
    memory fallback) and is skipped below that floor.
    """
    objectives: dict[str, float] = {}
    skipped: list[str] = []
    for name, runner in BASELINE_RUNNERS.items():
        objectives[name] = runner(
            lifetimes, horizon, register_count, model
        ).objective
    if register_count >= max_density(lifetimes.values(), horizon):
        assignment = chang_pedram_binding(
            lifetimes, horizon, model, register_count=register_count
        )
        objectives["chang-pedram"] = build_result(
            "chang-pedram",
            lifetimes,
            assignment.chains,
            model,
            register_count,
        ).objective
    else:
        skipped.append("chang-pedram")
    return objectives, skipped


def baseline_dominance(
    allocation: Allocation, tolerance: float = _COST_TOL
) -> DominanceOutcome:
    """Check the flow allocation ties or beats every baseline on energy.

    Only meaningful on unrestricted memory (baselines are blind to
    restricted access times); callers should gate on
    ``problem.memory.restricted``.

    Args:
        allocation: The flow-optimal solution to defend.
        tolerance: Absolute-plus-relative energy slack.

    Returns:
        The populated :class:`DominanceOutcome`.
    """
    problem = allocation.problem
    outcome = DominanceOutcome(flow_objective=allocation.objective)
    objectives, skipped = run_baselines(
        problem.lifetimes,
        problem.horizon,
        problem.register_count,
        problem.energy_model,
    )
    outcome.baselines = objectives
    outcome.skipped = skipped
    for name, objective in objectives.items():
        slack = tolerance * (1.0 + abs(objective))
        if allocation.objective > objective + slack:
            outcome.dominated = False
            outcome.message = (
                f"baseline {name} achieves {objective:.9g}, flow optimum "
                f"reports {allocation.objective:.9g}"
            )
            break
    return outcome
