"""Differential verification subsystem.

Three layers of machine-checked confidence over the allocator (the
"verified, not trusted" tooling motivated by the complexity results in
PAPERS.md — spill/partition reasoning goes subtly wrong easily):

* :mod:`repro.verify.oracles` — per-instance invariant checkers: flow
  conservation, total-flow-equals-R, section 5.2 lower bounds re-derived
  from scratch, energy agreement, and program⇄report⇄simulator
  reconciliation;
* :mod:`repro.verify.certificates` — constructive optimality proofs via
  node potentials and complementary slackness;
* :mod:`repro.verify.differential` + :mod:`repro.verify.fuzz` — solver
  cross-checking (SSP vs cycle cancelling vs LP), baseline dominance,
  and the seeded fuzz harness behind ``repro-alloc fuzz``.
"""

from repro.verify.certificates import (
    CertificateError,
    certify_flow,
    certify_optimal,
    check_certificate,
    compute_potentials,
)
from repro.verify.differential import (
    CrossCheckOutcome,
    DifferentialMismatch,
    DominanceOutcome,
    baseline_dominance,
    cross_check,
)
from repro.verify.fuzz import (
    SCHEMA as FUZZ_SCHEMA,
    FuzzCase,
    render_report,
    run_case,
    run_fuzz,
    shrink_case,
)
from repro.verify.oracles import (
    ALLOCATION_ORACLES,
    OracleViolation,
    Violation,
    check_allocation,
    oracle_codegen_agreement,
    oracle_dag_reconciliation,
)

__all__ = [
    "CertificateError",
    "certify_flow",
    "certify_optimal",
    "check_certificate",
    "compute_potentials",
    "CrossCheckOutcome",
    "DifferentialMismatch",
    "DominanceOutcome",
    "baseline_dominance",
    "cross_check",
    "FUZZ_SCHEMA",
    "FuzzCase",
    "render_report",
    "run_case",
    "run_fuzz",
    "shrink_case",
    "ALLOCATION_ORACLES",
    "OracleViolation",
    "Violation",
    "check_allocation",
    "oracle_codegen_agreement",
    "oracle_dag_reconciliation",
]
