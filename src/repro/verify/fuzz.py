"""Seeded, coverage-minded fuzz harness over the allocation pipeline.

One fuzz *case* is a randomly drawn Problem 1 instance — lifetime set,
register count ``R``, memory access divisor ``c``, split density knobs —
run through the full oracle battery (:mod:`repro.verify.oracles`), the
multi-solver differential check and, on unrestricted memory, the baseline
dominance check (:mod:`repro.verify.differential`).  The generator
deliberately oversamples the paper's edge cases: ``R = 0``, ``R >=
|vars|``, minimal-length lifetimes (read immediately after write) and
every access period ``c`` in {1, 2, 3, 5}.

Reproducibility is byte-for-byte: each case derives its own
:class:`random.Random` from ``(seed, index)`` via
:func:`repro.workloads.random_blocks.spawn_rng`, so case 2317 of seed 9
can be replayed alone without re-running cases 0..2316.

Failures are greedily *shrunk*: the minimizer repeatedly drops variables
and lowers ``R``/``horizon`` while the failure persists, and the minimal
reproducer is embedded in the report as a
:func:`repro.workloads.serialize.problem_to_dict` instance so it can be
replayed from the JSON alone (see EXPERIMENTS.md).  The report follows
the versioned-schema conventions of :mod:`repro.obs.profile` under the
id ``repro.verify/fuzz-report/v1``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any

from repro.core.options import SolveOptions
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.core.storage import StorageSpec
from repro.energy.voltage import MemoryConfig
from repro.exceptions import AllocationError, InfeasibleFlowError, ReproError
from repro.core.network_builder import SINK, SOURCE, build_network
from repro.lint.prove import check_certificate, prove_infeasible
from repro.verify.differential import baseline_dominance, cross_check
from repro.verify.oracles import Violation, check_allocation
from repro.workloads.random_blocks import random_lifetimes, spawn_rng
from repro.workloads.serialize import problem_to_dict

__all__ = [
    "SCHEMA",
    "FuzzCase",
    "CaseResult",
    "draw_case",
    "draw_bank_case",
    "run_case",
    "run_problem",
    "shrink_case",
    "run_fuzz",
    "render_report",
]

#: Versioned schema id stamped on every fuzz report.
SCHEMA = "repro.verify/fuzz-report/v1"

#: Memory access divisors the generator draws from (paper section 5.2
#: studies c = 2; c = 1 is unrestricted memory, the dominance regime).
#: Unrestricted and c = 2 are weighted up because large divisors at low R
#: are mostly infeasible, which exercises only the agreement-on-
#: infeasibility path.
_DIVISORS = (1, 1, 2, 2, 3, 5)

#: Multi-bank axes the bank-conflict family sweeps.  Two staggered
#: period-2 banks are the canonical conflict shape (the union of access
#: steps is everything while each bank sees every other step), so they
#: are weighted up; single-bank draws keep the degenerate path honest.
_BANK_COUNTS = (1, 2, 2, 2, 3)
_BANK_PERIODS = (1, 2, 2, 3)
_BANK_PORTS = (None, None, 1, 2)
_BANK_CAPACITIES = (None, None, 1, 2, 3)


@dataclass(frozen=True)
class FuzzCase:
    """The drawn parameters of one fuzz iteration (pure data).

    Attributes:
        index: Case number within the run.
        count: Number of variables.
        horizon: Block length in control steps.
        register_count: Register file size ``R``.
        divisor: Memory access period ``c``.
        multi_read_fraction: Split-lifetime density knob.
        live_out_fraction: Fraction of variables live past the block.
        degenerate: Which edge-case family this case targets, or ``""``.
        bank_count: Memory banks in the storage hierarchy (0 = no
            hierarchy; the classic two-level model).
        bank_period: Shared per-bank access period (bank cases only).
        bank_ports: Per-bank port width, or ``None`` for unlimited.
        bank_capacity: Per-bank capacity, or ``None`` for unbounded.
        bank_stagger: Whether bank offsets interleave across the period.
    """

    index: int
    count: int
    horizon: int
    register_count: int
    divisor: int
    multi_read_fraction: float
    live_out_fraction: float
    degenerate: str = ""
    bank_count: int = 0
    bank_period: int = 0
    bank_ports: int | None = None
    bank_capacity: int | None = None
    bank_stagger: bool = True

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view of the drawn parameters."""
        return {
            "index": self.index,
            "count": self.count,
            "horizon": self.horizon,
            "register_count": self.register_count,
            "divisor": self.divisor,
            "multi_read_fraction": self.multi_read_fraction,
            "live_out_fraction": self.live_out_fraction,
            "degenerate": self.degenerate,
            "bank_count": self.bank_count,
            "bank_period": self.bank_period,
            "bank_ports": self.bank_ports,
            "bank_capacity": self.bank_capacity,
            "bank_stagger": self.bank_stagger,
        }

    def storage_spec(self) -> StorageSpec | None:
        """The storage hierarchy this case describes, if any."""
        if self.bank_count <= 0:
            return None
        return StorageSpec.banked(
            self.bank_count,
            self.bank_period,
            ports=self.bank_ports,
            capacity=self.bank_capacity,
            stagger=self.bank_stagger,
        )


@dataclass
class CaseResult:
    """Outcome of one fuzz case.

    Attributes:
        case: The parameters the case was drawn with.
        status: ``"ok"``, ``"infeasible"`` or ``"violation"``.
        violations: Oracle/differential violations (empty unless
            ``status == "violation"``).
        problem: The failing instance (kept only on violation, for the
            shrinker and the report).
    """

    case: FuzzCase
    status: str
    violations: list[Violation] = field(default_factory=list)
    problem: AllocationProblem | None = None


def draw_case(rng: random.Random, index: int) -> FuzzCase:
    """Draw the parameters of fuzz case *index* from *rng*.

    Cycles the degenerate families every few iterations so even short
    runs cover ``R = 0``, ``R >= |vars|``, minimal-length lifetimes and
    split-heavy blocks; the remaining iterations draw freely.
    """
    degenerate = ("", "zero-registers", "", "surplus-registers",
                  "", "minimal-lifetimes", "", "split-heavy")[index % 8]
    count = rng.randint(2, 14)
    horizon = rng.randint(4, 16)
    multi_read = rng.uniform(0.1, 0.5)
    live_out = rng.uniform(0.0, 0.3)
    if degenerate == "zero-registers":
        register_count = 0
    elif degenerate == "surplus-registers":
        register_count = count + rng.randint(0, 3)
    else:
        register_count = rng.randint(1, max(1, count - 1))
    if degenerate == "minimal-lifetimes":
        horizon = rng.randint(2, 4)
        multi_read = 0.0
    if degenerate == "split-heavy":
        multi_read = 0.9
    return FuzzCase(
        index=index,
        count=count,
        horizon=horizon,
        register_count=register_count,
        divisor=rng.choice(_DIVISORS),
        multi_read_fraction=multi_read,
        live_out_fraction=live_out,
        degenerate=degenerate,
    )


def draw_bank_case(rng: random.Random, index: int) -> FuzzCase:
    """Draw one bank-conflict case: bank count x port width x period.

    The lifetime-shape axes mirror :func:`draw_case`; on top of them
    every case carries a multi-bank :class:`StorageSpec`.  Staggered
    period-2 pairs — the canonical conflict shape, where the union of
    access steps constrains nothing while every single bank rejects
    cross-phase reads — are weighted up, and capacity/port limits are
    drawn independently so capacity-pinning, port legalization and bank
    fragmentation all get exercised against the multi-bank oracles.
    """
    count = rng.randint(2, 12)
    horizon = rng.randint(4, 14)
    return FuzzCase(
        index=index,
        count=count,
        horizon=horizon,
        register_count=rng.randint(1, max(2, count)),
        divisor=1,  # overridden by the hierarchy's reference bank
        multi_read_fraction=rng.uniform(0.1, 0.6),
        live_out_fraction=rng.uniform(0.0, 0.3),
        degenerate="banked",
        bank_count=rng.choice(_BANK_COUNTS),
        bank_period=rng.choice(_BANK_PERIODS),
        bank_ports=rng.choice(_BANK_PORTS),
        bank_capacity=rng.choice(_BANK_CAPACITIES),
        bank_stagger=rng.random() < 0.8,
    )


def build_problem(case: FuzzCase, rng: random.Random) -> AllocationProblem:
    """Materialise the :class:`AllocationProblem` a case describes."""
    lifetimes = random_lifetimes(
        rng,
        count=case.count,
        horizon=case.horizon,
        multi_read_fraction=case.multi_read_fraction,
        live_out_fraction=case.live_out_fraction,
    )
    return AllocationProblem(
        lifetimes,
        register_count=case.register_count,
        horizon=case.horizon + 1,
        memory=MemoryConfig(divisor=case.divisor),
        storage=case.storage_spec(),
    )


def run_problem(
    problem: AllocationProblem, use_lp: bool | None = None
) -> tuple[str, list[Violation]]:
    """Run the full verification battery on one instance.

    Returns:
        ``(status, violations)`` where status is ``"ok"``,
        ``"infeasible"`` (all solvers must agree on infeasibility) or
        ``"violation"``.

    Besides the oracle battery and the solver differential, the case is
    run through the solver-free prover (:mod:`repro.lint.prove`): an
    RA6xx infeasibility certificate on an instance the solver then
    solves is a soundness bug (oracle ``"prover"``), and every
    certificate on a genuinely infeasible instance must survive its own
    independent re-check.  The prover is deliberately incomplete, so
    *absence* of a certificate proves nothing and is never flagged.
    """
    violations: list[Violation] = []
    try:
        certificate = prove_infeasible(problem)
    except ReproError:
        certificate = None  # unbuildable networks are the lint's beat
    try:
        # certify=True: every solve also constructs and verifies an
        # optimality certificate (node potentials + complementary
        # slackness) — for multi-bank instances this covers every
        # pin-and-resolve round of the banking pass.
        allocation = allocate(problem, SolveOptions(certify=True))
    except AllocationError as exc:
        # The banking legalizer's stall guard: the pinned set grows
        # monotonically, so non-convergence is a legalizer bug, never a
        # property of the instance.
        violations.append(
            Violation(
                oracle="banking",
                message=f"banking pass failed to legalise: {exc}",
            )
        )
        return "violation", violations
    except InfeasibleFlowError as exc:
        if certificate is not None and not check_certificate(
            problem, certificate
        ):
            violations.append(
                Violation(
                    oracle="prover",
                    message=f"{certificate.kind} certificate failed its "
                    f"independent re-check: {certificate.detail}",
                )
            )
            return "violation", violations
        # Restricted memory can make the bounds unsatisfiable; the
        # independent solvers must agree that it is.  Under a storage
        # hierarchy the infeasible network may be a *pinned* re-solve
        # from inside the banking loop, not the base union network —
        # the solver attaches the exact instance it gave up on.
        built = build_network(getattr(exc, "problem", None) or problem)
        outcome = cross_check(
            built.network, SOURCE, SINK, problem.register_count, use_lp=use_lp
        )
        if outcome.costs:
            violations.append(
                Violation(
                    oracle="differential",
                    message="primary solver reported infeasible but "
                    + outcome.message
                    if outcome.message
                    else "primary solver reported infeasible yet "
                    f"{sorted(outcome.costs)} found solutions",
                )
            )
            return "violation", violations
        return "infeasible", violations

    if certificate is not None:
        violations.append(
            Violation(
                oracle="prover",
                message=f"prover claimed infeasibility "
                f"({certificate.kind}: {certificate.detail}) but the "
                f"solver found a solution",
            )
        )
    violations.extend(check_allocation(allocation))
    outcome = cross_check(
        allocation.flow.network,
        SOURCE,
        SINK,
        problem.register_count,
        use_lp=use_lp,
    )
    if not outcome.agreed:
        violations.append(
            Violation(oracle="differential", message=outcome.message)
        )
    if not problem.memory.restricted and problem.storage is None:
        # Bank deltas reprice memory residency away from the reference
        # objective, so the two-level dominance argument does not apply.
        dominance = baseline_dominance(allocation)
        if not dominance.dominated:
            violations.append(
                Violation(oracle="dominance", message=dominance.message)
            )
    return ("violation" if violations else "ok"), violations


def run_case(
    seed: int, case: FuzzCase, use_lp: bool | None = None
) -> CaseResult:
    """Replay fuzz case *case* of run *seed* (independently of the run).

    The per-case RNG is derived from ``(seed, case.index)``, so any case
    from a report can be reproduced without re-running its predecessors.
    """
    rng = spawn_rng(seed, "fuzz-case", case.index)
    try:
        problem = build_problem(case, rng)
    except ReproError as exc:
        return CaseResult(
            case,
            "violation",
            [Violation(oracle="generator", message=str(exc))],
        )
    status, violations = run_problem(problem, use_lp=use_lp)
    return CaseResult(
        case,
        status,
        violations,
        problem=problem if status == "violation" else None,
    )


def _still_fails(problem: AllocationProblem, use_lp: bool | None) -> bool:
    """Whether the verification battery still flags *problem*."""
    try:
        status, _ = run_problem(problem, use_lp=use_lp)
    except ReproError:
        # A crash during shrinking is still a failure worth keeping.
        return True
    return status == "violation"


def shrink_case(
    problem: AllocationProblem,
    use_lp: bool | None = None,
    max_rounds: int = 8,
) -> AllocationProblem:
    """Greedily minimise a failing instance while it keeps failing.

    Four reduction moves, applied to a fixed point (or *max_rounds*):
    drop one variable, drop one register, simplify the storage
    hierarchy (drop it whole, else shed the last bank), shorten the
    horizon to the latest lifetime end.  Every candidate is re-verified
    with the same battery; only candidates that still fail are kept.
    The storage hierarchy (and any pins) ride along through every move,
    so a bank-conflict failure shrinks *as* a bank-conflict failure.
    """
    current = problem
    for _ in range(max_rounds):
        shrunk = False
        for name in sorted(current.lifetimes):
            remaining = {
                k: v for k, v in current.lifetimes.items() if k != name
            }
            if not remaining:
                continue
            candidate = AllocationProblem(
                remaining,
                register_count=min(
                    current.register_count, len(remaining)
                ),
                horizon=current.horizon,
                energy_model=current.energy_model,
                memory=current.memory,
                graph_style=current.graph_style,
                split_at_reads=current.split_at_reads,
                allow_unused_registers=current.allow_unused_registers,
                forced_segments=frozenset(
                    key
                    for key in current.forced_segments
                    if key[0] in remaining
                ),
                storage=current.storage,
            )
            if _still_fails(candidate, use_lp):
                current = candidate
                shrunk = True
        if current.register_count > 0:
            candidate = current.with_options(
                register_count=current.register_count - 1
            )
            if _still_fails(candidate, use_lp):
                current = candidate
                shrunk = True
        if current.storage is not None:
            # Strongest storage shrink first: drop the hierarchy whole
            # (memory keeps the reference operating point); otherwise
            # try shedding one bank at a time.
            candidate = current.with_options(storage=None)
            if _still_fails(candidate, use_lp):
                current = candidate
                shrunk = True
            elif len(current.storage.banks) > 1:
                smaller = current.storage.with_levels(
                    levels=current.storage.levels[:-1]
                )
                candidate = current.with_options(storage=smaller)
                if _still_fails(candidate, use_lp):
                    current = candidate
                    shrunk = True
        tail = max(
            (l.end for l in current.lifetimes.values()), default=0
        )
        if tail < current.horizon:
            candidate = current.with_options(horizon=tail)
            if _still_fails(candidate, use_lp):
                current = candidate
                shrunk = True
        if not shrunk:
            break
    return current


def run_fuzz(
    seed: int,
    iters: int,
    use_lp: bool | None = None,
    shrink: bool = True,
    family: str = "classic",
) -> dict[str, Any]:
    """Run *iters* fuzz cases from *seed*; return the fuzz report.

    Args:
        seed: Master seed; every case derives its own stable sub-seed.
        iters: Number of cases to run.
        use_lp: Force the LP cross-check on/off (``None`` = autodetect).
        shrink: Greedily minimise failing instances before reporting.
        family: ``"classic"`` (two-level draws, :func:`draw_case`),
            ``"banked"`` (multi-bank draws, :func:`draw_bank_case`) or
            ``"dag"`` (whole task-graph runs through the
            :mod:`repro.dag` pipeline, checked by the report
            reconciliation oracle; no shrinking — the reproducer is the
            ``(workload, seed, cores, registers)`` tuple itself).

    Returns:
        A ``repro.verify/fuzz-report/v1`` dict: coverage counters,
        per-status totals and one entry per failure with the (minimised)
        reproducer instance inline.
    """
    if family == "dag":
        return _run_dag_fuzz(seed, iters)
    if family not in ("classic", "banked"):
        raise ValueError(f"unknown fuzz family {family!r}")
    draw = draw_bank_case if family == "banked" else draw_case
    plan_rng = spawn_rng(seed, "fuzz-plan")
    statuses = {"ok": 0, "infeasible": 0, "violation": 0}
    coverage: dict[str, dict[str, int]] = {
        "divisor": {},
        "degenerate": {},
        "register_count": {},
    }
    if family == "banked":
        coverage.update(
            {"bank_count": {}, "bank_period": {}, "bank_ports": {}}
        )
    failures: list[dict[str, Any]] = []
    for index in range(iters):
        case = draw(plan_rng, index)
        result = run_case(seed, case, use_lp=use_lp)
        statuses[result.status] += 1
        axes = [
            ("divisor", case.divisor),
            ("degenerate", case.degenerate or "none"),
            ("register_count", case.register_count),
        ]
        if family == "banked":
            axes += [
                ("bank_count", case.bank_count),
                ("bank_period", case.bank_period),
                ("bank_ports", case.bank_ports),
            ]
        for axis, value in axes:
            bucket = coverage[axis]
            bucket[str(value)] = bucket.get(str(value), 0) + 1
        if result.status != "violation":
            continue
        entry: dict[str, Any] = {
            "case": case.to_dict(),
            "seed": seed,
            "violations": [
                {"oracle": v.oracle, "message": v.message}
                for v in result.violations
            ],
        }
        if result.problem is not None:
            reproducer = (
                shrink_case(result.problem, use_lp=use_lp)
                if shrink
                else result.problem
            )
            entry["minimized"] = problem_to_dict(reproducer)
            entry["minimized_size"] = {
                "variables": len(reproducer.lifetimes),
                "register_count": reproducer.register_count,
                "horizon": reproducer.horizon,
            }
        failures.append(entry)
    return {
        "schema": SCHEMA,
        "seed": seed,
        "family": family,
        "iterations": iters,
        "statuses": statuses,
        "coverage": coverage,
        "failures": failures,
    }


def _run_dag_fuzz(seed: int, iters: int) -> dict[str, Any]:
    """The ``dag`` fuzz family: end-to-end task-graph pipeline runs.

    Each case draws a registered DAG workload (fresh block seed), a core
    count, a register-file size and a deadline slack, runs the full
    partition → DVFS sweep → batch dispatch → report pipeline with
    certificates on every solve, and checks the result with
    :func:`repro.verify.oracles.oracle_dag_reconciliation`.  Cases are
    tiny (the reproducer is the drawn parameter tuple), so there is no
    shrinking stage.
    """
    # Local import: repro.dag pulls in the batch service, which imports
    # back into repro.verify for certificates — a module-level import
    # here would cycle.
    from repro.dag import (
        build_dag_report,
        build_jobs,
        default_ladder,
        dispatch_blocks,
        partition_graph,
        plan_handoffs,
        sweep_operating_points,
    )
    from repro.exceptions import DagError
    from repro.verify.oracles import OracleViolation, oracle_dag_reconciliation
    from repro.workloads.registry import DAG_NAMES, dag_workload

    plan_rng = spawn_rng(seed, "fuzz-dag")
    ladder = default_ladder((1.0, 2.0, 4.0))
    statuses = {"ok": 0, "infeasible": 0, "violation": 0}
    coverage: dict[str, dict[str, int]] = {
        "workload": {},
        "cores": {},
        "register_count": {},
    }
    failures: list[dict[str, Any]] = []
    for index in range(iters):
        case = {
            "workload": plan_rng.choice(DAG_NAMES),
            "graph_seed": plan_rng.randrange(1 << 16),
            "cores": plan_rng.randint(1, 3),
            "registers": plan_rng.randint(2, 6),
            "slack": plan_rng.choice((1.0, 1.5, 2.5, 4.0)),
        }
        for axis in ("workload", "cores", "register_count"):
            value = case["registers" if axis == "register_count" else axis]
            coverage[axis][str(value)] = coverage[axis].get(str(value), 0) + 1
        try:
            graph = dag_workload(case["workload"], seed=case["graph_seed"])
            plan = partition_graph(
                graph, cores=case["cores"], slack=case["slack"]
            )
            handoffs = plan_handoffs(plan)
            selection = sweep_operating_points(
                plan,
                register_count=case["registers"],
                ladder=ladder,
                handoff_energy=sum(h.energy for h in handoffs),
            )
            jobs = build_jobs(
                plan, selection, register_count=case["registers"]
            )
            results = dispatch_blocks(jobs, certify_fraction=1.0)
            report = build_dag_report(
                plan,
                selection,
                handoffs,
                results,
                register_count=case["registers"],
            )
            oracle_dag_reconciliation(report, require_certified=True)
        except (InfeasibleFlowError, DagError):
            statuses["infeasible"] += 1
        except OracleViolation as exc:
            statuses["violation"] += 1
            failures.append(
                {
                    "case": case,
                    "seed": seed,
                    "violations": [
                        {"oracle": exc.oracle, "message": str(exc)}
                    ],
                }
            )
        else:
            statuses["ok"] += 1
    return {
        "schema": SCHEMA,
        "seed": seed,
        "family": "dag",
        "iterations": iters,
        "statuses": statuses,
        "coverage": coverage,
        "failures": failures,
    }


def render_report(report: dict[str, Any], indent: int = 2) -> str:
    """Serialise a fuzz report with the shared obs JSON conventions."""
    return json.dumps(report, indent=indent, sort_keys=True) + "\n"
