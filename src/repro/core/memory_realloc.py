"""Second-pass memory reallocation (paper section 5, methodology).

After the main allocation, "the lifetimes of data variables assigned to
memory are then used to form another network flow graph.  The minimum cost
network flow is then solved on this graph to reallocate memory using an
activity based energy model."

Memory-location switching matters because consecutive values sharing a
location exercise the same data lines (and keeping locations few keeps
address lines quiet, section 7).  This pass re-bins the memory-resident
intervals into ``D_mem`` locations (their density — the minimum) while
minimising the total inter-variable switching within each location.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import Allocation, memory_intervals
from repro.core.chain_flow import ChainAssignment, optimal_interval_chains
from repro.energy.models import ActivityEnergyModel, EnergyModel
from repro.lifetimes.intervals import Lifetime

__all__ = ["MemoryLayout", "reallocate_memory"]


@dataclass
class MemoryLayout:
    """Activity-optimised memory address assignment.

    Attributes:
        addresses: Variable name → memory address.
        switching_energy: Total estimated switching energy of the data
            lines under this layout (the second-pass flow objective).
        assignment: The underlying chain assignment (one chain per
            address).
    """

    addresses: dict[str, int]
    switching_energy: float
    assignment: ChainAssignment

    @property
    def address_count(self) -> int:
        return len(self.assignment.chains)


def reallocate_memory(
    allocation: Allocation,
    model: EnergyModel | None = None,
    names: set[str] | None = None,
) -> MemoryLayout:
    """Re-bin the memory-resident variables to minimise switching.

    Args:
        allocation: A solved allocation whose memory variables to lay out.
        model: Activity model used for the location-switching cost;
            defaults to an :class:`ActivityEnergyModel` at the problem's
            memory voltage.  Its ``reg_write`` hook supplies the
            value-replacement energy (here: the memory data lines).
        names: Restrict the layout to these variables (the banking pass
            lays out each bank's residents independently); ``None`` lays
            out every memory-resident variable.

    Returns:
        The optimal :class:`MemoryLayout`.  Uses exactly the minimum number
        of addresses (the density of the memory intervals).
    """
    problem = allocation.problem
    if model is None:
        model = ActivityEnergyModel(
            mem_voltage=problem.memory.voltage,
            reg_voltage=problem.memory.voltage,
        )
    intervals = memory_intervals(problem, allocation.residency)
    if names is not None:
        intervals = {
            name: window
            for name, window in intervals.items()
            if name in names
        }
    lifetimes = [
        Lifetime(
            variable=problem.lifetimes[name].variable,
            write_time=start,
            read_times=(end,),
            live_out=problem.lifetimes[name].live_out,
        )
        for name, (start, end) in intervals.items()
    ]

    def pair_cost(prev: Lifetime | None, nxt: Lifetime) -> float:
        return model.reg_write(
            nxt.variable, prev.variable if prev is not None else None
        )

    assignment = optimal_interval_chains(
        lifetimes,
        horizon=problem.horizon,
        pair_cost=pair_cost,
        chain_count=None,  # minimum number of addresses
        style="adjacent",
        force_all=True,
    )
    addresses = {
        interval.name: index
        for index, chain in enumerate(assignment.chains)
        for interval in chain
    }
    return MemoryLayout(
        addresses=addresses,
        switching_energy=assignment.total_cost,
        assignment=assignment,
    )
