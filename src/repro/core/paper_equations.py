"""Literal arc-cost equations (3)-(10) of the paper, for auditability.

The production cost assignment (:mod:`repro.core.costs`) uses an equivalent
*uniform* decomposition that attaches read credits to segment arcs instead
of handoff arcs.  This module implements the paper's equations verbatim so
tests can verify, case by case, that the uniform costs reproduce them:

for any handoff arc, ``paper equation == handoff_cost + segment read
credits shifted off the incident segment arcs``.

Known discrepancy, documented here and in DESIGN.md: equation (7)
(``e_{ri(v1) -> wj(v2)}`` with a non-last read of ``v1`` and a non-first
segment of ``v2``) omits the ``- E_r^m(v1)`` credit that every other exit
from a register-served read carries (eqs. 6, 8, 9, 10).  Under the paper's
own accounting a read served from the register file always saves the
corresponding memory read, so the reproduction treats the omission as a
typo and includes the credit; :func:`eq7_literal` preserves the printed
form for comparison.
"""

from __future__ import annotations

from repro.energy.models import EnergyModel
from repro.ir.values import DataVariable

__all__ = [
    "eq3_segment",
    "eq4_handoff",
    "eq5_handoff_activity",
    "eq6_spill_into_first",
    "eq7_literal",
    "eq7_consistent",
    "eq8_last_into_mid",
    "eq9_intra",
    "eq10_last_into_first",
]


def eq3_segment() -> float:
    """Eq. (3): the lifetime arc ``w(v) -> r(v)`` costs nothing."""
    return 0.0


def eq4_handoff(
    model: EnergyModel, v1: DataVariable, v2: DataVariable
) -> float:
    """Eq. (4): ``-E_w^m(v2) - E_r^m(v1) + E_w^r(v2) + E_r^r(v1)``.

    General static-model handoff from the (only) read of ``v1`` into the
    write of ``v2``.
    """
    return (
        -model.mem_write(v2)
        - model.mem_read(v1)
        + model.reg_write(v2, v1)
        + model.reg_read(v1)
    )


def eq5_handoff_activity(
    model: EnergyModel, v1: DataVariable, v2: DataVariable
) -> float:
    """Eq. (5): the activity form ``-E_w^m(v2) - E_r^m(v1) + H(v1,v2)C_rw^r``.

    Identical to eq. (4) once ``reg_write`` is activity based and
    ``reg_read`` is free, which is exactly how
    :class:`~repro.energy.models.ActivityEnergyModel` behaves — so this
    delegates to :func:`eq4_handoff`.
    """
    return eq4_handoff(model, v1, v2)


def eq6_spill_into_first(
    model: EnergyModel, v1: DataVariable, v2: DataVariable
) -> float:
    """Eq. (6): non-last read of ``v1`` into the first segment of ``v2``.

    ``-E_r^m(v1) - E_w^m(v2) + E_w^m(v1) + H(v1,v2)C_rw^r`` — ``v1`` is
    spilled back to memory while ``v2`` takes its register.
    """
    return (
        -model.mem_read(v1)
        - model.mem_write(v2)
        + model.mem_write(v1)
        + model.reg_write(v2, v1)
        + model.reg_read(v1)
    )


def eq7_literal(
    model: EnergyModel, v1: DataVariable, v2: DataVariable
) -> float:
    """Eq. (7) as printed: ``E_w^m(v1) + H(v1,v2)C_rw^r``.

    Non-last read of ``v1`` into a non-first segment of ``v2``.  Note the
    missing ``-E_r^m(v1)`` (see module docstring).
    """
    return model.mem_write(v1) + model.reg_write(v2, v1)


def eq7_consistent(
    model: EnergyModel, v1: DataVariable, v2: DataVariable
) -> float:
    """Eq. (7) with the read credit restored (what the reproduction uses)."""
    return (
        eq7_literal(model, v1, v2)
        - model.mem_read(v1)
        + model.reg_read(v1)
    )


def eq8_last_into_mid(
    model: EnergyModel, v1: DataVariable, v2: DataVariable
) -> float:
    """Eq. (8): last read of ``v1`` into a non-first segment of ``v2``.

    ``-E_r^m(v1) + H(v1,v2)C_rw^r`` — no spill (``v1`` is dead) and no
    memory credit for ``v2`` (its definition write already happened).
    """
    return (
        -model.mem_read(v1)
        + model.reg_write(v2, v1)
        + model.reg_read(v1)
    )


def eq9_intra(model: EnergyModel, v: DataVariable) -> float:
    """Eq. (9): consecutive segments of one variable: ``-E_r^m(v)``.

    Both segments register resident: the interior read is served from the
    register, and the value does not change (``H(v, v) = 0``).
    """
    return -model.mem_read(v) + model.reg_read(v)


def eq10_last_into_first(
    model: EnergyModel, v1: DataVariable, v2: DataVariable
) -> float:
    """Eq. (10): last read of ``v1`` into the first segment of ``v2``.

    ``-E_w^m(v2) - E_r^m(v1) + H(v1,v2)C_rw^r`` — the split-lifetime
    restatement of eq. (4).
    """
    return eq4_handoff(model, v1, v2)
