"""Port-constrained allocation (paper section 7).

"The number of memory or register file ports is determined from the
solution of our network flow problem, however it could be also specified
as a constraint in our problem.  For a fixed number of memory or register
file ports the technique described in section 5.2 which sets certain arc
flows to 1 can be used."

This module implements exactly that: an iterative legalizer that solves
the unconstrained flow, inspects the per-step memory access schedule, and
— wherever a step needs more simultaneous memory accesses than the module
has ports — pins the heaviest contributing variable's segments into the
register file (flow lower bounds of 1, via
:attr:`AllocationProblem.forced_segments`) and re-solves.  Each round
strictly grows the pinned set, so the loop terminates; if the pins ever
exceed the register supply the instance is genuinely infeasible at that
port count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.ports import port_usage, required_ports
from repro.core.allocation import Allocation
from repro.core.options import SolveOptions
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.exceptions import AllocationError, InfeasibleFlowError

__all__ = ["PortConstrainedResult", "allocate_with_port_limit"]


@dataclass
class PortConstrainedResult:
    """Outcome of the port legalization loop.

    Attributes:
        allocation: The final, port-legal allocation.
        pinned: Segment keys forced into the register file by the loop.
        rounds: Solve iterations performed (1 = already legal).
        energy_overhead: Energy of the final solution minus the
            unconstrained optimum (the price of the port limit).
    """

    allocation: Allocation
    pinned: frozenset[tuple[str, int]]
    rounds: int
    energy_overhead: float = field(default=0.0)

    @property
    def mem_ports_used(self) -> int:
        return required_ports(self.allocation).mem_rw_ports


def _contributors(allocation: Allocation, step: int) -> list[str]:
    """Memory variables with accesses at *step*, heaviest first."""
    problem = allocation.problem
    registered = set(allocation.residency)
    counts: dict[str, int] = {}
    for name, segments in problem.segments.items():
        hits = 0
        for seg in segments:
            if seg.key in registered:
                continue
            hits += sum(1 for read in seg.reads if read == step)
        if segments[0].key not in registered:
            lifetime = problem.lifetimes[name]
            access = problem.access_times
            write_step = lifetime.write_time
            if access is not None:
                later = [m for m in access if m >= write_step]
                write_step = min(later) if later else problem.horizon + 1
            if write_step == step:
                hits += 1
        if hits:
            counts[name] = hits
    return sorted(counts, key=lambda name: (-counts[name], name))


def allocate_with_port_limit(
    problem: AllocationProblem,
    max_mem_ports: int,
    max_rounds: int = 64,
    options: SolveOptions | None = None,
) -> PortConstrainedResult:
    """Solve *problem* such that no step needs more than *max_mem_ports*
    simultaneous memory accesses.

    Args:
        problem: The base instance (its existing ``forced_segments`` are
            kept and extended).
        max_mem_ports: Memory port budget (shared read/write ports).
        max_rounds: Safety bound on legalization iterations.
        options: Solve-shaping switches applied to every inner solve
            (see :class:`~repro.core.options.SolveOptions`).

    Returns:
        A :class:`PortConstrainedResult`.

    Raises:
        InfeasibleFlowError: If pinning exceeds the register supply — the
            port budget is unachievable with this register file.
        AllocationError: If the loop fails to converge within
            *max_rounds* (indicates a bug or a degenerate instance).
    """
    if max_mem_ports < 1:
        raise AllocationError(
            f"memory port budget must be >= 1, got {max_mem_ports}"
        )
    options = options or SolveOptions()
    baseline = allocate(problem, options)
    current = baseline
    pinned: set[tuple[str, int]] = set(problem.forced_segments)
    for round_index in range(1, max_rounds + 1):
        usage = port_usage(current)
        offenders = [
            step
            for step in range(1, problem.horizon + 1)
            if usage.mem_accesses_at(step) > max_mem_ports
        ]
        if not offenders:
            return PortConstrainedResult(
                allocation=current,
                pinned=frozenset(pinned - problem.forced_segments),
                rounds=round_index,
                energy_overhead=current.objective - baseline.objective,
            )
        worst = max(offenders, key=usage.mem_accesses_at)
        # Try contributors heaviest-first; a pin can be individually
        # infeasible (a forced segment the graph cannot reach), in which
        # case fall through to the next candidate.
        progressed = False
        for name in _contributors(current, worst):
            keys = [seg.key for seg in problem.segments[name]]
            if set(keys) <= pinned:
                continue
            attempt = pinned | set(keys)
            try:
                current = allocate(
                    problem.with_options(forced_segments=frozenset(attempt)),
                    options,
                )
            except InfeasibleFlowError:
                continue
            pinned = attempt
            progressed = True
            break
        if not progressed:
            raise InfeasibleFlowError(
                f"cannot reduce memory traffic at step {worst} below "
                f"{usage.mem_accesses_at(worst)} accesses with "
                f"{max_mem_ports} ports"
            )
    raise AllocationError(
        f"port legalization did not converge in {max_rounds} rounds"
    )
