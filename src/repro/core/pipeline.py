"""End-to-end allocation pipeline.

The paper's methodology (section 5) runs: schedule the block, extract
lifetimes, solve the simultaneous partition/allocation flow, then solve the
second flow pass that reallocates memory with an activity model.  This
module packages those stages behind two convenience entry points:

* :func:`allocate_block` — from an unscheduled basic block;
* :func:`allocate_schedule` — from an existing schedule (Problem 1's
  actual starting point).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.memory_realloc import MemoryLayout, reallocate_memory
from repro.core.options import UNSET, SolveOptions, resolve_options
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.core.allocation import Allocation
from repro.energy.models import EnergyModel, StaticEnergyModel
from repro.energy.voltage import MemoryConfig
from repro.ir.basic_block import BasicBlock
from repro.obs import trace as obs
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.resources import ResourceSet
from repro.scheduling.schedule import Schedule

__all__ = ["PipelineResult", "allocate_block", "allocate_schedule"]


@dataclass
class PipelineResult:
    """Everything the pipeline produced for one basic block.

    Attributes:
        schedule: The schedule the lifetimes came from.
        problem: The constructed Problem 1 instance.
        allocation: The optimal allocation (first flow pass).
        memory_layout: The activity-optimised memory layout (second flow
            pass); ``None`` when the solution leaves memory empty.
    """

    schedule: Schedule
    problem: AllocationProblem
    allocation: Allocation
    memory_layout: MemoryLayout | None

    @property
    def total_energy(self) -> float:
        """Absolute storage energy of the solution (eq. 1/2 objective),
        including per-bank deltas when a storage hierarchy is in play."""
        return self.allocation.total_energy

    def summary(self) -> str:
        """Compact multi-line report for examples and CLI output."""
        lines = [
            f"block {self.schedule.block.name!r}: "
            f"{len(self.problem.lifetimes)} variables over "
            f"{self.problem.horizon} steps "
            f"(max density {self.problem.max_density})",
            self.allocation.format(),
        ]
        if self.memory_layout is not None and self.memory_layout.addresses:
            lines.append(
                f"memory layout ({self.memory_layout.address_count} "
                f"addresses, switching "
                f"{self.memory_layout.switching_energy:.3f}):"
            )
            for name, address in sorted(self.memory_layout.addresses.items()):
                lines.append(f"  @{address}: {name}")
        return "\n".join(lines)


def allocate_schedule(
    schedule: Schedule,
    register_count: int,
    energy_model: EnergyModel | None = None,
    memory: MemoryConfig | None = None,
    reallocate: bool = True,
    lint: str | None = UNSET,
    certify: bool = UNSET,
    options: SolveOptions | None = None,
    **problem_options,
) -> PipelineResult:
    """Run the allocation pipeline on a scheduled block.

    Args:
        schedule: A validated schedule (Problem 1's given input).
        register_count: Register file size ``R``.
        energy_model: Defaults to the static model at nominal voltage.
        memory: Memory operating point; defaults to full-speed memory.
        reallocate: Run the second (memory reallocation) flow pass.
        lint: Deprecated — use ``options.lint``.  The gate runs here
            rather than in the solver so the RA1xx schedule rules see
            the schedule.
        certify: Deprecated — use ``options.certify``.
        options: Solve-shaping switches (see
            :class:`~repro.core.options.SolveOptions`); ``options.storage``
            attaches a storage hierarchy to the constructed problem.
        **problem_options: Forwarded to :class:`AllocationProblem`
            (``graph_style``, ``split_at_reads``,
            ``allow_unused_registers``, ``storage``).

    Returns:
        The :class:`PipelineResult`.

    Raises:
        LintGateError: If the lint gate is armed and the static analysis
            finds defects at or above the requested severity.
    """
    options = resolve_options(
        options, {"lint": lint, "certify": certify}
    )
    if options.storage is not None and "storage" not in problem_options:
        problem_options["storage"] = options.storage
    with obs.span("pipeline.build_problem"):
        problem = AllocationProblem.from_schedule(
            schedule,
            register_count=register_count,
            energy_model=energy_model or StaticEnergyModel(),
            memory=memory or MemoryConfig(),
            **problem_options,
        )
    if options.lint is not None:
        from repro.lint import gate_problem

        gate_problem(problem, schedule=schedule, fail_on=options.lint)
    with obs.span("pipeline.allocate"):
        # The gate already ran with schedule context; don't re-arm it.
        allocation = allocate(problem, options.replace(lint=None))
    layout = None
    if reallocate and allocation.memory_addresses:
        with obs.span("pipeline.reallocate"):
            layout = reallocate_memory(allocation)
    return PipelineResult(schedule, problem, allocation, layout)


def allocate_block(
    block: BasicBlock,
    register_count: int,
    resources: ResourceSet | None = None,
    energy_model: EnergyModel | None = None,
    memory: MemoryConfig | None = None,
    reallocate: bool = True,
    lint: str | None = UNSET,
    certify: bool = UNSET,
    options: SolveOptions | None = None,
    **problem_options,
) -> PipelineResult:
    """Schedule *block* (list scheduling) and run the allocation pipeline.

    ``lint``/``certify`` are deprecated shims for the corresponding
    :class:`~repro.core.options.SolveOptions` fields."""
    with obs.span("pipeline.schedule"):
        schedule = list_schedule(block, resources)
    return allocate_schedule(
        schedule,
        register_count=register_count,
        energy_model=energy_model,
        memory=memory,
        reallocate=reallocate,
        lint=lint,
        certify=certify,
        options=options,
        **problem_options,
    )
