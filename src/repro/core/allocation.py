"""Allocation results: flow decomposition, residency, addresses, metrics.

Turns a solved flow into the artefacts a downstream code generator needs:

* *register chains* — each unit of flow decomposes into one ``s -> t`` path,
  i.e. the time-ordered sequence of variable segments sharing one physical
  register;
* a residency map (segment → register index, or memory);
* memory address assignment (left-edge over memory-resident intervals, so
  the address count equals the memory lifetime density — the minimum);
* an :class:`~repro.energy.report.EnergyReport` recomputed independently
  from the extracted allocation, which the tests check against the flow
  objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.network_builder import BuiltNetwork
from repro.core.problem import AllocationProblem
from repro.energy.report import EnergyReport
from repro.exceptions import AllocationError, GraphError
from repro.flow.decompose import decompose_into_paths
from repro.flow.graph import FlowResult
from repro.lifetimes.intervals import Segment

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.core.banking import BankAssignment

__all__ = [
    "Allocation",
    "AllocationResult",
    "decompose_chains",
    "compute_report",
    "assign_addresses",
    "memory_intervals",
]


@dataclass
class Allocation:
    """A complete solution of Problem 1.

    Attributes:
        problem: The solved instance.
        flow: The optimal flow.
        chains: Register chains — ``chains[i]`` is the time-ordered list of
            segments register ``i`` holds.
        residency: Segment key → register index (segments absent from the
            map are memory resident).
        memory_addresses: Variable name → memory address for every variable
            with memory residency.
        report: Independent energy/access accounting of the solution.
        objective: Absolute storage energy — the flow cost plus the
            constant term the paper drops during optimisation.  With a
            multi-bank hierarchy this is the energy at the *reference*
            bank's operating point; see :attr:`total_energy`.
        unused_registers: Flow units routed through the bypass (registers
            the optimum leaves empty).
        banking: Bank placement of the memory-resident variables when the
            instance carries a multi-level
            :class:`~repro.core.storage.StorageSpec` (``None`` for the
            classic two-level model).
    """

    problem: AllocationProblem
    flow: FlowResult
    chains: list[list[Segment]]
    residency: dict[tuple[str, int], int]
    memory_addresses: dict[str, int]
    report: EnergyReport
    objective: float
    unused_registers: int = 0
    banking: "BankAssignment | None" = None

    @property
    def total_energy(self) -> float:
        """Absolute energy including per-bank deltas.

        Equals :attr:`objective` for two-level instances and for
        hierarchies whose banks all sit at the reference operating
        point."""
        if self.banking is None:
            return self.objective
        return self.objective + self.banking.delta_energy

    @property
    def address_count(self) -> int:
        """Number of distinct memory addresses used."""
        if not self.memory_addresses:
            return 0
        return max(self.memory_addresses.values()) + 1

    @property
    def registers_used(self) -> int:
        """Registers actually holding values (non-bypass chains)."""
        return len(self.chains)

    @property
    def storage_locations(self) -> int:
        """Registers used + memory addresses used (figure 4 metric)."""
        return self.registers_used + self.address_count

    def register_of(self, name: str, index: int = 0) -> int | None:
        """Register holding segment *index* of variable *name*, if any."""
        return self.residency.get((name, index))

    def in_register(self, name: str) -> bool:
        """True if *every* segment of the variable is register resident."""
        segments = self.problem.segments[name]
        return all(seg.key in self.residency for seg in segments)

    def register_variables(self) -> list[str]:
        """Variables fully register resident, in definition order."""
        return [
            name for name in self.problem.lifetimes if self.in_register(name)
        ]

    def memory_variables(self) -> list[str]:
        """Variables with at least one memory-resident segment."""
        return sorted(self.memory_addresses)

    def format(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"registers used : {self.registers_used} of "
            f"{self.problem.register_count}",
            f"memory address : {self.address_count}",
            f"objective      : {self.objective:.3f}",
        ]
        for reg, chain in enumerate(self.chains):
            steps = " -> ".join(
                f"{seg.name}[{seg.start},{seg.end}]" for seg in chain
            )
            lines.append(f"  R{reg}: {steps}")
        for name, address in sorted(self.memory_addresses.items()):
            lines.append(f"  M{address}: {name}")
        lines.append(self.report.format())
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()


#: Public alias of :class:`Allocation` — the stable name the package-level
#: API (``repro.allocate``) documents as its return type.
AllocationResult = Allocation


def decompose_chains(
    built: BuiltNetwork, flow: FlowResult
) -> tuple[list[list[Segment]], int]:
    """Split the flow into register chains plus the bypass unit count.

    Every flow unit follows a simple ``s -> t`` path (the network is acyclic
    and interior arcs have capacity 1); the segments visited along one path
    are the variables one register holds over time.
    """
    try:
        paths = decompose_into_paths(flow, built.source, built.sink)
    except GraphError as exc:
        raise AllocationError(f"invalid allocation flow: {exc}") from exc
    chains: list[list[Segment]] = []
    bypass_units = 0
    for path in paths:
        chain = [
            arc.data[1]
            for arc in path
            if arc.data and arc.data[0] == "segment"
        ]
        if chain:
            chains.append(chain)
        else:
            bypass_units += 1
    return chains, bypass_units


def compute_report(
    problem: AllocationProblem, chains: list[list[Segment]]
) -> EnergyReport:
    """Recompute access counts and energy from the extracted chains.

    This is an accounting of the *allocation*, not of the flow objective;
    equality of the two (up to the constant term) is a correctness
    invariant the test suite enforces.
    """
    model = problem.energy_model
    report = EnergyReport()
    registered = {seg.key for chain in chains for seg in chain}

    for name, segments in problem.segments.items():
        variable = problem.lifetimes[name].variable
        if segments[0].key not in registered:
            report.add_mem_write(model.mem_write(variable))
        for seg in segments:
            if not seg.read_count:
                continue
            if seg.key in registered:
                report.add_reg_read(
                    seg.read_count * model.reg_read(variable), seg.read_count
                )
            else:
                report.add_mem_read(
                    seg.read_count * model.mem_read(variable), seg.read_count
                )

    for chain in chains:
        prev_variable = None
        for position, seg in enumerate(chain):
            previous = chain[position - 1] if position else None
            intra = (
                previous is not None
                and previous.name == seg.name
                and previous.index + 1 == seg.index
            )
            if not intra:
                report.add_reg_write(
                    model.reg_write(seg.variable, prev_variable)
                )
                if not seg.is_first and seg.starts_at_access_cut:
                    report.add_mem_read(model.mem_read(seg.variable))
            prev_variable = seg.variable
            is_exit_to_other = (
                position + 1 == len(chain)
                or chain[position + 1].name != seg.name
                or chain[position + 1].index != seg.index + 1
            )
            if is_exit_to_other and not seg.is_last:
                report.add_mem_write(model.mem_write(seg.variable))
    return report


def memory_intervals(
    problem: AllocationProblem,
    residency: dict[tuple[str, int], int],
) -> dict[str, tuple[int, int]]:
    """Memory occupancy window (hull) per memory-resident variable."""
    intervals: dict[str, tuple[int, int]] = {}
    for name, segments in problem.segments.items():
        outside = [seg for seg in segments if seg.key not in residency]
        if outside:
            intervals[name] = (
                min(seg.start for seg in outside),
                max(seg.end for seg in outside),
            )
    return intervals


def assign_addresses(
    intervals: dict[str, tuple[int, int]],
) -> dict[str, int]:
    """Left-edge address assignment over memory intervals.

    Occupancy windows are open (the shared ``(start, end)`` convention), so
    an address freed by a read at step ``k`` is rewritable at step ``k``.
    Uses the minimum possible number of addresses (the interval-graph
    colouring optimum).
    """
    order = sorted(intervals.items(), key=lambda item: (item[1], item[0]))
    address_free_at: list[int] = []  # address -> end of last interval
    out: dict[str, int] = {}
    for name, (start, end) in order:
        for address, free_at in enumerate(address_free_at):
            if free_at <= start:
                address_free_at[address] = end
                out[name] = address
                break
        else:
            out[name] = len(address_free_at)
            address_free_at.append(end)
    return out
