"""Network flow graph construction (paper section 5.1 / 5.2).

Builds the minimum-cost flow network from the split lifetimes of an
:class:`~repro.core.problem.AllocationProblem`:

* one ``w_i(v) -> r_i(v)`` arc per segment (capacity 1; lower bound 1 when
  the segment is forced register-resident);
* intra-variable arcs ``r_i(v) -> w_{i+1}(v)`` between consecutive
  segments;
* handoff arcs between segments of different variables, from the source
  ``s`` (a pseudo-read at time 0), and to the sink ``t`` (a pseudo-write at
  time ``x + 1``).

Two handoff rules are provided.  The paper's rule (``"adjacent"``) allows a
register to idle between a read at step ``b`` and a write at step ``a``
only when no *maximum-density* half-point lies in the idle window
``(b, a)``; on figure 1 this reduces exactly to "complete bipartite graphs
between adjacent regions of maximum lifetime density" and it keeps every
register busy across density peaks, which is what bounds the number of
memory locations.  The prior-art rule (``"all_pairs"``, Chang-Pedram [8])
connects every time-compatible pair.

Implementation note: the idle-window test compresses to an *era* index —
``era(k)`` counts the maximum-density half-points before step ``k``; a
handoff is adjacent-legal iff its endpoints share an era.  Events are
bucketed by era, so construction is linear in the number of legal arcs.

Restricted memory access times add two legality constraints (section 5.2
semantics): a value leaving the register file mid-lifetime must spill at a
memory access step, so handoffs *out of a non-final segment* require the
segment to end on an access step; the matching reload cost for entering at
an access cut is handled by :mod:`repro.core.costs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.costs import handoff_cost, intra_cost, segment_cost
from repro.core.problem import AllocationProblem
from repro.exceptions import GraphError
from repro.flow.graph import Arc, FlowNetwork
from repro.lifetimes.intervals import Segment
from repro.obs import trace as obs

__all__ = ["SOURCE", "SINK", "BuiltNetwork", "build_network"]

SOURCE: Hashable = "s"
SINK: Hashable = "t"


def _write_node(segment: Segment) -> tuple[str, str, int]:
    return ("w", segment.name, segment.index)


def _read_node(segment: Segment) -> tuple[str, str, int]:
    return ("r", segment.name, segment.index)


@dataclass
class BuiltNetwork:
    """The flow network of one allocation instance plus its bookkeeping.

    Attributes:
        problem: The instance the network encodes.
        network: The flow network (arc ``data`` fields describe arc roles:
            ``("segment", seg)``, ``("intra", a, b)``,
            ``("handoff", src|None, dst|None)`` with ``None`` meaning
            ``s``/``t``, and ``("bypass",)``).
        source / sink: Flow terminals.
        segment_arcs: Segment key → its ``w -> r`` arc.
    """

    problem: AllocationProblem
    network: FlowNetwork
    source: Hashable
    sink: Hashable
    segment_arcs: dict[tuple[str, int], Arc]

    @property
    def flow_value(self) -> int:
        """The fixed flow: the register count ``R``."""
        return self.problem.register_count


def build_network(problem: AllocationProblem) -> BuiltNetwork:
    """Construct the flow network for *problem*."""
    model = problem.energy_model
    network = FlowNetwork()
    network.add_node(SOURCE)
    network.add_node(SINK)

    segments = [seg for segs in problem.segments.values() for seg in segs]
    known_keys = {seg.key for seg in segments}
    unknown = problem.forced_segments - known_keys
    if unknown:
        raise GraphError(
            f"forced_segments reference unknown segments: {sorted(unknown)}"
        )
    segment_arcs: dict[tuple[str, int], Arc] = {}
    for seg in segments:
        arc = network.add_arc(
            _write_node(seg),
            _read_node(seg),
            capacity=1,
            lower=1 if problem.is_forced(seg) else 0,
            cost=segment_cost(model, seg),
            data=("segment", seg),
        )
        segment_arcs[seg.key] = arc

    # Intra-variable arcs between consecutive segments.
    for segs in problem.segments.values():
        for earlier, later in zip(segs, segs[1:]):
            network.add_arc(
                _read_node(earlier),
                _write_node(later),
                capacity=1,
                cost=intra_cost(model, earlier, later),
                data=("intra", earlier, later),
            )

    _add_handoffs(problem, network, segments)

    if problem.allow_unused_registers and problem.register_count > 0:
        network.add_arc(
            SOURCE,
            SINK,
            capacity=problem.register_count,
            cost=0.0,
            data=("bypass",),
        )
    obs.count("network.builds")
    obs.count("network.nodes_built", network.num_nodes)
    obs.count("network.arcs_built", network.num_arcs)
    if obs.enabled():
        obs.gauge("network.density_regions", len(problem.density_regions))
    return BuiltNetwork(problem, network, SOURCE, SINK, segment_arcs)


def _add_handoffs(
    problem: AllocationProblem,
    network: FlowNetwork,
    segments: list[Segment],
) -> None:
    """Add source/handoff/sink arcs under the problem's graph style."""
    model = problem.energy_model
    access = problem.access_times
    end_time = problem.horizon + 1

    def spill_legal(seg: Segment) -> bool:
        # Leaving the register file before the variable's last read
        # requires a write-back, only possible at a memory access step.
        if seg.is_last:
            return True
        return access is None or seg.end in access

    adjacent = problem.graph_style == "adjacent"
    if adjacent:
        era = _era_index(problem)
        # Bucket candidate targets by era so only same-era pairs are tried.
        targets: dict[int, list[Segment]] = {}
        for seg in segments:
            targets.setdefault(era[seg.start], []).append(seg)

        def candidates(read_time: int) -> list[Segment]:
            return targets.get(era[read_time], [])

        def compatible(read_time: int, write_time: int) -> bool:
            return read_time <= write_time and era[read_time] == era[write_time]
    else:

        def candidates(read_time: int) -> list[Segment]:
            return segments

        def compatible(read_time: int, write_time: int) -> bool:
            return read_time <= write_time

    for dst in candidates(0):
        if compatible(0, dst.start):
            network.add_arc(
                SOURCE,
                _write_node(dst),
                capacity=1,
                cost=handoff_cost(model, None, dst),
                data=("handoff", None, dst),
            )
    for src in segments:
        if not spill_legal(src):
            continue
        if compatible(src.end, end_time):
            network.add_arc(
                _read_node(src),
                SINK,
                capacity=1,
                cost=handoff_cost(model, src, None),
                data=("handoff", src, None),
            )
        for dst in candidates(src.end):
            if dst.name == src.name:
                continue  # same-variable moves use the intra arcs
            if src.end <= dst.start:
                network.add_arc(
                    _read_node(src),
                    _write_node(dst),
                    capacity=1,
                    cost=handoff_cost(model, src, dst),
                    data=("handoff", src, dst),
                )


def _era_index(problem: AllocationProblem) -> list[int]:
    """``era[k]`` = number of maximum-density half-points before step ``k``.

    A register may idle from a read at step ``b`` to a write at step ``a``
    iff no maximum-density half-point lies in ``[b + 0.5, a - 0.5]``, i.e.
    iff ``era[b] == era[a]``.  Indexed for ``k = 0 .. horizon + 1``.
    """
    density = problem.density
    peak = problem.max_density
    era = [0] * (problem.horizon + 2)
    count = 0
    for k in range(problem.horizon + 1):
        era[k] = count
        if peak > 0 and density[k] == peak:
            count += 1
    era[problem.horizon + 1] = count
    return era
