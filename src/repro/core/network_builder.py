"""Network flow graph construction (paper section 5.1 / 5.2), vectorized.

Builds the minimum-cost flow network from the split lifetimes of an
:class:`~repro.core.problem.AllocationProblem`:

* one ``w_i(v) -> r_i(v)`` arc per segment (capacity 1; lower bound 1 when
  the segment is forced register-resident);
* intra-variable arcs ``r_i(v) -> w_{i+1}(v)`` between consecutive
  segments;
* handoff arcs between segments of different variables, from the source
  ``s`` (a pseudo-read at time 0), and to the sink ``t`` (a pseudo-write at
  time ``x + 1``).

Two handoff rules are provided.  The paper's rule (``"adjacent"``) allows a
register to idle between a read at step ``b`` and a write at step ``a``
only when no *maximum-density* half-point lies in the idle window
``(b, a)``; on figure 1 this reduces exactly to "complete bipartite graphs
between adjacent regions of maximum lifetime density" and it keeps every
register busy across density peaks, which is what bounds the number of
memory locations.  The prior-art rule (``"all_pairs"``, Chang-Pedram [8])
connects every time-compatible pair.

Implementation note: the idle-window test compresses to an *era* index —
``era(k)`` counts the maximum-density half-points before step ``k``; a
handoff is adjacent-legal iff its endpoints share an era.  Events are
bucketed by era, so construction is linear in the number of legal arcs.

Restricted memory access times add two legality constraints (section 5.2
semantics): a value leaving the register file mid-lifetime must spill at a
memory access step, so handoffs *out of a non-final segment* require the
segment to end on an access step; the matching reload cost for entering at
an access cut is handled by :mod:`repro.core.costs`.

Array invariants (see DESIGN.md, "Performance model")
-----------------------------------------------------

Construction is array-first: segments are flattened once into parallel
numpy columns (``starts``, ``ends``, variable ids, spill legality, era
indices), arc endpoints are *computed* as dense node indices and appended
in bulk via :meth:`~repro.flow.graph.FlowNetwork.add_arcs_indexed`.  The
node numbering is fixed by registration order::

    s = 0,  t = 1,  w_i = 2 + 2*i,  r_i = 3 + 2*i

for flattened segment position ``i``, and the arc order is exactly the
historical per-object emission order (segment arcs, intra arcs, ``s``
arcs, then per source segment its sink arc followed by its handoffs in
segment order, bypass last) — golden allocations, lint walks and paper
example tests observe identical networks.  Handoff pairs are enumerated
per era bucket with 2-D broadcast masks and merged into the legacy
interleaving by a single ``lexsort``; for separable energy models the arc
costs come from :func:`repro.core.costs.separable_cost_terms` vector
tables (per-pair Python calls remain as fallback for pair-coupled
models).  :class:`ArcRoles` records which flattened segment produced
every arc so :func:`recost_network` can rewrite the cost column of an
existing network in O(arcs) array work — the warm-start sweep path —
without re-deriving any topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.core.costs import (
    handoff_cost,
    intra_cost,
    segment_cost,
    separable_cost_terms,
)
from repro.core.problem import AllocationProblem
from repro.core.storage import BankStructure, bank_structures
from repro.exceptions import GraphError
from repro.flow.graph import Arc, FlowNetwork
from repro.lifetimes.intervals import Segment
from repro.obs import trace as obs

__all__ = [
    "SOURCE",
    "SINK",
    "ArcRoles",
    "BuiltNetwork",
    "build_network",
    "recost_network",
]

SOURCE: Hashable = "s"
SINK: Hashable = "t"


def _write_node(segment: Segment) -> tuple[str, str, int]:
    return ("w", segment.name, segment.index)


def _read_node(segment: Segment) -> tuple[str, str, int]:
    return ("r", segment.name, segment.index)


@dataclass(frozen=True)
class ArcRoles:
    """Arc-id bookkeeping produced by :func:`build_network`.

    Records, in arc-id order, which flattened segment positions each arc
    connects, so the cost column can be recomputed wholesale without
    walking arc payloads:

    Attributes:
        num_segments: Count ``k`` of flattened segments; segment arcs are
            exactly arc ids ``[0, k)``, position-aligned.
        intra_pairs: ``int64[p]`` — earlier-segment position of each intra
            arc (the later segment is always position ``+1``); intra arcs
            are arc ids ``[k, k + p)``.
        handoff_src: ``int64[h]`` — source segment position per handoff
            arc, ``-1`` for arcs leaving the flow source ``s``.
        handoff_dst: ``int64[h]`` — target segment position per handoff
            arc, ``-1`` for arcs entering the sink ``t``; handoff arcs are
            arc ids ``[k + p, k + p + h)``.
        bypass_arc: Arc id of the ``s -> t`` bypass, or ``-1`` if absent.
    """

    num_segments: int
    intra_pairs: np.ndarray
    handoff_src: np.ndarray
    handoff_dst: np.ndarray
    bypass_arc: int


@dataclass
class BuiltNetwork:
    """The flow network of one allocation instance plus its bookkeeping.

    Attributes:
        problem: The instance the network encodes.
        network: The flow network (arc ``data`` fields describe arc roles:
            ``("segment", seg)``, ``("intra", a, b)``,
            ``("handoff", src|None, dst|None)`` with ``None`` meaning
            ``s``/``t``, and ``("bypass",)``).
        source / sink: Flow terminals.
        segment_arcs: Segment key → its ``w -> r`` arc.
        roles: Arc-id role arrays used by :func:`recost_network`.
        banks: Per-bank era chains when the instance carries a
            multi-bank :class:`~repro.core.storage.StorageSpec` — the
            parallel per-level handoff structure (one era-chain per
            bank, per-bank time-slot boundaries) consumed by the banking
            pass, the multi-bank lint rules and the verification
            oracles.  ``None`` for classic two-level instances.
    """

    problem: AllocationProblem
    network: FlowNetwork
    source: Hashable
    sink: Hashable
    segment_arcs: dict[tuple[str, int], Arc]
    roles: ArcRoles | None = None
    banks: tuple[BankStructure, ...] | None = None

    @property
    def flow_value(self) -> int:
        """The fixed flow: the register count ``R``."""
        return self.problem.register_count


def build_network(problem: AllocationProblem) -> BuiltNetwork:
    """Construct the flow network for *problem*."""
    model = problem.energy_model
    network = FlowNetwork()
    network.add_node(SOURCE)
    network.add_node(SINK)

    segments = [seg for segs in problem.segments.values() for seg in segs]
    known_keys = {seg.key for seg in segments}
    unknown = problem.forced_segments - known_keys
    if unknown:
        raise GraphError(
            f"forced_segments reference unknown segments: {sorted(unknown)}"
        )
    k = len(segments)
    for seg in segments:
        network.add_node(_write_node(seg))
        network.add_node(_read_node(seg))
    # Node numbering is now fixed: s=0, t=1, w_i=2+2i, r_i=3+2i.
    w_idx = 2 + 2 * np.arange(k, dtype=np.int64)
    r_idx = w_idx + 1

    starts = np.array([seg.start for seg in segments], dtype=np.int64)
    ends = np.array([seg.end for seg in segments], dtype=np.int64)
    var_of: dict[str, int] = {}
    var_ids = np.array(
        [var_of.setdefault(seg.name, len(var_of)) for seg in segments],
        dtype=np.int64,
    )
    terms = separable_cost_terms(model, segments)

    # Segment arcs (arc ids [0, k), aligned with flattened positions).
    ones = np.ones(k, dtype=np.int64)
    lowers = np.array(
        [1 if problem.is_forced(seg) else 0 for seg in segments],
        dtype=np.int64,
    )
    if terms is not None:
        seg_costs = terms.segment
    else:
        seg_costs = np.array(
            [segment_cost(model, seg) for seg in segments], dtype=np.float64
        )
    network.add_arcs_indexed(
        w_idx,
        r_idx,
        ones,
        seg_costs,
        lowers=lowers,
        data=[("segment", seg) for seg in segments],
    )
    segment_arcs = {seg.key: network.arc(i) for i, seg in enumerate(segments)}

    # Intra-variable arcs between consecutive segments.  The flattened
    # order keeps each variable's segments contiguous, so consecutive
    # positions with equal variable id are exactly the legacy pairs.
    intra_pairs = (
        np.nonzero(var_ids[:-1] == var_ids[1:])[0]
        if k
        else np.zeros(0, dtype=np.int64)
    )
    network.add_arcs_indexed(
        r_idx[intra_pairs],
        w_idx[intra_pairs + 1],
        np.ones(len(intra_pairs), dtype=np.int64),
        np.array(
            [
                intra_cost(model, segments[i], segments[i + 1])
                for i in intra_pairs.tolist()
            ],
            dtype=np.float64,
        ),
        data=[
            ("intra", segments[i], segments[i + 1])
            for i in intra_pairs.tolist()
        ],
    )

    handoff_src, handoff_dst = _handoff_pairs(
        problem, starts, ends, var_ids, segments
    )
    h_tails = np.where(handoff_src >= 0, r_idx[handoff_src], 0)
    h_heads = np.where(handoff_dst >= 0, w_idx[handoff_dst], 1)
    if terms is not None:
        h_costs = np.where(
            handoff_src >= 0, terms.exit[handoff_src], 0.0
        ) + np.where(handoff_dst >= 0, terms.enter[handoff_dst], 0.0)
        obs.count("network.vectorized_cost_arcs", k + len(handoff_src))
    else:
        h_costs = np.array(
            [
                handoff_cost(
                    model,
                    segments[s] if s >= 0 else None,
                    segments[d] if d >= 0 else None,
                )
                for s, d in zip(handoff_src.tolist(), handoff_dst.tolist())
            ],
            dtype=np.float64,
        )
        obs.count("network.fallback_cost_arcs", k + len(handoff_src))
    def handoff_payload(
        offset: int,
        _src: np.ndarray = handoff_src,
        _dst: np.ndarray = handoff_dst,
        _segments: tuple = tuple(segments),
    ) -> tuple:
        s = int(_src[offset])
        d = int(_dst[offset])
        return (
            "handoff",
            _segments[s] if s >= 0 else None,
            _segments[d] if d >= 0 else None,
        )

    network.add_arcs_indexed(
        h_tails,
        h_heads,
        np.ones(len(handoff_src), dtype=np.int64),
        h_costs,
        # Payloads are built lazily: the handoff block dominates the arc
        # count and only the few flow-carrying arcs are ever inspected.
        data_factory=handoff_payload,
    )

    bypass_arc = -1
    if problem.allow_unused_registers and problem.register_count > 0:
        bypass_arc = network.add_arc(
            SOURCE,
            SINK,
            capacity=problem.register_count,
            cost=0.0,
            data=("bypass",),
        ).index
    banks: tuple[BankStructure, ...] | None = None
    if problem.storage is not None and not problem.storage.is_degenerate:
        # Parallel per-level structure: one era chain per bank.  The
        # first-pass network itself stays the union model (degenerate
        # specs build byte-identical networks); the banking pass and the
        # multi-bank verifiers consume these chains.
        banks = bank_structures(problem.storage, problem.horizon)
        obs.count("network.bank_levels", len(banks))
    obs.count("network.builds")
    obs.count("network.nodes_built", network.num_nodes)
    obs.count("network.arcs_built", network.num_arcs)
    if obs.enabled():
        obs.gauge("network.density_regions", len(problem.density_regions))
    roles = ArcRoles(k, intra_pairs, handoff_src, handoff_dst, bypass_arc)
    return BuiltNetwork(
        problem, network, SOURCE, SINK, segment_arcs, roles, banks
    )


def _handoff_pairs(
    problem: AllocationProblem,
    starts: np.ndarray,
    ends: np.ndarray,
    var_ids: np.ndarray,
    segments: list[Segment],
) -> tuple[np.ndarray, np.ndarray]:
    """Enumerate handoff arcs as (src, dst) flattened-position arrays.

    ``-1`` stands for the flow source (in ``src``) or the sink (in
    ``dst``).  The returned order reproduces the per-object emission
    order: first every ``s -> dst`` arc in segment order, then for each
    eligible source segment its sink arc followed by its segment-order
    handoffs — restored from the era-bucketed enumeration by one stable
    ``lexsort`` on (source position, sink-before-handoff, target
    position).
    """
    k = len(segments)
    access = problem.access_times
    end_time = problem.horizon + 1

    if access is None:
        spill_ok = np.ones(k, dtype=bool)
    else:
        is_last = np.array([seg.is_last for seg in segments], dtype=bool)
        spill_ok = is_last | np.isin(
            ends, np.fromiter(access, dtype=np.int64)
        )

    adjacent = problem.graph_style == "adjacent"
    if adjacent:
        era = np.asarray(_era_index(problem), dtype=np.int64)
        era_start = era[starts]
        era_end = era[ends]
        s_dsts = np.nonzero(era_start == era[0])[0]
        sink_srcs = np.nonzero(spill_ok & (era_end == era[end_time]))[0]
    else:
        s_dsts = np.nonzero(starts >= 0)[0]
        sink_srcs = np.nonzero(spill_ok & (ends <= end_time))[0]

    pair_src: list[np.ndarray] = []
    pair_dst: list[np.ndarray] = []
    src_pool = np.nonzero(spill_ok)[0]
    if adjacent:
        buckets = np.intersect1d(
            np.unique(era_end[src_pool]), np.unique(era_start)
        )
        groups = [
            (
                src_pool[era_end[src_pool] == e],
                np.nonzero(era_start == e)[0],
            )
            for e in buckets.tolist()
        ]
    else:
        groups = [(src_pool, np.arange(k, dtype=np.int64))] if k else []
    for srcs_e, dsts_e in groups:
        legal = (ends[srcs_e][:, None] <= starts[dsts_e][None, :]) & (
            var_ids[srcs_e][:, None] != var_ids[dsts_e][None, :]
        )
        si, di = np.nonzero(legal)
        pair_src.append(srcs_e[si])
        pair_dst.append(dsts_e[di])
    hs = (
        np.concatenate(pair_src) if pair_src else np.zeros(0, dtype=np.int64)
    )
    hd = (
        np.concatenate(pair_dst) if pair_dst else np.zeros(0, dtype=np.int64)
    )

    # Merge sink arcs and handoffs into per-source emission order: the
    # sink arc of a source precedes its handoffs (kind 0 < 1), handoff
    # targets ascend in segment order.
    all_src = np.concatenate([hs, sink_srcs])
    all_dst = np.concatenate([hd, np.full(len(sink_srcs), -1, np.int64)])
    kind = np.concatenate(
        [np.ones(len(hs), np.int64), np.zeros(len(sink_srcs), np.int64)]
    )
    order = np.lexsort((all_dst, kind, all_src))
    handoff_src = np.concatenate([np.full(len(s_dsts), -1, np.int64), all_src[order]])
    handoff_dst = np.concatenate([s_dsts, all_dst[order]])
    return handoff_src, handoff_dst


def recost_network(built: BuiltNetwork, problem: AllocationProblem) -> BuiltNetwork:
    """Rewrite *built*'s arc costs in place for *problem* and return it.

    The warm-start sweep fast path: a cost-only perturbation (energy
    parameters, memory voltage) keeps the topology — node ids, arc ids,
    capacities, lower bounds — bit-identical, so only the cost column is
    recomputed from the :class:`ArcRoles` arrays and installed via
    :meth:`~repro.flow.graph.FlowNetwork.set_costs`.  Raises
    :class:`GraphError` when *problem* does not share *built*'s topology
    (different segments, register count, graph style, access times or
    forced set) — callers should rebuild instead.
    """
    roles = built.roles
    if roles is None:
        raise GraphError("recost_network requires a network built with roles")
    old = built.problem
    segments = [seg for segs in problem.segments.values() for seg in segs]
    old_segments = [seg for segs in old.segments.values() for seg in segs]
    new_topology = (
        problem.storage.access_topology() if problem.storage else None
    )
    old_topology = old.storage.access_topology() if old.storage else None
    if (
        segments != old_segments
        or problem.register_count != old.register_count
        or problem.graph_style != old.graph_style
        or problem.access_times != old.access_times
        or problem.forced_segments != old.forced_segments
        or problem.allow_unused_registers != old.allow_unused_registers
        or problem.horizon != old.horizon
        # Bank voltages/capacities/ports are cost- or second-pass-only;
        # only the access topology shapes the union network and the
        # banking-forced lower bounds.
        or new_topology != old_topology
    ):
        raise GraphError(
            "recost_network requires an identical topology "
            "(cost-only perturbation); rebuild the network instead"
        )
    model = problem.energy_model
    network = built.network
    costs = np.zeros(network.num_arcs, dtype=np.float64)
    k = roles.num_segments
    p = len(roles.intra_pairs)
    terms = separable_cost_terms(model, segments)
    if terms is not None:
        costs[:k] = terms.segment
        hs = roles.handoff_src
        hd = roles.handoff_dst
        costs[k + p : k + p + len(hs)] = np.where(
            hs >= 0, terms.exit[hs], 0.0
        ) + np.where(hd >= 0, terms.enter[hd], 0.0)
    else:
        costs[:k] = [segment_cost(model, seg) for seg in segments]
        costs[k : k + p] = [
            intra_cost(model, segments[i], segments[i + 1])
            for i in roles.intra_pairs.tolist()
        ]
        costs[k + p : k + p + len(roles.handoff_src)] = [
            handoff_cost(
                model,
                segments[s] if s >= 0 else None,
                segments[d] if d >= 0 else None,
            )
            for s, d in zip(
                roles.handoff_src.tolist(), roles.handoff_dst.tolist()
            )
        ]
    # Intra and bypass arcs cost zero under the uniform decomposition and
    # are already zero-initialised in the vector path.
    network.set_costs(costs)
    built.problem = problem
    built.segment_arcs = {
        seg.key: network.arc(i) for i, seg in enumerate(segments)
    }
    obs.count("network.recosts")
    return built


def _era_index(problem: AllocationProblem) -> list[int]:
    """``era[k]`` = number of maximum-density half-points before step ``k``.

    A register may idle from a read at step ``b`` to a write at step ``a``
    iff no maximum-density half-point lies in ``[b + 0.5, a - 0.5]``, i.e.
    iff ``era[b] == era[a]``.  Indexed for ``k = 0 .. horizon + 1``.
    """
    density = problem.density
    peak = problem.max_density
    era = [0] * (problem.horizon + 2)
    count = 0
    for k in range(problem.horizon + 1):
        era[k] = count
        if peak > 0 and density[k] == peak:
            count += 1
    era[problem.horizon + 1] = count
    return era
