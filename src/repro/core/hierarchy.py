"""Memory-hierarchy partition: on-chip scratchpad vs off-chip memory.

The paper's conclusion: "Significantly larger savings in energy are
expected when this network flow technique is applied to offchip memory,
where energy dissipation of memory accesses is several orders of magnitude
higher."  This module applies exactly the paper's machinery one level
down: after the register/memory allocation, the memory-resident values are
partitioned between a *capacity-limited on-chip scratchpad* and off-chip
memory — as a third minimum-cost flow whose fixed flow value is the
scratchpad capacity and whose interval arcs carry each variable's energy
saving (accesses x (off-chip − on-chip cost)) as a negative cost.

The same interval-flow kernel used for register allocation
(:func:`~repro.core.chain_flow.optimal_interval_chains`) solves this
optimally: the scratch chains are the scratchpad's locations, everything
off-path stays off chip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import Allocation, memory_intervals
from repro.core.chain_flow import optimal_interval_chains
from repro.energy.models import EnergyModel
from repro.exceptions import AllocationError
from repro.lifetimes.intervals import Lifetime

__all__ = ["HierarchyResult", "partition_memory_hierarchy"]


@dataclass
class HierarchyResult:
    """Scratchpad/off-chip split of the memory-resident variables.

    Attributes:
        scratch: Variable name → scratchpad location index.
        offchip: Variable names left in off-chip memory.
        scratch_capacity: Locations the scratchpad offers.
        onchip_energy / offchip_energy: Memory energy of each side under
            the respective model.
        baseline_energy: Memory energy if everything stayed off chip.
    """

    scratch: dict[str, int]
    offchip: tuple[str, ...]
    scratch_capacity: int
    onchip_energy: float
    offchip_energy: float
    baseline_energy: float

    @property
    def total_energy(self) -> float:
        """Memory energy of the partitioned hierarchy."""
        return self.onchip_energy + self.offchip_energy

    @property
    def saving_factor(self) -> float:
        """Baseline (all off-chip) energy over the partitioned energy."""
        if self.total_energy <= 0:
            return float("inf")
        return self.baseline_energy / self.total_energy


def _variable_accesses(
    allocation: Allocation, name: str
) -> tuple[int, int]:
    """(writes, reads) the memory image of *name* serves."""
    problem = allocation.problem
    registered = set(allocation.residency)
    segments = problem.segments[name]
    writes = 0 if segments[0].key in registered else 1
    reads = 0
    for position, seg in enumerate(segments):
        if seg.key in registered:
            # A spill writes the value back when the register is handed
            # over before the variable's last read.
            chain_exit = not seg.is_last and (
                position + 1 >= len(segments)
                or segments[position + 1].key not in registered
            )
            if chain_exit:
                writes += 1
            continue
        reads += seg.read_count
        if not seg.is_first and seg.starts_at_access_cut:
            reads += 1  # reload
    return writes, reads


def partition_memory_hierarchy(
    allocation: Allocation,
    scratch_capacity: int,
    onchip_model: EnergyModel,
    offchip_model: EnergyModel,
) -> HierarchyResult:
    """Split the memory-resident variables across the hierarchy.

    Args:
        allocation: The solved register/memory allocation.
        scratch_capacity: On-chip scratchpad locations available.
        onchip_model: Energy model pricing scratchpad accesses
            (``mem_read``/``mem_write``).
        offchip_model: Energy model pricing off-chip accesses.

    Returns:
        The optimal :class:`HierarchyResult` (maximum energy saving given
        the capacity, via minimum-cost flow).
    """
    if scratch_capacity < 0:
        raise AllocationError(
            f"scratch capacity must be >= 0, got {scratch_capacity}"
        )
    problem = allocation.problem
    intervals = memory_intervals(problem, allocation.residency)
    lifetimes = [
        Lifetime(
            variable=problem.lifetimes[name].variable,
            write_time=start,
            read_times=(end,),
            live_out=problem.lifetimes[name].live_out,
        )
        for name, (start, end) in intervals.items()
    ]
    accesses = {
        lt.name: _variable_accesses(allocation, lt.name) for lt in lifetimes
    }

    def memory_energy(model: EnergyModel, name: str) -> float:
        writes, reads = accesses[name]
        variable = problem.lifetimes[name].variable
        return writes * model.mem_write(variable) + reads * model.mem_read(
            variable
        )

    baseline = sum(memory_energy(offchip_model, lt.name) for lt in lifetimes)

    def saving(lt: Lifetime) -> float:
        return memory_energy(offchip_model, lt.name) - memory_energy(
            onchip_model, lt.name
        )

    assignment = optimal_interval_chains(
        lifetimes,
        horizon=problem.horizon,
        pair_cost=lambda prev, nxt: 0.0,
        chain_count=scratch_capacity,
        style="all_pairs",
        force_all=False,
        interval_cost=lambda lt: -saving(lt),
    )
    scratch = {
        lt.name: index
        for index, chain in enumerate(assignment.chains)
        for lt in chain
    }
    offchip = tuple(
        sorted(lt.name for lt in lifetimes if lt.name not in scratch)
    )
    onchip_energy = sum(
        memory_energy(onchip_model, name) for name in scratch
    )
    offchip_energy = sum(
        memory_energy(offchip_model, name) for name in offchip
    )
    return HierarchyResult(
        scratch=scratch,
        offchip=offchip,
        scratch_capacity=scratch_capacity,
        onchip_energy=onchip_energy,
        offchip_energy=offchip_energy,
        baseline_energy=baseline,
    )
