"""Problem 1: the simultaneous memory/register allocation instance.

Bundles everything section 2 of the paper assumes given: the scheduled
lifetimes, the register count ``R``, the memory operating point (access
period ``c`` and supply), the energy model, and the modelling switches this
reproduction exposes (graph style, lifetime splitting, unused registers).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Literal, Mapping

from repro.energy.models import EnergyModel, StaticEnergyModel
from repro.energy.voltage import MemoryConfig
from repro.exceptions import AllocationError
from repro.lifetimes.analysis import extract_lifetimes
from repro.lifetimes.intervals import (
    Lifetime,
    Segment,
    density_profile,
    max_density_regions,
)
from repro.core.storage import StorageSpec, banking_forced_keys
from repro.lifetimes.splitting import split_all
from repro.scheduling.schedule import Schedule

__all__ = ["AllocationProblem", "GraphStyle"]

#: ``"adjacent"`` is the paper's graph (handoffs only across windows free of
#: maximum-density points, section 5.1); ``"all_pairs"`` connects every
#: non-overlapping pair like prior work [8] (used in figure 4a/b and the
#: graph ablation).
GraphStyle = Literal["adjacent", "all_pairs"]


@dataclass(frozen=True)
class AllocationProblem:
    """One instance of Problem 1.

    Attributes:
        lifetimes: Variable name → lifetime (from
            :func:`~repro.lifetimes.analysis.extract_lifetimes` or built
            directly by workload modules).
        register_count: Size ``R`` of the on-chip register file; the network
            flow value.
        horizon: Block length ``x`` in control steps.
        energy_model: Energy model supplying all access energies.
        memory: Memory operating point (access period + voltage).
        graph_style: Handoff-arc construction rule (see
            :data:`GraphStyle`).
        split_at_reads: Split multi-read lifetimes at interior reads
            (section 5.2).  Disabling reproduces prior-art single-interval
            lifetimes.
        allow_unused_registers: Add a zero-cost source→sink bypass so the
            optimum may leave registers empty when register residency would
            cost more energy than memory (with the paper's parameters the
            bypass never carries flow).
        forced_segments: Extra segment keys ``(variable, index)`` pinned to
            the register file (flow lower bound 1) on top of what
            restricted access times force.  This is the section-7 hook for
            external constraints ("setting certain arc flows to 1 can be
            used" for fixed port counts); the port legalizer uses it.
        storage: Optional multi-level storage hierarchy (see
            :mod:`repro.core.storage`).  When set, :attr:`memory` is
            derived from the hierarchy's reference bank, access times are
            the union over all banks, and segments legal under the union
            but under no single bank are additionally forced.  ``None``
            keeps the paper's two-level model driven by :attr:`memory`.
    """

    lifetimes: Mapping[str, Lifetime]
    register_count: int
    horizon: int
    energy_model: EnergyModel = field(default_factory=StaticEnergyModel)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    graph_style: GraphStyle = "adjacent"
    split_at_reads: bool = True
    allow_unused_registers: bool = True
    forced_segments: frozenset[tuple[str, int]] = frozenset()
    storage: StorageSpec | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "forced_segments", frozenset(self.forced_segments)
        )
        if self.storage is not None:
            # The classic two-level field mirrors the hierarchy's
            # reference bank so legacy consumers (canonical forms,
            # reports, diagnostics) see a consistent operating point.
            object.__setattr__(self, "memory", self.storage.memory_config())
        if self.register_count < 0:
            raise AllocationError(
                f"register count must be >= 0, got {self.register_count}"
            )
        if self.horizon < 0:
            raise AllocationError(f"horizon must be >= 0, got {self.horizon}")
        for name, lifetime in self.lifetimes.items():
            if name != lifetime.name:
                raise AllocationError(
                    f"lifetime map key {name!r} does not match variable "
                    f"{lifetime.name!r}"
                )
            if lifetime.end > self.horizon + 1:
                raise AllocationError(
                    f"lifetime of {name!r} ends at {lifetime.end}, past the "
                    f"block end {self.horizon + 1}"
                )

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    @cached_property
    def access_times(self) -> frozenset[int] | None:
        """Memory access steps, or ``None`` when unrestricted.

        With a multi-bank :attr:`storage` hierarchy this is the union of
        all banks' access steps — the first-pass network constrains
        traffic to steps where *some* bank is accessible; the banking
        pass enforces single-bank consistency afterwards.
        """
        if self.storage is not None:
            return self.storage.union_access_times(self.horizon)
        return self.memory.access_times(self.horizon)

    @cached_property
    def segments(self) -> dict[str, list[Segment]]:
        """Split lifetimes (variable name → ordered segments)."""
        return split_all(
            self.lifetimes,
            access_times=self.access_times,
            split_at_reads=self.split_at_reads,
        )

    @cached_property
    def density(self) -> list[int]:
        """Lifetime density at each half-point ``k + 0.5``."""
        return density_profile(self.lifetimes.values(), self.horizon)

    @property
    def max_density(self) -> int:
        """Minimum number of total storage locations the block needs."""
        return max(self.density, default=0)

    @property
    def density_regions(self) -> list[tuple[int, int]]:
        """The paper's regions of maximum lifetime density."""
        return max_density_regions(self.density)

    @cached_property
    def banking_forced(self) -> frozenset[tuple[str, int]]:
        """Segment keys forced to registers by bank fragmentation.

        Segments legal under the union of bank access times but legal in
        no *single* bank (empty without a multi-bank hierarchy)."""
        if self.storage is None:
            return frozenset()
        return banking_forced_keys(
            self.storage, self.lifetimes, self.segments, self.horizon
        )

    def is_forced(self, segment: Segment) -> bool:
        """Whether *segment* must be register resident (access-time rule,
        an explicit :attr:`forced_segments` pin, or bank fragmentation)."""
        return (
            segment.forced
            or segment.key in self.forced_segments
            or segment.key in self.banking_forced
        )

    def constant_energy(self) -> float:
        """The all-in-memory baseline term of the objective.

        ``sum_v [E_w^m(v) + rlast_v * E_r^m(v)]`` — the constant the paper
        drops from the minimisation; adding it back to the flow cost yields
        the absolute energy.
        """
        model = self.energy_model
        return sum(
            model.mem_write(lt.variable)
            + lt.read_count * model.mem_read(lt.variable)
            for lt in self.lifetimes.values()
        )

    def with_options(self, **changes) -> "AllocationProblem":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_schedule(
        cls,
        schedule: Schedule,
        register_count: int,
        energy_model: EnergyModel | None = None,
        **options,
    ) -> "AllocationProblem":
        """Build an instance from a scheduled basic block."""
        lifetimes = extract_lifetimes(schedule)
        return cls(
            lifetimes=lifetimes,
            register_count=register_count,
            horizon=schedule.length,
            energy_model=energy_model or StaticEnergyModel(),
            **options,
        )
