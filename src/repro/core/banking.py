"""Bank placement: the second allocation pass of a storage hierarchy.

The first pass solves the paper's flow against the *union* of all bank
access times (see :mod:`repro.core.storage`), which decides register vs
memory residency optimally but says nothing about *which* bank holds each
memory-resident value.  This module closes that gap:

1. Solve the union flow (:func:`repro.core.solver` internals).
2. Derive each memory-resident variable's *legal banks* — banks whose
   access steps cover every memory read, spill and reload the residency
   implies (the section-5.2 rule per bank, plus boundary steps).
3. Place variables into banks cheapest-first, using the same capacity-
   limited interval-chain flow as :mod:`repro.core.hierarchy` — each
   bank's chains are its era-chain locations.
4. Legalise per-bank port limits by relocating the heaviest contributor
   at the worst bank-conflict time cut, falling back to pinning the
   variable into registers and re-solving — the monotone pin-and-resolve
   loop of :mod:`repro.core.ports`.

Energy is accounted as *deltas* against the reference bank: the flow
objective already prices all memory traffic at the reference operating
point, so a variable in bank ``b`` contributes
``traffic × ((V_b / V_ref)^2 · scale_b − 1)`` plus the bank's handoff and
idle terms.  For the degenerate two-level spec every delta is zero and
the result is byte-identical to the classic solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.allocation import Allocation, memory_intervals
from repro.core.chain_flow import optimal_interval_chains
from repro.core.memory_realloc import MemoryLayout, reallocate_memory
from repro.core.problem import AllocationProblem
from repro.core.storage import StorageSpec, segment_bank_legal
from repro.exceptions import AllocationError
from repro.lifetimes.intervals import Lifetime
from repro.obs import trace as obs

__all__ = [
    "BankPlacement",
    "BankAssignment",
    "variable_traffic",
    "variable_legal_banks",
    "solve_with_banking",
]

#: Pin-and-resolve rounds before giving up (mirrors ``core.ports``).
_MAX_ROUNDS = 64

#: Port-relocation steps per solve round before pinning.
_MAX_RELOCATIONS = 256


@dataclass(frozen=True)
class VariableTraffic:
    """Memory traffic one variable's residency implies.

    Counts match :func:`repro.core.allocation.compute_report` exactly
    (the delta accounting leans on that agreement); event steps feed the
    per-bank port checks.

    Attributes:
        name: Variable name.
        writes: Memory writes (initial write + spill write-backs).
        reads: Memory reads (served reads + reloads, including the
            live-out pseudo-read, which is priced but never counts
            against ports — the consuming task performs it).
        initial_window: ``(write_time, first_start)`` window of the
            initial memory write, or ``None`` when the first segment is
            register resident.  The write may happen at any bank access
            step inside it.
        spill_steps: Steps of spill write-backs (chain exits).
        read_steps: Steps of port-relevant memory reads.
        reload_steps: Steps of memory→register reloads.
        hull: Occupancy window ``(start, end)`` of the memory image
            (``start == end`` for transit-only traffic).
    """

    name: str
    writes: int
    reads: int
    initial_window: tuple[int, int] | None
    spill_steps: tuple[int, ...]
    read_steps: tuple[int, ...]
    reload_steps: tuple[int, ...]
    hull: tuple[int, int]

    @property
    def total(self) -> int:
        """Total priced memory accesses."""
        return self.writes + self.reads


@dataclass(frozen=True)
class BankPlacement:
    """One variable's bank assignment.

    Attributes:
        name: Variable name.
        bank: Index into :attr:`StorageSpec.banks`.
        delta: Energy delta vs pricing the traffic at the reference bank.
        traffic: The placed traffic.
    """

    name: str
    bank: int
    delta: float
    traffic: VariableTraffic


@dataclass
class BankAssignment:
    """The banking pass result attached to an :class:`Allocation`.

    Attributes:
        spec: The storage hierarchy placed against.
        placements: Variable name → :class:`BankPlacement`.
        pinned: Segment keys the legalizer pinned into registers on top
            of the instance's own forced set.
        rounds: Solve rounds the pin-and-resolve loop took.
        relocations: Port-conflict relocations performed.
        delta_energy: Sum of all placement deltas.
        layouts: Bank index → activity-optimised
            :class:`~repro.core.memory_realloc.MemoryLayout` of that
            bank's residents (the per-level second pass).
    """

    spec: StorageSpec
    placements: dict[str, BankPlacement]
    pinned: frozenset[tuple[str, int]]
    rounds: int
    relocations: int
    delta_energy: float
    layouts: dict[int, MemoryLayout] = field(default_factory=dict)

    def bank_variables(self, bank: int) -> list[str]:
        """Names placed in *bank*, sorted."""
        return sorted(
            name
            for name, placement in self.placements.items()
            if placement.bank == bank
        )

    def bank_of(self, name: str) -> int | None:
        """Bank index holding *name*'s memory image, if any."""
        placement = self.placements.get(name)
        return placement.bank if placement is not None else None


# ----------------------------------------------------------------------
# traffic + legality derivation
# ----------------------------------------------------------------------
def variable_traffic(
    problem: AllocationProblem,
    residency: dict[tuple[str, int], int],
    name: str,
) -> VariableTraffic:
    """Derive *name*'s memory traffic from its segment residency.

    Mirrors :func:`~repro.core.allocation.compute_report`'s memory
    accounting rule for rule: initial write when the first segment is
    memory resident, spill write-back when a register chain exits a
    non-final segment, reads at memory-resident segments, reload read at
    a non-intra register entry on an access cut.
    """
    lifetime = problem.lifetimes[name]
    segments = problem.segments[name]
    writes = reads = 0
    spill_steps: list[int] = []
    read_steps: list[int] = []
    reload_steps: list[int] = []
    points: list[int] = []
    hull_lo: int | None = None
    hull_hi: int | None = None

    initial_window: tuple[int, int] | None = None
    if segments[0].key not in residency:
        writes += 1
        initial_window = (lifetime.write_time, segments[0].start)

    for position, seg in enumerate(segments):
        register = residency.get(seg.key)
        if register is not None:
            nxt = segments[position + 1] if position + 1 < len(segments) else None
            if not seg.is_last and (
                nxt is None or residency.get(nxt.key) != register
            ):
                writes += 1
                spill_steps.append(seg.end)
                points.append(seg.end)
            prev = segments[position - 1] if position else None
            if (
                not seg.is_first
                and seg.starts_at_access_cut
                and (prev is None or residency.get(prev.key) != register)
            ):
                reads += 1
                reload_steps.append(seg.start)
                points.append(seg.start)
        else:
            reads += seg.read_count
            for r in seg.reads:
                # The live-out pseudo-read is priced but performed by
                # the consuming task; it never contends for ports.
                if not (lifetime.live_out and r == lifetime.end):
                    read_steps.append(r)
            hull_lo = seg.start if hull_lo is None else min(hull_lo, seg.start)
            hull_hi = seg.end if hull_hi is None else max(hull_hi, seg.end)

    if hull_lo is None:
        anchor = min(points) if points else lifetime.write_time
        hull_lo = hull_hi = anchor
    return VariableTraffic(
        name=name,
        writes=writes,
        reads=reads,
        initial_window=initial_window,
        spill_steps=tuple(spill_steps),
        read_steps=tuple(read_steps),
        reload_steps=tuple(reload_steps),
        hull=(hull_lo, hull_hi),
    )


def variable_legal_banks(
    problem: AllocationProblem,
    residency: dict[tuple[str, int], int],
    name: str,
    spec: StorageSpec | None = None,
) -> tuple[int, ...]:
    """Banks that can hold *name*'s entire memory image.

    A bank is legal when every memory-resident segment satisfies the
    section-5.2 rule against the bank's access set and every boundary
    event the residency implies (spill write-backs, reloads) lands on
    one of the bank's access steps.
    """
    spec = spec or problem.storage
    if spec is None:
        raise AllocationError("variable_legal_banks requires a storage spec")
    lifetime = problem.lifetimes[name]
    segments = problem.segments[name]
    traffic = variable_traffic(problem, residency, name)
    legal: list[int] = []
    for index, access in enumerate(spec.bank_access_times(problem.horizon)):
        if access is None:
            legal.append(index)
            continue
        ok = all(
            segment_bank_legal(lifetime, seg, access)
            for seg in segments
            if seg.key not in residency
        )
        ok = ok and all(step in access for step in traffic.spill_steps)
        ok = ok and all(step in access for step in traffic.reload_steps)
        if ok and traffic.initial_window is not None:
            lo, hi = traffic.initial_window
            ok = any(lo <= m <= hi for m in access)
        if ok:
            legal.append(index)
    return tuple(legal)


def _bank_scale(spec: StorageSpec, bank: int) -> float:
    """Per-access energy multiplier of *bank* vs the reference bank."""
    level = spec.banks[bank]
    ratio = level.voltage / spec.reference.voltage
    return ratio * ratio * level.access_scale


def _bank_energy(
    problem: AllocationProblem,
    spec: StorageSpec,
    traffic: VariableTraffic,
    bank: int,
) -> float:
    """Absolute energy of *traffic* when placed in *bank*."""
    model = problem.energy_model
    variable = problem.lifetimes[traffic.name].variable
    level = spec.banks[bank]
    base = traffic.writes * model.mem_write(variable) + (
        traffic.reads * model.mem_read(variable)
    )
    lo, hi = traffic.hull
    return (
        base * _bank_scale(spec, bank)
        + level.transfer_cost * traffic.writes
        + level.idle_energy * (hi - lo)
    )


def _reference_energy(
    problem: AllocationProblem, traffic: VariableTraffic
) -> float:
    """What the flow objective already charged for *traffic*."""
    model = problem.energy_model
    variable = problem.lifetimes[traffic.name].variable
    return traffic.writes * model.mem_write(variable) + (
        traffic.reads * model.mem_read(variable)
    )


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------
def _density_fits(
    intervals: list[tuple[int, int]], capacity: int | None
) -> bool:
    """Whether the half-open *intervals* pack into *capacity* locations."""
    if capacity is None:
        return True
    events: dict[int, int] = {}
    for start, end in intervals:
        if end <= start:
            continue
        events[start] = events.get(start, 0) + 1
        events[end] = events.get(end, 0) - 1
    level = 0
    for step in sorted(events):
        level += events[step]
        if level > capacity:
            return False
    return True


def _select_with_capacity(
    problem: AllocationProblem,
    candidates: list[str],
    traffic: dict[str, VariableTraffic],
    saving: dict[str, float],
    capacity: int | None,
) -> set[str]:
    """Choose which candidates this bank takes, respecting capacity.

    Transit-only variables (empty hull) occupy no location and are
    always admitted; interval variables go through the same capacity-
    limited interval-chain flow the scratchpad partition uses — the
    bank's chains are its locations.
    """
    transit = {
        name
        for name in candidates
        if traffic[name].hull[0] >= traffic[name].hull[1]
    }
    chosen = {name for name in transit if saving[name] > 0}
    interval_names = [name for name in candidates if name not in transit]
    if not interval_names:
        return chosen
    if capacity is None:
        chosen.update(
            name for name in interval_names if saving[name] > 0
        )
        return chosen
    if capacity == 0:
        return chosen
    lifetimes = [
        Lifetime(
            variable=problem.lifetimes[name].variable,
            write_time=traffic[name].hull[0],
            read_times=(traffic[name].hull[1],),
            live_out=problem.lifetimes[name].live_out,
        )
        for name in interval_names
    ]
    assignment = optimal_interval_chains(
        lifetimes,
        horizon=problem.horizon,
        pair_cost=lambda prev, nxt: 0.0,
        chain_count=capacity,
        style="all_pairs",
        force_all=False,
        interval_cost=lambda lt: -saving[lt.name],
    )
    for chain in assignment.chains:
        chosen.update(lt.name for lt in chain)
    return chosen


def _port_events(
    traffic: VariableTraffic, access: frozenset[int] | None
) -> list[int]:
    """Port-contending access steps of *traffic* against one bank.

    The initial write is scheduled at the latest legal access step in
    its window (as late as possible — the value stays in no storage
    before its definition, so the deadline step is canonical)."""
    events = list(traffic.spill_steps)
    events.extend(traffic.read_steps)
    events.extend(traffic.reload_steps)
    if traffic.initial_window is not None:
        lo, hi = traffic.initial_window
        if access is None:
            events.append(lo)
        else:
            legal = [m for m in access if lo <= m <= hi]
            if legal:
                events.append(max(legal))
    return events


def _port_violations(
    spec: StorageSpec,
    bank_access: tuple[frozenset[int] | None, ...],
    placements: dict[str, int],
    traffic: dict[str, VariableTraffic],
) -> list[tuple[int, int, int]]:
    """Bank-conflict time cuts: ``(bank, step, count)`` where the
    simultaneous accesses exceed the bank's ports."""
    violations: list[tuple[int, int, int]] = []
    for index, level in enumerate(spec.banks):
        if level.ports is None:
            continue
        counts: dict[int, int] = {}
        for name, bank in placements.items():
            if bank != index:
                continue
            for step in _port_events(traffic[name], bank_access[index]):
                counts[step] = counts.get(step, 0) + 1
        for step in sorted(counts):
            if counts[step] > level.ports:
                violations.append((index, step, counts[step]))
    return violations


def _assign_banks(
    problem: AllocationProblem,
    allocation: Allocation,
    spec: StorageSpec,
) -> tuple[dict[str, int] | None, dict[str, VariableTraffic], str | None, int]:
    """Place every memory variable into a bank, or name an offender.

    Returns ``(placements, traffic, offender, relocations)``;
    *placements* is ``None`` when *offender* must be pinned into
    registers and the flow re-solved.
    """
    residency = allocation.residency
    all_traffic = {
        name: variable_traffic(problem, residency, name)
        for name in problem.lifetimes
    }
    names = [name for name, t in all_traffic.items() if t.total > 0]
    traffic = {name: all_traffic[name] for name in names}
    bank_access = spec.bank_access_times(problem.horizon)
    legal: dict[str, tuple[int, ...]] = {}
    for name in names:
        banks = variable_legal_banks(problem, residency, name, spec)
        if not banks:
            return None, traffic, name, 0
        legal[name] = banks

    energy = {
        name: {
            bank: _bank_energy(problem, spec, traffic[name], bank)
            for bank in legal[name]
        }
        for name in names
    }
    # Cheapest banks first; the per-variable saving of taking a bank now
    # is measured against the variable's best later option (BIG when the
    # bank is its last chance, so last-chance variables always place).
    order = sorted(
        range(len(spec.banks)),
        key=lambda b: (_bank_scale(spec, b), b),
    )
    big = 1.0 + sum(
        max(per_bank.values()) for per_bank in energy.values() if per_bank
    )
    placements: dict[str, int] = {}
    remaining = set(names)
    for position, bank in enumerate(order):
        later = order[position + 1 :]
        candidates = sorted(
            name for name in remaining if bank in legal[name]
        )
        if not candidates:
            continue
        saving: dict[str, float] = {}
        for name in candidates:
            alternatives = [
                energy[name][b] for b in later if b in energy[name]
            ]
            fallback = min(alternatives) if alternatives else big
            saving[name] = fallback - energy[name][bank]
        chosen = _select_with_capacity(
            problem,
            candidates,
            traffic,
            saving,
            spec.banks[bank].capacity,
        )
        for name in chosen:
            placements[name] = bank
        remaining -= chosen
    if remaining:
        return None, traffic, sorted(remaining)[0], 0

    # Port legalisation: relocate the heaviest contributor at the worst
    # conflict cut; pin it when no bank can take it.
    relocations = 0
    while relocations < _MAX_RELOCATIONS:
        violations = _port_violations(spec, bank_access, placements, traffic)
        if not violations:
            return placements, traffic, None, relocations
        bank, step, _count = violations[0]
        contributors = sorted(
            (
                -_port_events(traffic[name], bank_access[bank]).count(step),
                name,
            )
            for name, b in placements.items()
            if b == bank
            and step in _port_events(traffic[name], bank_access[bank])
        )
        offender = contributors[0][1]
        moved = False
        for target in order:
            if target == bank or target not in legal[offender]:
                continue
            trial = dict(placements)
            trial[offender] = target
            intervals = [
                traffic[name].hull
                for name, b in trial.items()
                if b == target
            ]
            if not _density_fits(intervals, spec.banks[target].capacity):
                continue
            if any(
                v[0] == target
                for v in _port_violations(spec, bank_access, trial, traffic)
            ):
                continue
            placements = trial
            relocations += 1
            moved = True
            break
        if not moved:
            return None, traffic, offender, relocations
    return None, traffic, sorted(placements)[0], relocations


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def solve_with_banking(problem: AllocationProblem, options) -> Allocation:
    """Solve a storage-hierarchy instance: union flow + bank placement.

    Called by :func:`repro.core.solver.allocate` whenever the problem
    carries a :class:`~repro.core.storage.StorageSpec`.  Runs the
    pin-and-resolve loop until the placement legalises, then attaches
    the :class:`BankAssignment` (with per-bank activity layouts) to the
    returned allocation.

    Raises:
        InfeasibleFlowError: When pinning overflow variables into
            registers exceeds the register supply.
        AllocationError: When the loop fails to converge (a bug — the
            pinned set grows monotonically).
    """
    from repro.core.solver import allocate_flow

    spec = problem.storage
    if spec is None:
        raise AllocationError("solve_with_banking requires problem.storage")
    base_forced = problem.forced_segments
    pinned: set[tuple[str, int]] = set(base_forced)
    for rounds in range(1, _MAX_ROUNDS + 1):
        current = (
            problem
            if frozenset(pinned) == base_forced
            else problem.with_options(forced_segments=frozenset(pinned))
        )
        allocation = allocate_flow(current, options)
        placements, traffic, offender, relocations = _assign_banks(
            current, allocation, spec
        )
        if placements is not None:
            deltas = {
                name: _bank_energy(problem, spec, traffic[name], bank)
                - _reference_energy(problem, traffic[name])
                for name, bank in placements.items()
            }
            assignment = BankAssignment(
                spec=spec,
                placements={
                    name: BankPlacement(
                        name=name,
                        bank=bank,
                        delta=deltas[name],
                        traffic=traffic[name],
                    )
                    for name, bank in placements.items()
                },
                pinned=frozenset(pinned) - base_forced,
                rounds=rounds,
                relocations=relocations,
                delta_energy=sum(deltas.values()),
            )
            mem_vars = set(memory_intervals(current, allocation.residency))
            for bank in sorted(set(placements.values())):
                residents = {
                    name
                    for name, b in placements.items()
                    if b == bank and name in mem_vars
                }
                if residents:
                    assignment.layouts[bank] = reallocate_memory(
                        allocation, names=residents
                    )
            allocation.banking = assignment
            obs.count("banking.solves")
            obs.count("banking.rounds", rounds)
            if relocations:
                obs.count("banking.relocations", relocations)
            return allocation
        keys = {seg.key for seg in current.segments[offender]}
        if keys <= pinned:
            raise AllocationError(
                f"banking legalizer stalled on {offender!r} "
                f"(already fully pinned)"
            )
        pinned |= keys
        obs.count("banking.pinned_variables")
    raise AllocationError(
        f"banking legalizer did not converge in {_MAX_ROUNDS} rounds"
    )
