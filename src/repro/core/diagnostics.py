"""Infeasibility diagnostics.

A fixed-value flow with lower bounds can be infeasible — in this domain
almost always because restricted memory access times force more segments
into the register file than the file can hold at once.  When ``allocate``
raises :class:`InfeasibleFlowError`, this module explains *why* and *what
would fix it*: the overload steps, the forced segments alive there, and
the minimum register count (or the loosest memory period) that restores
feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.options import SolveOptions
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.exceptions import InfeasibleFlowError
from repro.lifetimes.intervals import density_profile

__all__ = [
    "FeasibilityReport",
    "ForcedDensity",
    "diagnose",
    "forced_density_profile",
    "minimum_feasible_registers",
]


@dataclass(frozen=True)
class ForcedDensity:
    """Forced-segment density analysis of one instance (no solving).

    Shared between :func:`diagnose` and the lint engine's RA301 rule —
    the pure-arithmetic half of feasibility checking: restricted access
    times (and explicit pins) force segments into the register file,
    and wherever the forced density exceeds ``R`` the flow cannot
    exist.

    Attributes:
        profile: Forced-segment density at each half-point ``k + 0.5``.
        density: Peak of the profile — a lower bound on the registers
            the instance needs.
        overload_steps: Half-point steps where the profile exceeds the
            instance's register count.
        peak_variables: Variables of forced segments alive at the worst
            overload step (empty when nothing overloads).
    """

    profile: tuple[int, ...]
    density: int
    overload_steps: tuple[int, ...]
    peak_variables: tuple[str, ...]


@dataclass(frozen=True)
class FeasibilityReport:
    """Why an instance is (in)feasible at its register count.

    Attributes:
        feasible: Whether the instance solves as given.
        register_count: The instance's register supply ``R``.
        forced_density: Peak number of simultaneously live forced
            segments — a lower bound on the registers needed.
        overload_steps: Half-point steps where the forced density exceeds
            ``R`` (empty when feasible).
        forced_at_peak: Variable names of forced segments alive at the
            worst overload step.
        minimum_registers: Smallest ``R`` at which the instance solves.
    """

    feasible: bool
    register_count: int
    forced_density: int
    overload_steps: tuple[int, ...]
    forced_at_peak: tuple[str, ...]
    minimum_registers: int

    def summary(self) -> str:
        if self.feasible:
            return (
                f"feasible at R={self.register_count} "
                f"(forced density {self.forced_density})"
            )
        steps = ", ".join(str(s) for s in self.overload_steps)
        names = ", ".join(self.forced_at_peak)
        return (
            f"infeasible at R={self.register_count}: forced density "
            f"{self.forced_density} (steps {steps}; variables {names}); "
            f"needs R>={self.minimum_registers}"
        )


def _forced_segments(problem: AllocationProblem):
    return [
        seg
        for segments in problem.segments.values()
        for seg in segments
        if problem.is_forced(seg)
    ]


def forced_density_profile(problem: AllocationProblem) -> ForcedDensity:
    """Pure forced-density analysis of *problem* — never solves a flow."""
    forced = _forced_segments(problem)
    profile = density_profile(forced, problem.horizon)
    forced_density = max(profile, default=0)
    overload = tuple(
        k
        for k, value in enumerate(profile)
        if value > problem.register_count
    )
    peak_names: tuple[str, ...] = ()
    if overload:
        worst = max(overload, key=lambda k: profile[k])
        peak_names = tuple(
            sorted({seg.name for seg in forced if seg.alive_at(worst)})
        )
    return ForcedDensity(
        profile=tuple(profile),
        density=forced_density,
        overload_steps=overload,
        peak_variables=peak_names,
    )


def diagnose(problem: AllocationProblem) -> FeasibilityReport:
    """Analyse the feasibility of *problem* and explain any overload."""
    forced = forced_density_profile(problem)
    feasible = _solves(problem)
    return FeasibilityReport(
        feasible=feasible,
        register_count=problem.register_count,
        forced_density=forced.density,
        overload_steps=forced.overload_steps,
        forced_at_peak=forced.peak_variables,
        minimum_registers=minimum_feasible_registers(problem),
    )


def _solves(problem: AllocationProblem) -> bool:
    try:
        allocate(problem, SolveOptions(validate=False))
    except InfeasibleFlowError:
        return False
    return True


def minimum_feasible_registers(problem: AllocationProblem) -> int:
    """Smallest register count at which *problem* becomes feasible.

    Binary-searches between the forced-density lower bound and the total
    lifetime density (always sufficient).
    """
    low = forced_density_profile(problem).density
    high = max(problem.max_density, low)
    if _solves(problem.with_options(register_count=low)):
        return low
    while low < high:
        mid = (low + high) // 2
        if _solves(problem.with_options(register_count=mid)):
            high = mid
        else:
            low = mid + 1
    return low
