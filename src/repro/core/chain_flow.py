"""Generic interval-chaining by minimum-cost flow.

Several parts of the system solve the same sub-problem: partition a set of
time intervals into chains of pairwise non-overlapping intervals while
minimising the total cost of consecutive pairings.  The paper's second
flow pass (memory reallocation with an activity model) and the
Chang-Pedram-style low-power register *binding* baseline [8] are both
instances, differing only in the pair-cost function and the handoff rule.

The flow encoding mirrors section 5.1: one capacity-1 arc per interval
(lower bound 1 when every interval must be placed), handoff arcs between
compatible interval pairs carrying the pair cost, and a fixed flow equal to
the number of chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.exceptions import AllocationError
from repro.flow.decompose import decompose_into_paths
from repro.flow.graph import FlowNetwork
from repro.flow.lower_bounds import solve as flow_solve
from repro.lifetimes.intervals import Lifetime, density_profile

__all__ = ["ChainAssignment", "optimal_interval_chains"]

#: Pair cost: ``cost(previous, interval)`` where ``previous`` is ``None``
#: for the first interval of a chain.
PairCost = Callable[[Lifetime | None, Lifetime], float]


@dataclass
class ChainAssignment:
    """Result of :func:`optimal_interval_chains`.

    Attributes:
        chains: One time-ordered interval list per chain (physical register
            or memory location).
        total_cost: Sum of pair costs over all consecutive pairings,
            including each chain's start cost.
    """

    chains: list[list[Lifetime]]
    total_cost: float

    @property
    def chain_count(self) -> int:
        return len(self.chains)

    def chain_of(self, name: str) -> int:
        """Index of the chain containing the interval called *name*."""
        for index, chain in enumerate(self.chains):
            if any(interval.name == name for interval in chain):
                return index
        raise AllocationError(f"interval {name!r} is not on any chain")


def optimal_interval_chains(
    intervals: Iterable[Lifetime],
    horizon: int,
    pair_cost: PairCost,
    chain_count: int | None = None,
    style: str = "adjacent",
    force_all: bool = True,
    interval_cost: Callable[[Lifetime], float] | None = None,
) -> ChainAssignment:
    """Partition *intervals* into minimum-cost chains.

    Args:
        intervals: The intervals to chain (each placed exactly once when
            *force_all*, at most once otherwise).
        horizon: Largest step ``x`` of the underlying schedule.
        pair_cost: Cost of placing an interval after another on the same
            chain (``previous=None`` for chain starts).
        chain_count: Number of chains; defaults to the maximum interval
            density (the minimum feasible when *force_all*).
        style: ``"adjacent"`` restricts handoffs to maximum-density-free
            idle windows (minimum-location guarantee); ``"all_pairs"``
            allows any time-compatible pairing (prior art [8]).
        force_all: Every interval must land on a chain (lower bound 1).
        interval_cost: Optional cost charged when an interval is placed on
            a chain (used by the hierarchy partition to encode per-variable
            savings as negative costs; only meaningful with
            ``force_all=False``).

    Returns:
        The optimal :class:`ChainAssignment`.

    Raises:
        InfeasibleFlowError: If *chain_count* chains cannot hold all
            intervals (only possible when *force_all*).
    """
    items: list[Lifetime] = sorted(
        intervals, key=lambda lt: (lt.start, lt.end, lt.name)
    )
    if not items:
        return ChainAssignment([], 0.0)
    profile = density_profile(items, horizon)
    peak = max(profile)
    if chain_count is None:
        chain_count = peak

    era = _era_of(profile, peak, horizon)
    if style == "adjacent":
        def compatible(read_time: int, write_time: int) -> bool:
            return read_time <= write_time and era[read_time] == era[write_time]
    elif style == "all_pairs":
        def compatible(read_time: int, write_time: int) -> bool:
            return read_time <= write_time
    else:
        raise AllocationError(f"unknown chain style {style!r}")

    network = FlowNetwork()
    source, sink = "s", "t"
    network.add_node(source)
    network.add_node(sink)
    for item in items:
        network.add_arc(
            ("w", item.name),
            ("r", item.name),
            capacity=1,
            lower=1 if force_all else 0,
            cost=interval_cost(item) if interval_cost else 0.0,
            data=("interval", item),
        )
    end_time = horizon + 1
    for item in items:
        if compatible(0, item.start):
            network.add_arc(
                source,
                ("w", item.name),
                capacity=1,
                cost=pair_cost(None, item),
                data=("start", item),
            )
        if compatible(item.end, end_time):
            network.add_arc(
                ("r", item.name),
                sink,
                capacity=1,
                cost=0.0,
                data=("end", item),
            )
        for other in items:
            if other.name == item.name:
                continue
            if compatible(item.end, other.start):
                network.add_arc(
                    ("r", item.name),
                    ("w", other.name),
                    capacity=1,
                    cost=pair_cost(item, other),
                    data=("pair", item, other),
                )
    # Spare chains (e.g. more registers than variables) ride a free
    # bypass; forced intervals are still pinned by their lower bounds.
    if chain_count > 0:
        network.add_arc(source, sink, capacity=chain_count, cost=0.0,
                        data=("bypass",))

    result = flow_solve(network, source, sink, chain_count)
    paths = decompose_into_paths(result, source, sink)
    chains: list[list[Lifetime]] = []
    for path in paths:
        chain = [
            arc.data[1]
            for arc in path
            if arc.data and arc.data[0] == "interval"
        ]
        if chain:
            chains.append(chain)
    return ChainAssignment(chains, result.cost)


def _era_of(
    profile: Sequence[int], peak: int, horizon: int
) -> list[int]:
    """Era index per step (count of peak-density half-points before it)."""
    era = [0] * (horizon + 2)
    count = 0
    for k in range(horizon + 1):
        era[k] = count
        if peak > 0 and profile[k] == peak:
            count += 1
    era[horizon + 1] = count
    return era
