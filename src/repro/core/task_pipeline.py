"""Application-level allocation over task flow graphs.

The paper's methodology (section 5) places tasks in an ordered list and
applies the flow technique "to each basic block in each task".  This
module runs the per-block pipeline over a whole
:class:`~repro.ir.task_graph.TaskGraph` and rolls the energies up,
weighting each task by its invocation rate — the application-level number
a system designer actually compares.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.options import SolveOptions
from repro.core.pipeline import PipelineResult, allocate_block
from repro.energy.models import EnergyModel
from repro.energy.voltage import MemoryConfig
from repro.ir.task_graph import TaskGraph
from repro.scheduling.resources import ResourceSet

__all__ = ["TaskGraphResult", "allocate_task_graph"]


@dataclass
class TaskGraphResult:
    """Per-task pipeline results plus the application roll-up.

    Attributes:
        graph: The allocated task graph.
        results: Task name → its :class:`PipelineResult`.
        rates: Task name → invocations per frame.
    """

    graph: TaskGraph
    results: dict[str, PipelineResult]
    rates: dict[str, int]

    @property
    def energy_per_frame(self) -> float:
        """Total storage energy of one frame (rate-weighted sum)."""
        return sum(
            self.rates[name] * result.total_energy
            for name, result in self.results.items()
        )

    def summary(self) -> str:
        lines = [f"task graph {self.graph.name!r}:"]
        for name, result in self.results.items():
            energy = result.total_energy
            rate = self.rates[name]
            lines.append(
                f"  {name}: {energy:.1f} per run x {rate} runs/frame "
                f"= {energy * rate:.1f}"
            )
        lines.append(f"  frame total: {self.energy_per_frame:.1f}")
        return "\n".join(lines)


def allocate_task_graph(
    graph: TaskGraph,
    register_count: int,
    resources: ResourceSet | None = None,
    energy_model: EnergyModel | None = None,
    memory: MemoryConfig | None = None,
    options: SolveOptions | None = None,
    **problem_options,
) -> TaskGraphResult:
    """Run the allocation pipeline on every task of *graph*.

    Tasks are processed in topological order (precedence only matters for
    reporting; each block is allocated independently, as in the paper).

    Args:
        graph: The application's task flow graph.
        register_count: Register-file size shared by all tasks.
        resources: Datapath for list scheduling (shared).
        energy_model: Shared energy model.
        memory: Shared memory operating point.
        options: Solve-shaping switches shared by every task's solve
            (see :class:`~repro.core.options.SolveOptions`).
        **problem_options: Extra :class:`AllocationProblem` fields.

    Returns:
        A :class:`TaskGraphResult`.
    """
    order = graph.topological_order()
    assert order is not None  # TaskGraph rejects cycles at construction
    results: dict[str, PipelineResult] = {}
    rates: dict[str, int] = {}
    for task in order:
        results[task.name] = allocate_block(
            task.block,
            register_count=register_count,
            resources=resources,
            energy_model=energy_model,
            memory=memory,
            options=options,
            **problem_options,
        )
        rates[task.name] = task.rate
    return TaskGraphResult(graph=graph, results=results, rates=rates)
