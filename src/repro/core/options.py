"""Unified solve options for every ``allocate*`` entry point.

Historically each entry point (:func:`repro.core.solver.allocate`,
:func:`repro.core.pipeline.allocate_schedule` /
:func:`~repro.core.pipeline.allocate_block`,
:func:`repro.core.ports.allocate_with_port_limit`,
:func:`repro.core.task_pipeline.allocate_task_graph`) re-declared its own
overlapping ``lint=`` / ``certify=`` / ``warm_cache=`` keywords, and every
new capability widened all of them by hand.  :class:`SolveOptions` is the
single frozen bundle they all accept now; the old keywords remain as thin
deprecation shims resolved through :func:`resolve_options`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Mapping

from repro.core.storage import StorageSpec
from repro.flow.warm_start import WarmStartCache

__all__ = ["SolveOptions", "resolve_options", "UNSET"]


class _Unset:
    """Sentinel type distinguishing 'not passed' from explicit ``None``."""

    _instance: "_Unset | None" = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNSET"


#: Sentinel default for deprecated keyword parameters.
UNSET = _Unset()


@dataclass(frozen=True)
class SolveOptions:
    """Everything orthogonal to the instance that shapes a solve.

    Attributes:
        validate: Run the flow validator and the energy cross-check on
            the solution (cheap; disable only in benchmarking loops).
        certify: Additionally construct and verify an optimality
            certificate (node potentials + complementary slackness)
            before returning.
        lint: Pre-solve static-analysis gate: a severity name
            (``"error"``, ``"warning"``, ``"note"``) at or above which
            lint findings abort the solve, or ``None`` to skip linting.
        warm_cache: Optional shared
            :class:`~repro.flow.warm_start.WarmStartCache`; cost-only
            perturbations of a previously solved topology re-solve
            incrementally.  Results are identical with or without it.
        ladder: Solver-ladder rung names for the service executor
            (``None`` = the direct successive-shortest-paths solve).
            The in-process entry points ignore it; the batch executor
            routes it to :func:`repro.service.solvers.run_ladder`.
        storage: Optional :class:`~repro.core.storage.StorageSpec`
            applied to problems that do not already carry one — the
            switch that turns a classic two-level solve into a
            multi-bank hierarchy solve.
    """

    validate: bool = True
    certify: bool = False
    lint: str | None = None
    warm_cache: WarmStartCache | None = None
    ladder: tuple[str, ...] | None = None
    storage: StorageSpec | None = None

    def replace(self, **changes) -> "SolveOptions":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


def resolve_options(
    options: SolveOptions | None,
    legacy: Mapping[str, object],
    stacklevel: int = 3,
) -> SolveOptions:
    """Merge deprecated keyword arguments into a :class:`SolveOptions`.

    Args:
        options: The options object the caller passed (or ``None``).
        legacy: Deprecated keyword values keyed by field name; entries
            equal to :data:`UNSET` were not passed and are ignored.
        stacklevel: ``warnings.warn`` stack level so the deprecation
            points at the caller of the entry point.

    Returns:
        *options* (or defaults) with any explicitly passed legacy
        keywords folded in; passing one emits a ``DeprecationWarning``.
    """
    base = options if options is not None else SolveOptions()
    updates = {k: v for k, v in legacy.items() if v is not UNSET}
    if updates:
        names = ", ".join(sorted(updates))
        warnings.warn(
            f"keyword argument(s) {names} are deprecated; pass "
            f"options=SolveOptions(...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        base = replace(base, **updates)
    return base
