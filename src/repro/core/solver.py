"""The allocator: solve Problem 1 by minimum-cost network flow.

``allocate(problem)`` is the package's central entry point: it builds the
flow network, solves the (possibly lower-bounded) minimum-cost flow at flow
value ``R``, decomposes the solution into register chains, assigns memory
addresses, and returns a fully accounted :class:`Allocation`.

Instances carrying a multi-level :class:`~repro.core.storage.StorageSpec`
additionally run the bank-placement second pass
(:mod:`repro.core.banking`) and return with :attr:`Allocation.banking`
populated.

Solve-shaping switches (validation, certification, lint gating, warm
starts, storage hierarchy) travel in one frozen
:class:`~repro.core.options.SolveOptions` bundle shared by every
``allocate*`` entry point; the historical per-function keywords remain as
deprecation shims.
"""

from __future__ import annotations

from repro.core.allocation import (
    Allocation,
    assign_addresses,
    compute_report,
    decompose_chains,
    memory_intervals,
)
from repro.core.network_builder import BuiltNetwork, build_network
from repro.core.options import UNSET, SolveOptions, resolve_options
from repro.core.problem import AllocationProblem
from repro.exceptions import AllocationError, InfeasibleFlowError
from repro.flow.lower_bounds import solve as flow_solve
from repro.flow.validate import check_flow
from repro.obs import trace as obs

__all__ = ["allocate", "allocate_flow", "extract_allocation", "solve_built"]

#: Absolute tolerance when cross-checking the recomputed energy against the
#: flow objective.
_ENERGY_TOLERANCE = 1e-6


def allocate(
    problem: AllocationProblem,
    options: SolveOptions | None = None,
    *,
    validate: bool = UNSET,
    certify: bool = UNSET,
    lint: str | None = UNSET,
    warm_cache=UNSET,
) -> Allocation:
    """Solve *problem* and return the optimal :class:`Allocation`.

    Args:
        problem: The instance to solve.
        options: Solve-shaping switches (see
            :class:`~repro.core.options.SolveOptions`); ``None`` uses the
            defaults.  ``options.storage`` applies a hierarchy to
            problems that do not already carry one.
        validate: Deprecated — use ``options.validate``.
        certify: Deprecated — use ``options.certify``.
        lint: Deprecated — use ``options.lint``.
        warm_cache: Deprecated — use ``options.warm_cache``.

    Raises:
        LintGateError: If the lint gate is armed and the static analysis
            finds defects at or above the requested severity.
        InfeasibleFlowError: If the register count cannot be realised — in
            practice only when forced (restricted-access) segments demand
            more simultaneous registers than available, or when bank
            overflow pins exhaust the register file.
        AllocationError: If internal invariants are violated (a bug).
    """
    options = resolve_options(
        options,
        {
            "validate": validate,
            "certify": certify,
            "lint": lint,
            "warm_cache": warm_cache,
        },
    )
    if options.storage is not None and problem.storage is None:
        problem = problem.with_options(storage=options.storage)
    if options.lint is not None:
        # Lazy import: repro.lint depends on repro.core.problem and the
        # network builder only, so this cannot cycle at import time.
        from repro.lint import gate_problem

        gate_problem(problem, fail_on=options.lint)
    if problem.storage is not None:
        # Lazy import: repro.core.banking imports this module back.
        from repro.core.banking import solve_with_banking

        return solve_with_banking(problem, options)
    return allocate_flow(problem, options)


def allocate_flow(
    problem: AllocationProblem, options: SolveOptions | None = None
) -> Allocation:
    """Build and solve the union flow network, without lint gating or
    bank placement (the banking pass calls this per pin round)."""
    options = options or SolveOptions()
    with obs.span("solver.build_network"):
        built = build_network(problem)
    return solve_built(built, options)


def solve_built(
    built: BuiltNetwork,
    options: SolveOptions | None = None,
    *,
    validate: bool = UNSET,
    certify: bool = UNSET,
    warm_cache=UNSET,
) -> Allocation:
    """Solve an already-constructed network (used by ablation benches
    and warm-started sweeps).

    Args:
        built: The constructed network.
        options: Solve-shaping switches; ``None`` uses the defaults.
        validate: Deprecated — use ``options.validate``.
        certify: Deprecated — use ``options.certify``.
        warm_cache: Deprecated — use ``options.warm_cache``.
    """
    options = resolve_options(
        options,
        {
            "validate": validate,
            "certify": certify,
            "warm_cache": warm_cache,
        },
    )
    problem = built.problem
    with obs.span("solver.flow_solve"):
        # Counter twin of the span: spans carry wall time only, and the
        # admission-gate tests assert "zero solves" off this number.
        obs.count("solver.flow_solve.calls")
        try:
            flow = flow_solve(
                built.network,
                built.source,
                built.sink,
                built.flow_value,
                warm_cache=options.warm_cache,
            )
        except InfeasibleFlowError as exc:
            # Attach the instance so catchers (e.g. the CLI) can run
            # repro.core.diagnostics.diagnose without re-deriving it.
            exc.problem = problem
            raise
    if options.validate:
        with obs.span("solver.validate"):
            check_flow(flow, built.source, built.sink, built.flow_value)
    if options.certify:
        # Lazy import: repro.verify.certificates depends only on
        # repro.flow, so this cannot cycle back into the core package.
        from repro.verify.certificates import certify_flow

        with obs.span("solver.certify"):
            certify_flow(flow)

    return extract_allocation(built, flow, validate=options.validate)


def extract_allocation(
    built: BuiltNetwork, flow, validate: bool = True
) -> Allocation:
    """Turn a solved flow over *built* into a full :class:`Allocation`.

    Decomposes the flow into register chains, derives segment residency,
    assigns memory addresses and re-accounts the energy independently of
    the flow objective.  Exposed separately from :func:`solve_built` so
    alternative solving strategies (e.g. the cycle-cancelling fallback in
    :mod:`repro.service.solvers`) share one extraction and one
    energy-accounting cross-check with the production path.

    Args:
        built: The constructed network the flow was solved on.
        flow: A feasible minimum-cost :class:`~repro.flow.graph.FlowResult`
            over ``built.network``.
        validate: Cross-check the recomputed energy against the flow
            objective.

    Raises:
        AllocationError: If the energy accounting disagrees with the flow
            objective (a bug in either path).
    """
    problem = built.problem
    with obs.span("solver.extract"):
        chains, bypass_units = decompose_chains(built, flow)
        residency: dict[tuple[str, int], int] = {}
        for register, chain in enumerate(chains):
            for seg in chain:
                residency[seg.key] = register

        report = compute_report(problem, chains)
        intervals = memory_intervals(problem, residency)
        addresses = assign_addresses(intervals)
        objective = problem.constant_energy() + flow.cost

    if validate:
        recomputed = report.total_energy
        if abs(recomputed - objective) > _ENERGY_TOLERANCE * (
            1.0 + abs(objective)
        ):
            raise AllocationError(
                f"energy accounting mismatch: flow objective {objective:.6f}"
                f" vs recomputed {recomputed:.6f}"
            )

    return Allocation(
        problem=problem,
        flow=flow,
        chains=chains,
        residency=residency,
        memory_addresses=addresses,
        report=report,
        objective=objective,
        unused_registers=bypass_units,
    )
