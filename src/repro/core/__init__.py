"""The paper's core contribution: simultaneous low-energy memory
partitioning and register allocation by minimum-cost network flow."""

from repro.core.allocation import (
    Allocation,
    AllocationResult,
    assign_addresses,
    compute_report,
    memory_intervals,
)
from repro.core.banking import (
    BankAssignment,
    BankPlacement,
    solve_with_banking,
    variable_legal_banks,
    variable_traffic,
)
from repro.core.chain_flow import ChainAssignment, optimal_interval_chains
from repro.core.diagnostics import (
    FeasibilityReport,
    diagnose,
    minimum_feasible_registers,
)
from repro.core.hierarchy import HierarchyResult, partition_memory_hierarchy
from repro.core.memory_realloc import MemoryLayout, reallocate_memory
from repro.core.ports import PortConstrainedResult, allocate_with_port_limit
from repro.core.task_pipeline import TaskGraphResult, allocate_task_graph
from repro.core.network_builder import (
    SINK,
    SOURCE,
    BuiltNetwork,
    build_network,
)
from repro.core.pipeline import (
    PipelineResult,
    allocate_block,
    allocate_schedule,
)
from repro.core.options import SolveOptions, resolve_options
from repro.core.problem import AllocationProblem, GraphStyle
from repro.core.solver import allocate, allocate_flow, solve_built
from repro.core.storage import (
    BankStructure,
    StorageLevel,
    StorageSpec,
    bank_structures,
)

__all__ = [
    "Allocation",
    "AllocationProblem",
    "AllocationResult",
    "BankAssignment",
    "BankPlacement",
    "BankStructure",
    "BuiltNetwork",
    "ChainAssignment",
    "FeasibilityReport",
    "GraphStyle",
    "HierarchyResult",
    "MemoryLayout",
    "PipelineResult",
    "PortConstrainedResult",
    "SINK",
    "SOURCE",
    "SolveOptions",
    "StorageLevel",
    "StorageSpec",
    "TaskGraphResult",
    "allocate",
    "allocate_block",
    "allocate_flow",
    "allocate_schedule",
    "allocate_task_graph",
    "allocate_with_port_limit",
    "assign_addresses",
    "bank_structures",
    "build_network",
    "compute_report",
    "diagnose",
    "memory_intervals",
    "minimum_feasible_registers",
    "optimal_interval_chains",
    "partition_memory_hierarchy",
    "reallocate_memory",
    "resolve_options",
    "solve_built",
    "solve_with_banking",
    "variable_legal_banks",
    "variable_traffic",
]
