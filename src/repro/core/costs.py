"""Arc-cost assignment (the energy semantics of eqs. 3-10, generalised).

The paper attaches all energy deltas to the handoff arcs and keeps segment
arcs at cost zero (eq. 3).  This module uses the equivalent *uniform*
decomposition — read credits live on the segment arcs, entry/exit effects
on the handoff arcs — which extends cleanly to every segment kind the
splitting machinery can produce (access-time cuts, unsplit multi-read
lifetimes, forced segments).  Shifting cost between a segment arc and its
incident handoff arcs never changes any flow's total cost (conservation),
so optima are identical; :mod:`repro.core.paper_equations` provides the
literal per-equation arc costs and the tests cross-check the two.

Cost components, for an energy model ``E``:

* segment arc ``w_i(v) -> r_i(v)`` serving reads ``R_i``:
  ``|R_i| * (E.reg_read(v) - E.mem_read(v))`` — each served read comes from
  the register file instead of memory;
* handoff arc into a segment of ``v2`` (from a segment of ``v1``, or from
  the source ``s``):
  ``+ E.reg_write(v2, prev=v1)``  (new value enters the register), plus
  ``- E.mem_write(v2)`` when the segment is the variable's first (the
  definition write to memory is avoided), or
  ``+ E.mem_read(v2)`` when the segment begins at a pure access cut (an
  explicit reload from memory; a segment beginning at a read time
  piggybacks on the consumer's already-paid read);
* handoff arc out of a *non-final* segment of ``v1`` (to another variable
  or to the sink): ``+ E.mem_write(v1)`` — the live value is spilled back
  to memory so the variable's remaining reads can be served (the paper's
  eq. 6 spill term);
* intra-variable arcs ``r_i(v) -> w_{i+1}(v)`` cost nothing here (the read
  credit already sits on the segment arc, and a value staying put switches
  no register bits — ``H(v, v) = 0``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.energy.models import EnergyModel, StaticEnergyModel
from repro.lifetimes.intervals import Segment

__all__ = [
    "SeparableCostTerms",
    "segment_cost",
    "handoff_cost",
    "intra_cost",
    "separable_cost_terms",
]


@dataclass(frozen=True)
class SeparableCostTerms:
    """Vectorized per-segment cost components of a *separable* model.

    A model is separable when ``reg_write`` does not depend on the
    previously held value, so every handoff arc cost splits into a pure
    per-source term plus a pure per-target term:

    * ``segment[i]`` — cost of segment ``i``'s ``w -> r`` arc;
    * ``exit[i]`` — spill term charged when a handoff *leaves* segment
      ``i`` (zero on last segments, and for the flow source);
    * ``enter[i]`` — entry term charged when a handoff *enters* segment
      ``i`` (register write, definition-write credit or reload), the
      same whether the arc comes from another segment or from ``s``.

    ``cost(src -> dst) = exit[src] + enter[dst]`` with the source/sink
    contributing zero — exactly :func:`handoff_cost` restricted to
    separable models (the vectorization tests pin this equivalence).
    All arrays are ``float64`` indexed by flattened segment position.
    """

    segment: np.ndarray
    exit: np.ndarray
    enter: np.ndarray


def separable_cost_terms(
    model: EnergyModel, segments: Sequence[Segment]
) -> SeparableCostTerms | None:
    """The vector cost tables of *model*, or ``None`` if not separable.

    Only the exact :class:`~repro.energy.models.StaticEnergyModel` class
    is separable today (its ``reg_write`` ignores the previous value and
    every energy is a per-access constant); activity-based models couple
    handoff costs to the (source, target) variable pair and take the
    per-arc fallback path in the network builder.  Subclasses are
    excluded deliberately — they may override any method.
    """
    if type(model) is not StaticEnergyModel:
        return None
    k = len(segments)
    if k == 0:
        empty = np.zeros(0)
        return SeparableCostTerms(empty, empty.copy(), empty.copy())
    probe = segments[0].variable
    mem_read = model.mem_read(probe)
    mem_write = model.mem_write(probe)
    reg_read = model.reg_read(probe)
    reg_write = model.reg_write(probe, None)
    read_counts = np.array([seg.read_count for seg in segments], dtype=np.float64)
    is_last = np.array([seg.is_last for seg in segments], dtype=bool)
    is_first = np.array([seg.is_first for seg in segments], dtype=bool)
    at_cut = np.array(
        [seg.starts_at_access_cut for seg in segments], dtype=bool
    )
    segment = read_counts * (reg_read - mem_read)
    exit_terms = np.where(is_last, 0.0, mem_write)
    enter_terms = reg_write + np.where(
        is_first, -mem_write, np.where(at_cut, mem_read, 0.0)
    )
    return SeparableCostTerms(segment, exit_terms, enter_terms)


def segment_cost(model: EnergyModel, segment: Segment) -> float:
    """Cost of the ``w_i(v) -> r_i(v)`` arc (register-resident segment)."""
    v = segment.variable
    reads = segment.read_count
    if not reads:
        return 0.0
    return reads * (model.reg_read(v) - model.mem_read(v))


def handoff_cost(
    model: EnergyModel,
    source: Segment | None,
    target: Segment | None,
) -> float:
    """Cost of a handoff arc.

    Args:
        model: Energy model.
        source: Segment whose read node the arc leaves, or ``None`` for the
            flow source ``s`` (register initially holds unknown data).
        target: Segment whose write node the arc enters, or ``None`` for
            the sink ``t`` (register retires).

    Returns:
        The arc cost (may be negative: register residency usually *saves*
        energy relative to the all-in-memory constant term).
    """
    cost = 0.0
    if source is not None and not source.is_last:
        # Spill: remaining reads of the source variable need a memory copy.
        cost += model.mem_write(source.variable)
    if target is not None:
        if target.is_first:
            cost -= model.mem_write(target.variable)
        elif target.starts_at_access_cut:
            cost += model.mem_read(target.variable)
        prev = source.variable if source is not None else None
        cost += model.reg_write(target.variable, prev)
    return cost


def intra_cost(
    model: EnergyModel, earlier: Segment, later: Segment
) -> float:
    """Cost of the intra-variable arc ``r_i(v) -> w_{i+1}(v)``.

    Zero under the uniform decomposition: the value stays in its register
    (no bit flips, no new accesses) and the read credit is carried by the
    segment arc.
    """
    return 0.0
