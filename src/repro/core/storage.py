"""Multi-level storage hierarchies (registers + N memory banks).

The paper models exactly two storage levels: the register file and one
restricted memory (section 5.2).  This module generalises the memory side
to an ordered hierarchy of :class:`StorageLevel` banks — each with its own
capacity, port count, access period/offset, supply voltage and handoff
cost — behind a single :class:`StorageSpec` carried by
:class:`~repro.core.problem.AllocationProblem`.

The generalisation is layered so the paper's model is the exact
degenerate case:

* **First pass** (the flow network) sees the *union* of all bank access
  times plus the extra segments that are *banking-forced*: legal under
  the union but under no single bank (e.g. their reads straddle two
  banks' access phases).  With one bank the union equals that bank's set
  and nothing extra is forced, so the network — and hence the energy —
  is byte-identical to the classic two-level solve.
* **Second pass** (:mod:`repro.core.banking`) places each memory-resident
  variable into one legal bank under per-bank capacity and port limits,
  re-running the flow with extra register pins when banks overflow —
  the same pin-and-resolve pattern as :mod:`repro.core.ports`.

Per-segment bank legality re-uses the splitter's section-5.2 rule
verbatim, evaluated against a single bank's access set instead of the
union: the value must be able to reach the bank by the segment start,
and every served read must land on one of the bank's access steps.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Sequence

from repro.energy.capacitance import NOMINAL_VOLTAGE
from repro.energy.voltage import MemoryConfig, max_divisor_supply
from repro.exceptions import AllocationError
from repro.lifetimes.intervals import Lifetime, Segment
from repro.lifetimes.splitting import periodic_access_times

__all__ = [
    "StorageLevel",
    "StorageSpec",
    "BankStructure",
    "bank_structures",
    "segment_bank_legal",
    "banking_forced_keys",
]

#: Serialization schema tag for :meth:`StorageSpec.to_dict`.
STORAGE_SCHEMA = "repro/storage-spec/v1"


@dataclass(frozen=True)
class StorageLevel:
    """One level of the storage hierarchy.

    Attributes:
        name: Unique level name (``"rf"``, ``"bank0"``, ``"offchip"`` ...).
        kind: ``"register"`` for the register file, ``"memory"`` for a
            bank.  Exactly one register level is allowed per spec and it
            must come first.
        capacity: Locations available at this level, or ``None`` for
            unbounded.  The register level's capacity is ignored — the
            problem's ``register_count`` governs it.
        ports: Simultaneous accesses the level accepts per access step,
            or ``None`` for unlimited.
        divisor: The level accepts accesses every *divisor* control steps
            (``c`` in Problem 1; 1 = every step).  Ignored for the
            register level.
        offset: First access step of the periodic pattern.
        voltage: Supply voltage of the level.  Access energies scale with
            ``(V / V_ref)^2`` relative to the hierarchy's reference bank.
        access_scale: Extra multiplier on per-access energy (models wider
            banks or different cell technology); 1.0 is neutral.
        idle_energy: Static energy charged per occupied location per
            control step of residency; 0.0 is neutral.
        transfer_cost: Additive energy per value handed *into* this level
            (bus/driver cost of the spill); 0.0 is neutral.
    """

    name: str
    kind: str = "memory"
    capacity: int | None = None
    ports: int | None = None
    divisor: int = 1
    offset: int = 1
    voltage: float = NOMINAL_VOLTAGE
    access_scale: float = 1.0
    idle_energy: float = 0.0
    transfer_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("register", "memory"):
            raise AllocationError(
                f"storage level kind must be 'register' or 'memory', "
                f"got {self.kind!r}"
            )
        if self.divisor < 1:
            raise AllocationError(
                f"level {self.name!r}: divisor must be >= 1, "
                f"got {self.divisor}"
            )
        if self.offset < 0:
            raise AllocationError(
                f"level {self.name!r}: negative offset {self.offset}"
            )
        if self.voltage <= 0:
            raise AllocationError(
                f"level {self.name!r}: non-positive voltage {self.voltage}"
            )
        if self.capacity is not None and self.capacity < 0:
            raise AllocationError(
                f"level {self.name!r}: negative capacity {self.capacity}"
            )
        if self.ports is not None and self.ports < 1:
            raise AllocationError(
                f"level {self.name!r}: ports must be >= 1, got {self.ports}"
            )
        if self.access_scale <= 0:
            raise AllocationError(
                f"level {self.name!r}: non-positive access scale "
                f"{self.access_scale}"
            )

    @property
    def restricted(self) -> bool:
        """Whether this level's access times constrain the allocator."""
        return self.divisor > 1

    def access_times(self, length: int) -> frozenset[int] | None:
        """Access-step set for a block of *length* steps (None if free)."""
        if self.kind == "register" or not self.restricted:
            return None
        return periodic_access_times(self.divisor, length, self.offset)

    def memory_config(self) -> MemoryConfig:
        """The classic two-level operating point this bank corresponds to."""
        return MemoryConfig(
            divisor=self.divisor, voltage=self.voltage, offset=self.offset
        )

    def to_dict(self) -> dict:
        """JSON-ready representation of this level."""
        return {
            "name": self.name,
            "kind": self.kind,
            "capacity": self.capacity,
            "ports": self.ports,
            "divisor": self.divisor,
            "offset": self.offset,
            "voltage": self.voltage,
            "access_scale": self.access_scale,
            "idle_energy": self.idle_energy,
            "transfer_cost": self.transfer_cost,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "StorageLevel":
        """Rebuild a level from :meth:`to_dict` output."""
        return cls(
            name=str(data["name"]),
            kind=str(data.get("kind", "memory")),
            capacity=data.get("capacity"),
            ports=data.get("ports"),
            divisor=int(data.get("divisor", 1)),
            offset=int(data.get("offset", 1)),
            voltage=float(data.get("voltage", NOMINAL_VOLTAGE)),
            access_scale=float(data.get("access_scale", 1.0)),
            idle_energy=float(data.get("idle_energy", 0.0)),
            transfer_cost=float(data.get("transfer_cost", 0.0)),
        )


@dataclass(frozen=True)
class StorageSpec:
    """An ordered storage hierarchy: one register level plus >= 1 banks.

    The first level must be the register file; the remaining levels are
    memory banks ordered by preference (the first bank is the *reference*
    operating point — the flow network's costs are taken at its voltage,
    and the banking pass accounts other banks as energy deltas against
    it).

    Attributes:
        levels: The hierarchy, register level first.
    """

    levels: tuple[StorageLevel, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "levels", tuple(self.levels))
        if len(self.levels) < 2:
            raise AllocationError(
                "a storage spec needs a register level and at least one "
                f"memory bank, got {len(self.levels)} level(s)"
            )
        if self.levels[0].kind != "register":
            raise AllocationError(
                "the first storage level must be the register file"
            )
        if any(lvl.kind != "memory" for lvl in self.levels[1:]):
            raise AllocationError(
                "levels after the first must all be memory banks"
            )
        names = [lvl.name for lvl in self.levels]
        if len(set(names)) != len(names):
            raise AllocationError(f"duplicate storage level names: {names}")

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def register_level(self) -> StorageLevel:
        """The register-file level."""
        return self.levels[0]

    @property
    def banks(self) -> tuple[StorageLevel, ...]:
        """The memory levels, in preference order."""
        return self.levels[1:]

    @property
    def reference(self) -> StorageLevel:
        """The reference bank: the flow network prices accesses at its
        operating point; other banks are deltas against it."""
        return self.levels[1]

    @property
    def is_degenerate(self) -> bool:
        """Whether this spec is the paper's two-level model (one bank)."""
        return len(self.banks) == 1

    def memory_config(self) -> MemoryConfig:
        """The two-level operating point of the reference bank."""
        return self.reference.memory_config()

    def union_access_times(self, length: int) -> frozenset[int] | None:
        """Union of all banks' access steps (``None`` when any bank is
        unrestricted — the union then constrains nothing)."""
        union: set[int] = set()
        for bank in self.banks:
            times = bank.access_times(length)
            if times is None:
                return None
            union.update(times)
        return frozenset(union)

    def access_topology(self) -> tuple:
        """Hashable key of everything that shapes the flow network.

        Two specs with equal topology produce identical access-time
        unions and banking-forced sets for any horizon, so a network
        built for one can be re-costed for the other (bank voltages,
        capacities and ports differ only in the banking pass).
        """
        return tuple(
            (lvl.kind, lvl.divisor, lvl.offset) for lvl in self.levels
        )

    def with_levels(self, **changes) -> "StorageSpec":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # bank legality
    # ------------------------------------------------------------------
    def bank_access_times(
        self, length: int
    ) -> tuple[frozenset[int] | None, ...]:
        """Per-bank access-step sets for a block of *length* steps."""
        return tuple(bank.access_times(length) for bank in self.banks)

    def segment_legal_banks(
        self, lifetime: Lifetime, segment: Segment, length: int
    ) -> tuple[int, ...]:
        """Bank indices (into :attr:`banks`) where *segment* may be
        memory-resident under the section-5.2 rule."""
        return tuple(
            b
            for b, times in enumerate(self.bank_access_times(length))
            if segment_bank_legal(lifetime, segment, times)
        )

    # ------------------------------------------------------------------
    # constructors / serialization
    # ------------------------------------------------------------------
    @classmethod
    def canonical(cls, memory: MemoryConfig | None = None) -> "StorageSpec":
        """The paper's two-level hierarchy for a classic operating point.

        Solving with this spec reproduces the plain
        :class:`~repro.energy.voltage.MemoryConfig` solve byte-for-byte.
        """
        config = memory or MemoryConfig()
        return cls(
            levels=(
                StorageLevel(name="rf", kind="register"),
                StorageLevel(
                    name="mem",
                    kind="memory",
                    divisor=config.divisor,
                    offset=config.offset,
                    voltage=config.voltage,
                ),
            )
        )

    @classmethod
    def banked(
        cls,
        bank_count: int,
        period: int,
        ports: int | None = None,
        capacity: int | None = None,
        voltages: Sequence[float] | None = None,
        stagger: bool = True,
    ) -> "StorageSpec":
        """An interleaved multi-bank hierarchy for sweeps and fuzzing.

        Bank *i* runs at the given access *period* with offset
        ``1 + (i % period)`` when *stagger* is set (classic interleaving;
        offsets repeat once ``bank_count`` exceeds *period*), otherwise
        all banks share offset 1.  Voltages default to the lowest supply
        meeting ``f / period`` (as :meth:`MemoryConfig.scaled`).

        Args:
            bank_count: Number of memory banks (>= 1).
            period: Access period shared by all banks.
            ports: Per-bank port count (``None`` = unlimited).
            capacity: Per-bank capacity (``None`` = unbounded).
            voltages: Optional per-bank supply override.
            stagger: Interleave bank offsets across the period.
        """
        if bank_count < 1:
            raise AllocationError(
                f"bank count must be >= 1, got {bank_count}"
            )
        if voltages is not None and len(voltages) != bank_count:
            raise AllocationError(
                f"{len(voltages)} voltages for {bank_count} banks"
            )
        default_v = (
            NOMINAL_VOLTAGE
            if period == 1
            else round(max_divisor_supply(period), 3)
        )
        banks = tuple(
            StorageLevel(
                name=f"bank{i}",
                kind="memory",
                capacity=capacity,
                ports=ports,
                divisor=period,
                offset=1 + (i % period if stagger else 0),
                voltage=(
                    float(voltages[i]) if voltages is not None else default_v
                ),
            )
            for i in range(bank_count)
        )
        return cls(
            levels=(StorageLevel(name="rf", kind="register"), *banks)
        )

    def to_dict(self) -> dict:
        """JSON-ready representation of the hierarchy."""
        return {
            "schema": STORAGE_SCHEMA,
            "levels": [lvl.to_dict() for lvl in self.levels],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "StorageSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        schema = data.get("schema", STORAGE_SCHEMA)
        if schema != STORAGE_SCHEMA:
            raise AllocationError(
                f"unknown storage spec schema {schema!r} "
                f"(expected {STORAGE_SCHEMA!r})"
            )
        return cls(
            levels=tuple(
                StorageLevel.from_dict(lvl) for lvl in data["levels"]
            )
        )


@dataclass(frozen=True)
class BankStructure:
    """Derived per-bank time structure the network/verify layers share.

    One era-chain per bank: a bank's timeline is quantised into *slots*
    between consecutive access steps; values can only enter or leave the
    bank at slot boundaries, and each boundary admits at most ``ports``
    simultaneous accesses (the bank-conflict time cuts).

    Attributes:
        index: Position in :attr:`StorageSpec.banks`.
        level: The bank's :class:`StorageLevel`.
        access_steps: Sorted access steps, or ``None`` if unrestricted.
        era: ``era[k]`` = number of access steps ``<= k`` for each step
            ``0 .. horizon + 1`` — the bank's era chain (``None`` when
            unrestricted; every step is its own boundary then).
    """

    index: int
    level: StorageLevel
    access_steps: tuple[int, ...] | None
    era: tuple[int, ...] | None

    @property
    def slot_count(self) -> int:
        """Number of inter-access slots in the era chain."""
        if self.access_steps is None:
            return 0
        return max(len(self.access_steps) - 1, 0)


def bank_structures(
    spec: StorageSpec, horizon: int
) -> tuple[BankStructure, ...]:
    """Per-bank era chains of *spec* over a block of *horizon* steps."""
    structures = []
    for index, bank in enumerate(spec.banks):
        times = bank.access_times(horizon)
        if times is None:
            structures.append(
                BankStructure(
                    index=index, level=bank, access_steps=None, era=None
                )
            )
            continue
        steps = tuple(sorted(times))
        era = []
        count = 0
        position = 0
        for k in range(horizon + 2):
            while position < len(steps) and steps[position] <= k:
                count += 1
                position += 1
            era.append(count)
        structures.append(
            BankStructure(
                index=index,
                level=bank,
                access_steps=steps,
                era=tuple(era),
            )
        )
    return tuple(structures)


def segment_bank_legal(
    lifetime: Lifetime,
    segment: Segment,
    access_times: frozenset[int] | None,
) -> bool:
    """Section-5.2 memory legality of *segment* against one bank.

    The splitter's rule evaluated for a single bank's access set: the
    value must reach the bank by the segment start (some access step
    between the write and the start) and every served read must be one
    of the bank's access steps (the live-out pseudo-read at block end is
    always legal).  ``None`` means the bank is unrestricted.
    """
    if access_times is None:
        return True
    reaches = any(
        lifetime.write_time <= m <= segment.start for m in access_times
    )
    if not reaches:
        return False
    return all(
        r in access_times or (lifetime.live_out and r == lifetime.end)
        for r in segment.reads
    )


def banking_forced_keys(
    spec: StorageSpec,
    lifetimes: Mapping[str, Lifetime],
    segments: Mapping[str, Iterable[Segment]],
    horizon: int,
) -> frozenset[tuple[str, int]]:
    """Segments forced to registers by bank fragmentation.

    A segment can be legal under the *union* of all banks' access steps
    (so the splitter leaves it unforced) while being legal in *no single
    bank* — its reads straddle two banks' access phases.  Such segments
    can never actually be memory-resident and receive a flow lower bound
    of 1, exactly like classically forced segments.  Empty for
    single-bank (degenerate) specs.
    """
    if spec.is_degenerate:
        return frozenset()
    per_bank = spec.bank_access_times(horizon)
    forced: set[tuple[str, int]] = set()
    for name, segs in segments.items():
        lifetime = lifetimes[name]
        for segment in segs:
            if segment.forced:
                continue  # already forced by the union rule
            if not any(
                segment_bank_legal(lifetime, segment, times)
                for times in per_bank
            ):
                forced.add(segment.key)
    return frozenset(forced)
