"""Pre-allocation program transformations (paper section 5 methodology)."""

from repro.transforms.regeneration import (
    apply_regeneration,
    regenerate,
    regeneration_candidates,
)

__all__ = [
    "apply_regeneration",
    "regenerate",
    "regeneration_candidates",
]
