"""Data regeneration (recompute-instead-of-store).

The paper's methodology performs "transformations ... within each task
such as data regeneration" before the allocation flow (section 5, citing
[20, 21]: trading extra computation against memory traffic).  The idea:
when a value is consumed several times and recomputing it is cheaper than
keeping it alive in storage, clone its producing operation in front of the
later consumers so every copy is single-use.

This implementation takes the conservative, always-sound subset:

* only values whose producer reads *source operands exclusively*
  (block inputs / constants) are regenerated;
* the operands must be *nearly live* across the value's reads already:
  using program-order positions as a time proxy, the lifetime span the
  regeneration removes from the value must exceed the total span it adds
  to the operands (the regeneration papers' profitable regime — e.g. a
  filter coefficient reused late in the block extends by nothing);
* a value is a candidate when the energy of one recomputation
  (the operation's own energy plus register reads for its operands) is
  below the storage read it replaces;
* the transformed block remains single-assignment: clone ``i`` defines
  ``v__regen<i>`` and the corresponding consumer is rewired.

The transformation changes the *program*; its energy effect is then
evaluated exactly by scheduling and allocating the transformed block.
"""

from __future__ import annotations

from dataclasses import replace

from repro.energy.models import EnergyModel
from repro.exceptions import GraphError
from repro.ir.basic_block import BasicBlock
from repro.ir.operations import OpCode, Operation

__all__ = ["regeneration_candidates", "apply_regeneration", "regenerate"]

#: Opcodes whose outputs are "source operands" — always available without
#: dedicated storage pressure attributable to the regeneration.
_SOURCE_OPCODES = frozenset({OpCode.INPUT, OpCode.CONST})


def _recompute_cost(
    producer: Operation, model: EnergyModel, block: BasicBlock
) -> float:
    """Energy of one extra evaluation of *producer*.

    The operation's datapath energy (relative units, [14] ratios) plus a
    register read per operand.
    """
    operand_reads = sum(
        model.reg_read(block.variable(name)) for name in producer.inputs
    )
    return producer.opcode.relative_energy + operand_reads


def regeneration_candidates(
    block: BasicBlock,
    model: EnergyModel,
) -> dict[str, float]:
    """Values worth regenerating, with their per-read energy saving.

    Args:
        block: The block to analyse.
        model: Energy model used to price storage vs recomputation.

    Returns:
        Variable name → estimated saving per replaced read (positive).
        Only multi-consumer values produced purely from source operands
        qualify.
    """
    position = {op.name: index for index, op in enumerate(block)}

    def last_consumer_position(name: str, excluding: str) -> int:
        consumers = [
            c for c in block.consumers(name) if c.name != excluding
        ]
        return max((position[c.name] for c in consumers), default=-1)

    savings: dict[str, float] = {}
    for op in block:
        if op.output is None or op.opcode in _SOURCE_OPCODES:
            continue
        consumers = block.consumers(op.output)
        if len(consumers) < 2:
            continue
        if op.output in block.live_out:
            continue  # the stored copy is needed past the block anyway
        if not op.inputs:
            continue
        if not all(
            block.producer(name).opcode in _SOURCE_OPCODES
            for name in op.inputs
        ):
            continue
        # Storage-span arithmetic in program-order positions: removing
        # the value's tail must outweigh the operand lifetimes the clones
        # stretch; otherwise regeneration trades one long lifetime for
        # several.
        value_first = min(position[c.name] for c in consumers)
        value_last = max(position[c.name] for c in consumers)
        span_removed = value_last - value_first
        span_added = sum(
            max(
                0,
                value_last
                - last_consumer_position(operand, excluding=op.name),
            )
            for operand in op.inputs
        )
        if span_added >= span_removed:
            continue
        recompute = _recompute_cost(op, model, block)
        # Worst-case storage read replaced: a memory read; even the
        # optimistic register read keeps the value's lifetime long, so we
        # price against the memory read as [20]/[21] do.
        replaced = model.mem_read(block.variable(op.output))
        if recompute < replaced:
            savings[op.output] = replaced - recompute
    return savings


def apply_regeneration(
    block: BasicBlock, variables: list[str] | tuple[str, ...]
) -> BasicBlock:
    """Clone producers so each listed variable is consumed exactly once.

    Args:
        block: The block to transform.
        variables: Names from :func:`regeneration_candidates` (validated).

    Returns:
        A new single-assignment block; for each variable ``v`` with
        consumers ``c1..ck``, consumers ``c2..ck`` now read fresh clones
        ``v__regen1..``.
    """
    for name in variables:
        if len(block.consumers(name)) < 2:
            raise GraphError(f"{name!r} has fewer than two consumers")
        producer = block.producer(name)
        if any(
            block.producer(read).opcode not in _SOURCE_OPCODES
            for read in producer.inputs
        ):
            raise GraphError(
                f"{name!r} is not regenerable: producer reads "
                "non-source operands"
            )

    chosen = set(variables)
    operations: list[Operation] = []
    declared = list(block.variables.values())
    seen_consumers: dict[str, int] = {}
    for op in block.operations:
        new_inputs = list(op.inputs)
        for position, read in enumerate(op.inputs):
            if read not in chosen:
                continue
            count = seen_consumers.get(read, 0)
            seen_consumers[read] = count + 1
            if count == 0:
                continue  # first consumer keeps the original value
            clone_value = f"{read}__regen{count}"
            producer = block.producer(read)
            operations.append(
                replace(
                    producer,
                    name=f"{producer.name}__regen{count}",
                    output=clone_value,
                )
            )
            original = block.variable(read)
            declared.append(replace(original, name=clone_value))
            new_inputs[position] = clone_value
        operations.append(replace(op, inputs=tuple(new_inputs)))
    return BasicBlock.from_operations(
        f"{block.name}+regen",
        operations,
        live_out=block.live_out,
        variables=declared,
    )


def regenerate(block: BasicBlock, model: EnergyModel) -> BasicBlock:
    """Apply every profitable regeneration to *block* (fixed-point-free:
    one analysis pass suffices because clones are single-use)."""
    candidates = regeneration_candidates(block, model)
    if not candidates:
        return block
    return apply_regeneration(block, sorted(candidates))
