"""Structured tracing core: spans, counters, gauges, and the collector.

This module is the zero-dependency heart of :mod:`repro.obs`.  It keeps a
*process-global* collector slot; instrumented code calls the module-level
:func:`span`, :func:`count` and :func:`gauge` functions unconditionally and
pays almost nothing when no collector is installed:

* :func:`span` returns a pre-allocated no-op context manager — no object is
  created on the disabled path;
* :func:`count` / :func:`gauge` are a single attribute load and an ``is
  None`` test.

When a collector *is* installed (usually via the :func:`collect` context
manager), spans nest into a per-thread tree of :class:`Span` nodes timed
with :func:`time.perf_counter`, and counters/gauges accumulate into
lock-protected dictionaries, so concurrent solves on different threads
aggregate into one trace safely.  A span must be entered and exited on the
same thread; spans opened by different threads form separate root trees.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Span",
    "TraceCollector",
    "collect",
    "count",
    "current",
    "enabled",
    "gauge",
    "install",
    "span",
    "uninstall",
]


class Span:
    """One timed region in a trace's span tree.

    Spans are created by :meth:`TraceCollector.span` (usually through the
    module-level :func:`span` helper) and act as context managers: entering
    records the start time and pushes the span on the calling thread's
    stack, exiting records the end time and attaches the span to its parent
    (or to the collector's roots when it is outermost).
    """

    __slots__ = ("name", "start", "end", "children", "_collector")

    def __init__(self, name: str, collector: "TraceCollector") -> None:
        self.name = name
        self.start = 0.0
        self.end = 0.0
        self.children: list[Span] = []
        self._collector = collector

    @property
    def duration(self) -> float:
        """Wall time spent inside the span, in seconds."""
        return self.end - self.start

    def find(self, name: str) -> "Span | None":
        """First span named *name* in this subtree (depth-first), or None."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator[tuple[int, "Span"]]:
        """Yield ``(depth, span)`` pairs over the subtree, depth-first."""
        stack: list[tuple[int, Span]] = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation: name, duration and children."""
        return {
            "name": self.name,
            "duration_s": self.duration,
            "children": [child.to_dict() for child in self.children],
        }

    def __enter__(self) -> "Span":
        self._collector._stack().append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        collector = self._collector
        stack = collector._stack()
        stack.pop()
        if stack:
            stack[-1].children.append(self)
        else:
            collector._attach_root(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1e3:.3f}ms)"


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class TraceCollector:
    """Thread-safe sink for spans, counters and gauges of one trace.

    The collector is also the finished trace: after the traced region ends,
    read :attr:`roots`, :attr:`counters` and :attr:`gauges` (all return
    copies / immutable views) or feed the collector to the exporters in
    :mod:`repro.obs.export`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: list[Span] = []
        self._counters: dict[str, int | float] = {}
        self._gauges: dict[str, Any] = {}

    # -- recording ------------------------------------------------------
    def span(self, name: str) -> Span:
        """Create an (unentered) span bound to this collector."""
        return Span(name, self)

    def add(self, name: str, amount: int | float = 1) -> None:
        """Increment counter *name* by *amount* (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: Any) -> None:
        """Record gauge *name* = *value* (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _attach_root(self, span_node: Span) -> None:
        with self._lock:
            self._roots.append(span_node)

    # -- reading --------------------------------------------------------
    @property
    def roots(self) -> tuple[Span, ...]:
        """Completed top-level spans, in completion order."""
        with self._lock:
            return tuple(self._roots)

    @property
    def counters(self) -> dict[str, int | float]:
        """Snapshot copy of all counters."""
        with self._lock:
            return dict(self._counters)

    @property
    def gauges(self) -> dict[str, Any]:
        """Snapshot copy of all gauges."""
        with self._lock:
            return dict(self._gauges)

    def counter(self, name: str, default: int | float = 0) -> int | float:
        """Value of counter *name*, or *default* when never incremented."""
        with self._lock:
            return self._counters.get(name, default)

    def find(self, name: str) -> Span | None:
        """First root-tree span named *name* (depth-first), or ``None``."""
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None


#: Process-global collector slot; ``None`` means tracing is disabled.
_collector: TraceCollector | None = None
_install_lock = threading.Lock()


def enabled() -> bool:
    """Whether a collector is currently installed."""
    return _collector is not None


def current() -> TraceCollector | None:
    """The installed collector, or ``None`` when tracing is disabled."""
    return _collector


def install(collector: TraceCollector) -> None:
    """Install *collector* as the process-global trace sink."""
    global _collector
    with _install_lock:
        _collector = collector


def uninstall() -> None:
    """Remove the installed collector, disabling tracing."""
    global _collector
    with _install_lock:
        _collector = None


def span(name: str) -> Span | _NoopSpan:
    """A context manager timing *name*; a shared no-op when disabled."""
    collector = _collector
    if collector is None:
        return _NOOP_SPAN
    return collector.span(name)


def count(name: str, amount: int | float = 1) -> None:
    """Increment counter *name* on the installed collector, if any."""
    collector = _collector
    if collector is not None:
        collector.add(name, amount)


def gauge(name: str, value: Any) -> None:
    """Record gauge *name* on the installed collector, if any."""
    collector = _collector
    if collector is not None:
        collector.set_gauge(name, value)


@contextmanager
def collect() -> Iterator[TraceCollector]:
    """Install a fresh collector for the ``with`` body and yield it.

    The previously installed collector (if any) is restored on exit, so
    ``collect()`` blocks may nest; the inner block captures exclusively.
    """
    global _collector
    with _install_lock:
        previous = _collector
        collector = TraceCollector()
        _collector = collector
    try:
        yield collector
    finally:
        with _install_lock:
            _collector = previous
