"""Trace exporters: JSON, CSV, and a human-readable table.

All exporters consume a :class:`~repro.obs.trace.TraceCollector` after its
traced region ended and produce pure data (dicts of names and numbers) or
plain text, so downstream tools never need this package's types.  Span
trees flatten to slash-joined paths (``pipeline.allocate/solver.flow_solve``)
in the tabular formats and stay nested in the dict/JSON form.
"""

from __future__ import annotations

import io
import json
from typing import Any, Iterator

from repro.obs.trace import Span, TraceCollector

__all__ = [
    "counter_group",
    "flatten_spans",
    "format_trace",
    "metrics_text",
    "trace_to_csv",
    "trace_to_dict",
    "trace_to_json",
]


def _metric_name(name: str) -> str:
    """Sanitise a counter/gauge name into ``[a-zA-Z0-9_:]`` charset."""
    return "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )


def metrics_text(
    counters: "dict[str, int | float] | Any",
    gauges: "dict[str, Any] | None" = None,
) -> str:
    """Prometheus-style text exposition of counters and gauges.

    One ``name value`` line per metric, names sanitised to the
    ``[a-zA-Z0-9_:]`` charset (dots become underscores), counters
    suffixed ``_total`` per convention.  Non-numeric gauge values are
    skipped — the text format carries numbers only; the JSON form of
    ``/metrics`` keeps everything.  Accepts either plain dicts or a
    :class:`TraceCollector` as the first argument.
    """
    if isinstance(counters, TraceCollector):
        collector = counters
        counters = collector.counters
        gauges = collector.gauges if gauges is None else gauges
    lines = []
    for name, value in sorted(counters.items()):
        lines.append(f"{_metric_name(name)}_total {value}")
    for name, value in sorted((gauges or {}).items()):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        lines.append(f"{_metric_name(name)} {value}")
    return "\n".join(lines) + ("\n" if lines else "")


def counter_group(
    counters: "dict[str, int | float] | Any",
    prefix: str,
    strip: bool = True,
) -> dict[str, int | float]:
    """Sorted sub-dict of counters under a dotted *prefix*.

    Used by metrics endpoints to carve a named section (for example
    ``service.lint.*``) out of the flat counter map.  With *strip* the
    prefix (and its trailing dot) is removed from the keys.  Accepts a
    plain dict or a :class:`TraceCollector`.
    """
    if isinstance(counters, TraceCollector):
        counters = counters.counters
    head = prefix if prefix.endswith(".") else prefix + "."
    return {
        (name[len(head):] if strip else name): value
        for name, value in sorted(counters.items())
        if name.startswith(head)
    }


def trace_to_dict(trace: TraceCollector) -> dict[str, Any]:
    """JSON-ready dict with nested ``spans``, ``counters`` and ``gauges``."""
    return {
        "spans": [root.to_dict() for root in trace.roots],
        "counters": dict(sorted(trace.counters.items())),
        "gauges": dict(sorted(trace.gauges.items())),
    }


def trace_to_json(trace: TraceCollector, indent: int = 2) -> str:
    """Render :func:`trace_to_dict` as JSON text."""
    return json.dumps(trace_to_dict(trace), indent=indent, sort_keys=True)


def flatten_spans(trace: TraceCollector) -> list[tuple[str, float]]:
    """``(path, duration_s)`` pairs for every span, depth-first.

    Paths join nested span names with ``/`` so sibling repeats stay
    distinguishable by position in the ordered list.
    """

    def visit(node: Span, prefix: str) -> Iterator[tuple[str, float]]:
        path = f"{prefix}/{node.name}" if prefix else node.name
        yield path, node.duration
        for child in node.children:
            yield from visit(child, path)

    rows: list[tuple[str, float]] = []
    for root in trace.roots:
        rows.extend(visit(root, ""))
    return rows


def trace_to_csv(trace: TraceCollector) -> str:
    """CSV with one ``kind,name,value`` row per span, counter and gauge."""
    import csv

    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(("kind", "name", "value"))
    for path, duration in flatten_spans(trace):
        writer.writerow(("span", path, f"{duration:.9f}"))
    for name, value in sorted(trace.counters.items()):
        writer.writerow(("counter", name, value))
    for name, value in sorted(trace.gauges.items()):
        writer.writerow(("gauge", name, value))
    return buffer.getvalue()


def format_trace(trace: TraceCollector) -> str:
    """Human-readable report: an indented span tree plus value tables."""
    from repro.analysis.tables import format_table

    lines: list[str] = []
    roots = trace.roots
    if roots:
        lines.append("spans (wall time):")
        for root in roots:
            for depth, node in root.walk():
                indent = "  " * (depth + 1)
                lines.append(
                    f"{indent}{node.name:<{max(1, 40 - 2 * depth)}}"
                    f"{node.duration * 1e3:10.3f} ms"
                )
    counters = trace.counters
    if counters:
        if lines:
            lines.append("")
        lines.append(
            format_table(
                ("counter", "value"),
                sorted(counters.items()),
            )
        )
    gauges = trace.gauges
    if gauges:
        if lines:
            lines.append("")
        lines.append(
            format_table(
                ("gauge", "value"),
                sorted(gauges.items()),
            )
        )
    if not lines:
        return "(empty trace)"
    return "\n".join(lines)
