"""Observability: structured tracing, solver counters, and run reports.

Zero-dependency instrumentation substrate for the whole allocator.  The hot
paths (:mod:`repro.flow.ssp`, :mod:`repro.flow.cycle_canceling`,
:mod:`repro.core.network_builder`, :mod:`repro.core.solver`,
:mod:`repro.core.pipeline`) call into this package unconditionally; when no
collector is installed every call is a no-op costing one attribute load, so
tracing-off overhead is unmeasurable (<2% on the solver-scaling bench, see
``tests/obs``).

Span / counter API
==================

``span(name)``
    Context manager timing a region with :func:`time.perf_counter`.  Spans
    nest into a per-thread tree; when tracing is disabled a shared no-op
    span is returned and **nothing is allocated**.

``count(name, amount=1)``
    Increment a named monotonic counter (e.g. ``"ssp.dijkstra_pops"``).
    Counters accumulate across every solve captured by the collector.

``gauge(name, value)``
    Record a point-in-time value (last write wins), e.g. the density-region
    count of the most recently built network.

``collect()``
    Context manager installing a fresh :class:`TraceCollector` process-wide
    for the body and yielding it; the previous collector is restored on
    exit.  ``install(collector)`` / ``uninstall()`` are the non-scoped
    variants, ``enabled()`` / ``current()`` inspect the registry.

Example::

    from repro import allocate_block, fir_filter, obs

    with obs.collect() as trace:
        allocate_block(fir_filter(taps=8), register_count=4)
    print(trace.counters["ssp.augmenting_paths"])
    print(obs.format_trace(trace))          # human-readable report
    print(obs.trace_to_json(trace))         # machine-readable report

Instrumented names
==================

Counters: ``ssp.solves``, ``ssp.dijkstra_pops``,
``ssp.dijkstra_relaxations``, ``ssp.augmenting_paths``,
``ssp.potential_updates``, ``cycle_canceling.solves``,
``cycle_canceling.augmentations``, ``cycle_canceling.cycles_canceled``,
``cycle_canceling.bellman_ford_passes``, ``network.builds``,
``network.nodes_built``, ``network.arcs_built``.  Gauges:
``network.density_regions``.  Spans: ``pipeline.schedule``,
``pipeline.build_problem``, ``pipeline.allocate``, ``pipeline.reallocate``,
``solver.build_network``, ``solver.flow_solve``, ``solver.validate``,
``solver.extract``.

Exporters and run reports
=========================

:mod:`repro.obs.export` turns a finished trace into a dict / JSON / CSV /
aligned text table; :mod:`repro.obs.profile` wraps a full pipeline run into
a versioned *run report* (the ``repro.obs/run-report/v1`` schema emitted by
``repro-alloc profile`` and the benchmark hook in
``benchmarks/conftest.py``).
"""

from repro.obs.export import (
    counter_group,
    flatten_spans,
    format_trace,
    metrics_text,
    trace_to_csv,
    trace_to_dict,
    trace_to_json,
)
from repro.obs.profile import (
    SCHEMA,
    build_report,
    format_report,
    profile_block,
    report_to_csv,
    report_to_json,
)
from repro.obs.trace import (
    Span,
    TraceCollector,
    collect,
    count,
    current,
    enabled,
    gauge,
    install,
    span,
    uninstall,
)

__all__ = [
    "SCHEMA",
    "Span",
    "TraceCollector",
    "build_report",
    "collect",
    "count",
    "counter_group",
    "current",
    "enabled",
    "flatten_spans",
    "format_report",
    "format_trace",
    "gauge",
    "install",
    "metrics_text",
    "profile_block",
    "report_to_csv",
    "report_to_json",
    "span",
    "trace_to_csv",
    "trace_to_dict",
    "trace_to_json",
    "uninstall",
]
