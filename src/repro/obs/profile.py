"""Run reports: one JSON document per profiled pipeline run.

A *run report* is the schema shared by ``repro-alloc profile``, the
benchmark opt-in hook in ``benchmarks/conftest.py`` and any future perf
trajectory tooling (the ``BENCH_*.json`` files).  Version ``v1`` layout::

    {
      "schema": "repro.obs/run-report/v1",
      "workload": "fir",                  # workload / bench name
      "params": {"registers": 4, ...},    # free-form run parameters
      "wall_time_s": 0.0123,              # end-to-end wall time
      "stages": {"pipeline.allocate": 0.01,
                 "pipeline.allocate/solver.flow_solve": 0.006, ...},
      "trace": {"spans": [...],           # nested span tree
                "counters": {"ssp.dijkstra_pops": 451, ...},
                "gauges": {"network.density_regions": 2, ...}},
      "allocation": {"objective": ..., "registers_used": ...,
                     "address_count": ..., "mem_accesses": ...,
                     "reg_accesses": ..., "total_energy": ...}
    }

``stages`` flattens the span tree into slash-joined paths for quick
consumption; the full tree stays under ``trace``.  Reports are pure data —
they round-trip through :func:`json.dumps` / :func:`json.loads` unchanged.
"""

from __future__ import annotations

import io
import json
import time
from typing import Any

from repro.obs.export import flatten_spans, trace_to_dict
from repro.obs.trace import TraceCollector, collect

__all__ = [
    "SCHEMA",
    "build_report",
    "format_report",
    "profile_block",
    "report_to_csv",
    "report_to_json",
]

#: Schema identifier stamped on every run report.
SCHEMA = "repro.obs/run-report/v1"


def build_report(
    *,
    workload: str,
    trace: TraceCollector,
    params: dict[str, Any] | None = None,
    wall_time_s: float | None = None,
    allocation: Any = None,
) -> dict[str, Any]:
    """Assemble a run-report dict from a finished trace.

    Args:
        workload: Workload or benchmark name the trace belongs to.
        trace: The collector captured around the run.
        params: Free-form run parameters (register count, seed, ...).
        wall_time_s: End-to-end wall time; defaults to the sum of the
            trace's root-span durations.
        allocation: Optional :class:`~repro.core.allocation.Allocation`
            whose headline numbers are summarised under ``allocation``.

    Returns:
        A JSON-ready dict following :data:`SCHEMA`.
    """
    if wall_time_s is None:
        wall_time_s = sum(root.duration for root in trace.roots)
    report: dict[str, Any] = {
        "schema": SCHEMA,
        "workload": workload,
        "params": dict(params or {}),
        "wall_time_s": wall_time_s,
        "stages": {path: duration for path, duration in flatten_spans(trace)},
        "trace": trace_to_dict(trace),
    }
    if allocation is not None:
        report["allocation"] = {
            "objective": allocation.objective,
            "registers_used": allocation.registers_used,
            "unused_registers": allocation.unused_registers,
            "address_count": allocation.address_count,
            "mem_accesses": allocation.report.mem_accesses,
            "reg_accesses": allocation.report.reg_accesses,
            "total_energy": allocation.report.total_energy,
        }
    return report


def profile_block(
    block: Any,
    register_count: int,
    *,
    energy_model: Any = None,
    memory: Any = None,
    workload: str | None = None,
    params: dict[str, Any] | None = None,
    **options: Any,
) -> dict[str, Any]:
    """Run the full pipeline on *block* under tracing; return a run report.

    Schedules the block, builds the problem, solves the flow and runs the
    memory-reallocation pass — all inside a fresh collector — then packages
    the captured spans and counters with :func:`build_report`.

    Args:
        block: The :class:`~repro.ir.basic_block.BasicBlock` to profile.
        register_count: Register file size ``R``.
        energy_model: Forwarded to the pipeline (default static model).
        memory: Memory operating point (default full speed).
        workload: Report name; defaults to ``block.name``.
        params: Extra run parameters recorded verbatim in the report.
        **options: Forwarded to
            :func:`repro.core.pipeline.allocate_block`.
    """
    from repro.core.pipeline import allocate_block

    start = time.perf_counter()
    with collect() as trace:
        result = allocate_block(
            block,
            register_count=register_count,
            energy_model=energy_model,
            memory=memory,
            **options,
        )
    wall = time.perf_counter() - start
    return build_report(
        workload=workload or block.name,
        trace=trace,
        params=params,
        wall_time_s=wall,
        allocation=result.allocation,
    )


def report_to_json(report: dict[str, Any], indent: int = 2) -> str:
    """Render a run report as JSON text (sorted keys, trailing newline)."""
    return json.dumps(report, indent=indent, sort_keys=True) + "\n"


def report_to_csv(report: dict[str, Any]) -> str:
    """CSV view of a run report: stages, counters, gauges and summary."""
    import csv

    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(("kind", "name", "value"))
    writer.writerow(("meta", "schema", report["schema"]))
    writer.writerow(("meta", "workload", report["workload"]))
    writer.writerow(("meta", "wall_time_s", f"{report['wall_time_s']:.9f}"))
    for path, duration in sorted(report["stages"].items()):
        writer.writerow(("stage", path, f"{duration:.9f}"))
    trace = report.get("trace", {})
    for name, value in sorted(trace.get("counters", {}).items()):
        writer.writerow(("counter", name, value))
    for name, value in sorted(trace.get("gauges", {}).items()):
        writer.writerow(("gauge", name, value))
    for name, value in sorted(report.get("allocation", {}).items()):
        writer.writerow(("allocation", name, value))
    return buffer.getvalue()


def format_report(report: dict[str, Any]) -> str:
    """Human-readable run report (tables for stages, counters, summary)."""
    from repro.analysis.tables import format_table

    lines = [
        f"run report — {report['workload']} "
        f"(wall {report['wall_time_s'] * 1e3:.2f} ms)",
    ]
    params = report.get("params")
    if params:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
        lines.append(f"params: {rendered}")
    stages = report.get("stages", {})
    if stages:
        lines.append("")
        lines.append(
            format_table(
                ("stage", "ms"),
                [
                    (path, duration * 1e3)
                    for path, duration in sorted(stages.items())
                ],
            )
        )
    trace = report.get("trace", {})
    counters = trace.get("counters", {})
    gauges = trace.get("gauges", {})
    if counters or gauges:
        lines.append("")
        lines.append(
            format_table(
                ("counter", "value"),
                sorted(counters.items()) + sorted(gauges.items()),
            )
        )
    allocation = report.get("allocation")
    if allocation:
        lines.append("")
        lines.append(
            format_table(("result", "value"), sorted(allocation.items()))
        )
    return "\n".join(lines)
