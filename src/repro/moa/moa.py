"""Multiple offset assignment (MOA): several address registers.

With ``k`` address registers the access sequence is served by whichever
AR currently points nearest: variables are partitioned among the ARs and
each AR runs SOA over the subsequence of its own variables.  Cost = sum of
per-AR SOA costs (transitions between accesses served by different ARs
are free — the other AR kept its position).

Partition heuristic (Liao-style): seed each AR with the heaviest
still-unassigned access-graph node, then greedily assign every remaining
variable to the AR where it adds the most covered weight; finish with a
local improvement pass that relocates single variables while it helps.
An exact partition search certifies the heuristic on small instances.
"""

from __future__ import annotations

import itertools

from repro.exceptions import AllocationError
from repro.moa.access import access_graph
from repro.moa.cost import CostWeights, sequence_cost
from repro.moa.soa import soa_liao, soa_optimal

__all__ = ["MoaResult", "moa_assign", "moa_cost", "moa_optimal_partition"]


def _subsequence(sequence: list[str], members: set[str]) -> list[str]:
    return [name for name in sequence if name in members]


def moa_cost(
    sequence: list[str],
    partition: list[set[str]],
    weights: CostWeights | None = None,
    exact_soa: bool = False,
) -> float:
    """Total cost of a partition (per-AR SOA costs summed)."""
    total = 0.0
    for members in partition:
        sub = _subsequence(sequence, members)
        if not sub:
            continue
        offsets = soa_optimal(sub) if exact_soa else soa_liao(sub)
        total += sequence_cost(sub, offsets, weights)
    return total


class MoaResult:
    """Outcome of :func:`moa_assign`.

    Attributes:
        partition: Variable sets per address register.
        offsets: Per-AR offset maps (offsets are local to each AR's
            memory region).
        cost: Scalarised total cost under the given weights.
    """

    def __init__(
        self,
        partition: list[set[str]],
        offsets: list[dict[str, int]],
        cost: float,
    ) -> None:
        self.partition = partition
        self.offsets = offsets
        self.cost = cost

    def register_of(self, name: str) -> int:
        for index, members in enumerate(self.partition):
            if name in members:
                return index
        raise AllocationError(f"variable {name!r} not assigned to any AR")


def moa_assign(
    sequence: list[str],
    address_registers: int,
    weights: CostWeights | None = None,
) -> MoaResult:
    """Partition + per-AR SOA for *address_registers* ARs.

    Args:
        sequence: The memory access sequence.
        address_registers: Number of ARs (``>= 1``).
        weights: Objective weights (performance/code/power).

    Returns:
        The heuristic :class:`MoaResult`.
    """
    if address_registers < 1:
        raise AllocationError(
            f"need at least one address register, got {address_registers}"
        )
    variables: list[str] = []
    for name in sequence:
        if name not in variables:
            variables.append(name)
    if not variables:
        return MoaResult(
            [set() for _ in range(address_registers)], [], 0.0
        )
    graph = access_graph(sequence)
    weight_of: dict[str, int] = {v: 0 for v in variables}
    for edge, weight in graph.items():
        for node in edge:
            weight_of[node] += weight

    k = min(address_registers, len(variables))
    seeds = sorted(variables, key=lambda v: (-weight_of[v], v))[:k]
    partition: list[set[str]] = [{seed} for seed in seeds]
    partition.extend(set() for _ in range(address_registers - k))

    def gain(name: str, members: set[str]) -> int:
        return sum(
            weight
            for edge, weight in graph.items()
            if name in edge and (edge - {name}) & members
        )

    for name in variables:
        if any(name in members for members in partition):
            continue
        best = max(
            range(len(partition)),
            key=lambda i: (gain(name, partition[i]), -i),
        )
        partition[best].add(name)

    # Local improvement: relocate single variables while the total cost
    # drops.
    improved = True
    current = moa_cost(sequence, partition, weights)
    while improved:
        improved = False
        for name in variables:
            source = next(
                i for i, members in enumerate(partition) if name in members
            )
            for target in range(len(partition)):
                if target == source:
                    continue
                partition[source].discard(name)
                partition[target].add(name)
                candidate = moa_cost(sequence, partition, weights)
                if candidate < current - 1e-9:
                    current = candidate
                    source = target
                    improved = True
                else:
                    partition[target].discard(name)
                    partition[source].add(name)
    offsets = [
        soa_liao(_subsequence(sequence, members)) if members else {}
        for members in partition
    ]
    return MoaResult(partition, offsets, current)


def moa_optimal_partition(
    sequence: list[str],
    address_registers: int,
    weights: CostWeights | None = None,
    limit: int = 8,
) -> float:
    """Exact MOA cost by exhaustive partition search (tiny instances)."""
    variables: list[str] = []
    for name in sequence:
        if name not in variables:
            variables.append(name)
    if len(variables) > limit:
        raise AllocationError(
            f"exact MOA limited to {limit} variables, got {len(variables)}"
        )
    best = float("inf")
    for labels in itertools.product(
        range(address_registers), repeat=len(variables)
    ):
        partition = [set() for _ in range(address_registers)]
        for name, label in zip(variables, labels):
            partition[label].add(name)
        best = min(
            best,
            moa_cost(sequence, partition, weights, exact_soa=True),
        )
    return best
