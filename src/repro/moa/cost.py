"""Offset-assignment cost model.

A DSP address generation unit steps an address register (AR) through the
memory access sequence.  Moving the AR by ±1 rides the free
auto-increment/decrement; any larger move needs an explicit AR update
instruction.  The paper's closing paragraph says the flow approach "has
recently been extended to solve the multiple offset assignment problem
... where performance, code size and power objective functions are
supported" — so the cost of an assignment is a weighted count of AR
updates:

* performance: one extra cycle per update;
* code size: one extra instruction word per update;
* power: one address-arithmetic operation per update (a 16-bit add in the
  [14] relative scale), plus the address-register write.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import AllocationError

__all__ = ["CostWeights", "transition_cost", "sequence_cost"]


@dataclass(frozen=True)
class CostWeights:
    """Weights of one explicit AR update under the three objectives.

    Attributes:
        cycles: Performance weight (cycles per update).
        words: Code-size weight (instruction words per update).
        energy: Power weight (relative energy per update; the default is
            one 16-bit add plus a cheap register write).
    """

    cycles: float = 1.0
    words: float = 1.0
    energy: float = 1.25

    def __post_init__(self) -> None:
        if min(self.cycles, self.words, self.energy) < 0:
            raise AllocationError("cost weights must be non-negative")

    def update_cost(self) -> float:
        """Scalarised cost of one AR update (sum of the objectives)."""
        return self.cycles + self.words + self.energy

    @classmethod
    def performance_only(cls) -> "CostWeights":
        return cls(cycles=1.0, words=0.0, energy=0.0)

    @classmethod
    def energy_only(cls) -> "CostWeights":
        return cls(cycles=0.0, words=0.0, energy=1.25)


def transition_cost(offset_a: int, offset_b: int) -> int:
    """AR updates needed to move between two offsets (0 or 1)."""
    return 0 if abs(offset_a - offset_b) <= 1 else 1


def sequence_cost(
    sequence: list[str],
    offsets: dict[str, int],
    weights: CostWeights | None = None,
) -> float:
    """Total cost of serving *sequence* with one AR under *offsets*.

    The initial AR load is not charged (every assignment pays it).
    """
    weights = weights or CostWeights()
    updates = 0
    for a, b in zip(sequence, sequence[1:]):
        try:
            updates += transition_cost(offsets[a], offsets[b])
        except KeyError as exc:
            raise AllocationError(
                f"access sequence mentions unplaced variable {exc}"
            ) from None
    return updates * weights.update_cost()
