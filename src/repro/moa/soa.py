"""Simple offset assignment (SOA): one address register.

Choose memory offsets for the variables such that as many adjacent pairs
of the access sequence as possible sit at neighbouring offsets (covered by
free auto-increment/decrement).  Equivalent to finding a maximum-weight
Hamiltonian *path cover* of the access graph (Bartley/Liao): every edge on
the chosen paths is a covered transition; every uncovered transition costs
one explicit AR update.

Implemented here:

* :func:`soa_liao` — Liao's classic greedy: take edges by descending
  weight, rejecting any that would give a node degree > 2 or close a
  cycle; the resulting paths are laid out consecutively.
* :func:`soa_optimal` — exact branch-and-bound over edge subsets for
  small instances (used by the tests to certify the heuristic).
* :func:`soa_naive` — first-use order, the do-nothing baseline.
"""

from __future__ import annotations

import itertools

from repro.exceptions import AllocationError

__all__ = ["soa_naive", "soa_liao", "soa_optimal", "offsets_from_paths"]


def _variables(sequence: list[str]) -> list[str]:
    seen: dict[str, None] = {}
    for name in sequence:
        seen.setdefault(name)
    return list(seen)


def soa_naive(sequence: list[str]) -> dict[str, int]:
    """Offsets in first-use order (the unoptimised layout)."""
    return {name: i for i, name in enumerate(_variables(sequence))}


def offsets_from_paths(
    paths: list[list[str]], all_variables: list[str]
) -> dict[str, int]:
    """Lay the chosen paths out consecutively; isolated variables last."""
    offsets: dict[str, int] = {}
    position = 0
    placed: set[str] = set()
    for path in paths:
        for name in path:
            offsets[name] = position
            placed.add(name)
            position += 1
    for name in all_variables:
        if name not in placed:
            offsets[name] = position
            position += 1
    return offsets


def _paths_from_edges(
    edges: list[frozenset[str]], variables: list[str]
) -> list[list[str]]:
    """Assemble degree-<=2 acyclic edge sets into explicit paths."""
    neighbours: dict[str, list[str]] = {v: [] for v in variables}
    for edge in edges:
        a, b = tuple(edge)
        neighbours[a].append(b)
        neighbours[b].append(a)
    visited: set[str] = set()
    paths: list[list[str]] = []
    # Start from path endpoints (degree <= 1).
    for start in variables:
        if start in visited or len(neighbours[start]) > 1:
            continue
        if not neighbours[start]:
            continue  # isolated: appended by offsets_from_paths
        path = [start]
        visited.add(start)
        current = start
        while True:
            nxt = [n for n in neighbours[current] if n not in visited]
            if not nxt:
                break
            current = nxt[0]
            path.append(current)
            visited.add(current)
        paths.append(path)
    return paths


def soa_liao(sequence: list[str]) -> dict[str, int]:
    """Liao's greedy maximum-weight path cover heuristic."""
    from repro.moa.access import access_graph

    variables = _variables(sequence)
    graph = access_graph(sequence)
    degree: dict[str, int] = {v: 0 for v in variables}
    component: dict[str, str] = {v: v for v in variables}

    def find(v: str) -> str:
        while component[v] != v:
            component[v] = component[component[v]]
            v = component[v]
        return v

    chosen: list[frozenset[str]] = []
    ordered = sorted(
        graph.items(), key=lambda item: (-item[1], sorted(item[0]))
    )
    for edge, _weight in ordered:
        a, b = tuple(edge)
        if degree[a] >= 2 or degree[b] >= 2:
            continue
        if find(a) == find(b):
            continue  # would close a cycle
        chosen.append(edge)
        degree[a] += 1
        degree[b] += 1
        component[find(a)] = find(b)
    paths = _paths_from_edges(chosen, variables)
    return offsets_from_paths(paths, variables)


def soa_optimal(sequence: list[str], limit: int = 9) -> dict[str, int]:
    """Exact SOA by permutation search (small instances only).

    Args:
        sequence: The access sequence.
        limit: Maximum distinct variables accepted (cost grows
            factorially).

    Raises:
        AllocationError: If the instance exceeds *limit* variables.
    """
    from repro.moa.cost import sequence_cost

    variables = _variables(sequence)
    if len(variables) > limit:
        raise AllocationError(
            f"exact SOA limited to {limit} variables, got {len(variables)}"
        )
    if not variables:
        return {}
    best: dict[str, int] | None = None
    best_cost = float("inf")
    for order in itertools.permutations(variables):
        if order[0] > order[-1]:
            continue  # reversal symmetry: mirrored layouts cost the same
        layout = {name: i for i, name in enumerate(order)}
        cost = sequence_cost(sequence, layout)
        if cost < best_cost:
            best, best_cost = layout, cost
    assert best is not None
    return best
