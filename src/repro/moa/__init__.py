"""Offset assignment for DSP address generation (the paper's closing
extension: SOA/MOA with performance, code-size and power objectives)."""

from repro.moa.access import access_graph, access_sequence
from repro.moa.cost import CostWeights, sequence_cost, transition_cost
from repro.moa.moa import MoaResult, moa_assign, moa_cost, moa_optimal_partition
from repro.moa.soa import (
    offsets_from_paths,
    soa_liao,
    soa_naive,
    soa_optimal,
)

__all__ = [
    "CostWeights",
    "MoaResult",
    "access_graph",
    "access_sequence",
    "moa_assign",
    "moa_cost",
    "moa_optimal_partition",
    "offsets_from_paths",
    "sequence_cost",
    "soa_liao",
    "soa_naive",
    "soa_optimal",
    "transition_cost",
]
