"""Memory access sequences and access graphs.

The offset-assignment problems are defined over the *access sequence*:
the time-ordered list of memory variables the generated code touches.
This module derives that sequence from a solved
:class:`~repro.core.allocation.Allocation` (definition writes, reads,
spills and reloads in step order) and builds the *access graph* — nodes
are variables, edge weights count adjacent occurrences in the sequence —
which both the SOA heuristic and the exact solver consume.
"""

from __future__ import annotations

from collections import Counter

from repro.core.allocation import Allocation

__all__ = ["access_sequence", "access_graph"]


def access_sequence(allocation: Allocation) -> list[str]:
    """Memory accesses of *allocation* in execution order.

    Events per step follow the package's timing conventions: reads happen
    at a step's top edge before writes at its bottom edge.  Ties inside
    one edge are ordered by variable name for determinism.

    Returns:
        Variable names, one entry per memory access.
    """
    problem = allocation.problem
    access = problem.access_times
    horizon = problem.horizon
    registered = set(allocation.residency)
    reads: dict[int, list[str]] = {}
    writes: dict[int, list[str]] = {}

    def first_access_at_or_after(step: int) -> int:
        if access is None:
            return step
        later = [m for m in access if m >= step]
        return min(later) if later else horizon + 1

    for name, segments in problem.segments.items():
        if segments[0].key not in registered:
            step = first_access_at_or_after(
                problem.lifetimes[name].write_time
            )
            writes.setdefault(step, []).append(name)
        for seg in segments:
            if seg.key in registered:
                continue
            for read in seg.reads:
                reads.setdefault(read, []).append(name)

    for chain in allocation.chains:
        for position, seg in enumerate(chain):
            previous = chain[position - 1] if position else None
            intra = (
                previous is not None
                and previous.name == seg.name
                and previous.index + 1 == seg.index
            )
            if not intra and not seg.is_first and seg.starts_at_access_cut:
                reads.setdefault(seg.start, []).append(seg.name)  # reload
            exits = (
                position + 1 == len(chain)
                or chain[position + 1].name != seg.name
                or chain[position + 1].index != seg.index + 1
            )
            if exits and not seg.is_last:
                spill = first_access_at_or_after(seg.end)
                writes.setdefault(spill, []).append(seg.name)

    sequence: list[str] = []
    for step in range(1, horizon + 2):
        sequence.extend(sorted(reads.get(step, ())))
        sequence.extend(sorted(writes.get(step, ())))
    return sequence


def access_graph(sequence: list[str]) -> dict[frozenset[str], int]:
    """Adjacency-count access graph of *sequence*.

    Returns:
        Edge (unordered variable pair) → number of adjacent occurrences.
        Self-transitions (same variable twice in a row) are free and
        excluded.
    """
    graph: Counter[frozenset[str]] = Counter()
    for a, b in zip(sequence, sequence[1:]):
        if a != b:
            graph[frozenset((a, b))] += 1
    return dict(graph)
