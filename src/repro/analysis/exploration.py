"""Design-space exploration.

The paper's methodology is a designer's loop: pick a register-file size
and a memory operating point, allocate, look at the energy, repeat.  This
module automates the loop over a grid of register counts and memory
configurations, collects the per-point metrics, marks infeasible points,
and extracts the Pareto frontier over (storage cost, energy) — storage
cost being the number of locations, the "no increase in cost" axis the
paper's introduction emphasises.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Mapping

from repro.analysis.metrics import SolutionMetrics, metrics_of
from repro.analysis.tables import format_table
from repro.core.network_builder import BuiltNetwork, build_network, recost_network
from repro.core.options import SolveOptions
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate, solve_built
from repro.core.storage import StorageSpec
from repro.energy.models import (
    EnergyModel,
    StaticEnergyModel,
    reference_reg_voltage,
)
from repro.energy.voltage import MemoryConfig
from repro.exceptions import GraphError, InfeasibleFlowError
from repro.flow.warm_start import WarmStartCache
from repro.lifetimes.intervals import Lifetime
from repro.obs import trace as obs

__all__ = [
    "DesignPoint",
    "ExplorationResult",
    "explore_design_space",
    "StoragePoint",
    "StorageExplorationResult",
    "explore_storage_space",
    "banked_grid",
]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration.

    Attributes:
        register_count: Register-file size of the point.
        memory: Memory operating point.
        metrics: Solution metrics, or ``None`` when infeasible.
    """

    register_count: int
    memory: MemoryConfig
    metrics: SolutionMetrics | None

    @property
    def feasible(self) -> bool:
        return self.metrics is not None

    @property
    def energy(self) -> float:
        if self.metrics is None:
            raise InfeasibleFlowError(
                f"design point R={self.register_count}, "
                f"f/{self.memory.divisor} is infeasible"
            )
        return self.metrics.energy

    def label(self) -> str:
        return f"R={self.register_count}, f/{self.memory.divisor}"


@dataclass
class ExplorationResult:
    """All evaluated points plus derived views."""

    points: list[DesignPoint]

    def feasible_points(self) -> list[DesignPoint]:
        return [p for p in self.points if p.feasible]

    def best(self) -> DesignPoint:
        """The lowest-energy feasible point."""
        feasible = self.feasible_points()
        if not feasible:
            raise InfeasibleFlowError("no feasible design point")
        return min(feasible, key=lambda p: p.energy)

    def pareto_frontier(self) -> list[DesignPoint]:
        """Points not dominated in (storage locations, energy)."""
        feasible = self.feasible_points()
        frontier = []
        for p in feasible:
            assert p.metrics is not None
            dominated = any(
                q is not p
                and q.metrics is not None
                and q.metrics.storage_locations
                <= p.metrics.storage_locations
                and q.energy <= p.energy
                and (
                    q.metrics.storage_locations
                    < p.metrics.storage_locations
                    or q.energy < p.energy
                )
                for q in feasible
            )
            if not dominated:
                frontier.append(p)
        frontier.sort(
            key=lambda p: (p.metrics.storage_locations, p.energy)  # type: ignore[union-attr]
        )
        return frontier

    def format(self) -> str:
        rows = []
        for p in self.points:
            if p.metrics is None:
                rows.append(
                    (p.register_count, f"f/{p.memory.divisor}",
                     p.memory.voltage, "-", "-", "-")
                )
            else:
                rows.append(
                    (
                        p.register_count,
                        f"f/{p.memory.divisor}",
                        p.memory.voltage,
                        p.metrics.energy,
                        p.metrics.mem_accesses,
                        p.metrics.storage_locations,
                    )
                )
        return format_table(
            ("R", "memory", "supply V", "energy", "mem acc", "locations"),
            rows,
            title="design space ('-' = infeasible)",
        )


def explore_design_space(
    lifetimes: Mapping[str, Lifetime],
    horizon: int,
    register_counts: Iterable[int],
    memory_configs: Iterable[MemoryConfig],
    energy_model: EnergyModel | None = None,
    warm_start: bool = True,
    **problem_options,
) -> ExplorationResult:
    """Evaluate every (register count x memory config) grid point.

    The energy model's memory voltage is rescaled per point to the
    config's supply (register file stays at its own voltage).

    With ``warm_start`` (the default) the sweep exploits that changing
    the memory operating point is a *cost-only* perturbation: per
    register count the flow network is built once and re-costed in place
    (:func:`~repro.core.network_builder.recost_network`), and a shared
    :class:`~repro.flow.warm_start.WarmStartCache` turns every re-solve
    after the first into an incremental re-optimisation whose work is
    proportional to the perturbation, not the instance (1 cold solve +
    N deltas instead of N cold solves).  Results are identical either
    way; set ``warm_start=False`` to force independent cold solves.
    """
    base_model = energy_model or StaticEnergyModel()
    points: list[DesignPoint] = []
    cache = WarmStartCache() if warm_start else None
    built_by_registers: dict[int, BuiltNetwork] = {}
    for memory in memory_configs:
        model = base_model.with_voltages(
            memory.voltage, reference_reg_voltage(base_model)
        )
        for registers in register_counts:
            problem = AllocationProblem(
                lifetimes=lifetimes,
                register_count=registers,
                horizon=horizon,
                energy_model=model,
                memory=memory,
                **problem_options,
            )
            try:
                if cache is None:
                    metrics = metrics_of(allocate(problem), name="flow")
                else:
                    built = built_by_registers.get(registers)
                    if built is not None:
                        try:
                            built = recost_network(built, problem)
                        except GraphError:
                            built = None  # topology moved: rebuild below
                    if built is None:
                        with obs.span("solver.build_network"):
                            built = build_network(problem)
                    built_by_registers[registers] = built
                    metrics = metrics_of(
                        solve_built(built, SolveOptions(warm_cache=cache)),
                        name="flow",
                    )
            except InfeasibleFlowError:
                metrics = None
            points.append(DesignPoint(registers, memory, metrics))
    return ExplorationResult(points)


@dataclass(frozen=True)
class StoragePoint:
    """One evaluated (register count x storage hierarchy) point.

    Attributes:
        register_count: Register-file size of the point.
        spec: The storage hierarchy the point was solved against.
        metrics: Solution metrics, or ``None`` when infeasible.  The
            metrics' energy is the allocation's *total* energy —
            reference objective plus the banking pass's per-bank deltas.
    """

    register_count: int
    spec: StorageSpec
    metrics: SolutionMetrics | None

    @property
    def feasible(self) -> bool:
        return self.metrics is not None

    @property
    def energy(self) -> float:
        if self.metrics is None:
            raise InfeasibleFlowError(
                f"storage point {self.label()} is infeasible"
            )
        return self.metrics.energy

    def label(self) -> str:
        banks = self.spec.banks
        ref = self.spec.reference
        ports = ref.ports if ref.ports is not None else "-"
        cap = ref.capacity if ref.capacity is not None else "-"
        return (
            f"R={self.register_count}, {len(banks)}x f/{ref.divisor} "
            f"(ports {ports}, cap {cap})"
        )


@dataclass
class StorageExplorationResult:
    """All evaluated storage points plus derived views."""

    points: list[StoragePoint]

    def feasible_points(self) -> list[StoragePoint]:
        return [p for p in self.points if p.feasible]

    def best(self) -> StoragePoint:
        """The lowest-total-energy feasible point."""
        feasible = self.feasible_points()
        if not feasible:
            raise InfeasibleFlowError("no feasible storage point")
        return min(feasible, key=lambda p: p.energy)

    def format(self) -> str:
        rows = []
        for p in self.points:
            ref = p.spec.reference
            shape = (
                f"{len(p.spec.banks)}x f/{ref.divisor}"
                f"{'' if ref.ports is None else f' p{ref.ports}'}"
                f"{'' if ref.capacity is None else f' c{ref.capacity}'}"
            )
            if p.metrics is None:
                rows.append((p.register_count, shape, "-", "-", "-"))
            else:
                rows.append(
                    (
                        p.register_count,
                        shape,
                        p.metrics.energy,
                        p.metrics.mem_accesses,
                        p.metrics.storage_locations,
                    )
                )
        return format_table(
            ("R", "banks", "energy", "mem acc", "locations"),
            rows,
            title="storage space ('-' = infeasible)",
        )


def banked_grid(
    bank_counts: Iterable[int],
    periods: Iterable[int],
    port_widths: Iterable[int | None] = (None,),
    capacity: int | None = None,
    stagger: bool = True,
) -> list[StorageSpec]:
    """The bank-count x access-period x port-width sweep grid.

    A convenience producer for :func:`explore_storage_space`; each cell
    is :meth:`StorageSpec.banked` with the shared *capacity*/*stagger*.
    """
    return [
        StorageSpec.banked(
            banks, period, ports=ports, capacity=capacity, stagger=stagger
        )
        for banks in bank_counts
        for period in periods
        for ports in port_widths
    ]


def explore_storage_space(
    lifetimes: Mapping[str, Lifetime],
    horizon: int,
    register_counts: Iterable[int],
    storage_specs: Iterable[StorageSpec],
    energy_model: EnergyModel | None = None,
    warm_start: bool = True,
    **problem_options,
) -> StorageExplorationResult:
    """Evaluate every (register count x storage hierarchy) grid point.

    The multi-bank analogue of :func:`explore_design_space`: each point
    solves the union flow network and runs the bank-placement second
    pass, recording the allocation's *total* energy (reference objective
    plus bank deltas).  The energy model's memory voltage is rescaled
    per point to the spec's reference supply.

    With ``warm_start`` (the default) one
    :class:`~repro.flow.warm_start.WarmStartCache` is shared across the
    whole grid — including the banking pass's pin-and-resolve rounds.
    Specs that differ only in voltages, capacities or port widths build
    identical-topology networks (see
    :meth:`StorageSpec.access_topology`), so every re-solve after the
    first per topology is an incremental re-optimisation.  Results are
    identical either way.
    """
    base_model = energy_model or StaticEnergyModel()
    cache = WarmStartCache() if warm_start else None
    points: list[StoragePoint] = []
    for spec in storage_specs:
        model = base_model.with_voltages(
            spec.reference.voltage, reference_reg_voltage(base_model)
        )
        for registers in register_counts:
            problem = AllocationProblem(
                lifetimes=lifetimes,
                register_count=registers,
                horizon=horizon,
                energy_model=model,
                storage=spec,
                **problem_options,
            )
            options = SolveOptions(warm_cache=cache)
            try:
                allocation = allocate(problem, options)
                metrics = metrics_of(allocation, name="flow")
                if allocation.total_energy != allocation.objective:
                    metrics = replace(
                        metrics, energy=allocation.total_energy
                    )
            except InfeasibleFlowError:
                metrics = None
            points.append(StoragePoint(registers, spec, metrics))
    return StorageExplorationResult(points)
