"""Solution metrics shared by comparisons and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.baselines.common import BaselineResult
from repro.core.allocation import Allocation
from repro.energy.models import EnergyModel
from repro.exceptions import AllocationError
from repro.lifetimes.intervals import Lifetime

__all__ = [
    "SolutionMetrics",
    "metrics_of",
    "improvement_factor",
    "memory_location_switching",
]


@dataclass(frozen=True)
class SolutionMetrics:
    """The figures every experiment reports for one solution.

    Attributes:
        name: Solution label.
        energy: Total storage energy (eq. 1/2 objective).
        mem_accesses / reg_accesses: Access counts.
        registers_used / memory_addresses: Storage locations by kind.
    """

    name: str
    energy: float
    mem_accesses: int
    reg_accesses: int
    registers_used: int
    memory_addresses: int

    @property
    def storage_locations(self) -> int:
        return self.registers_used + self.memory_addresses

    def row(self) -> tuple[object, ...]:
        """Cells for :func:`repro.analysis.tables.format_table`."""
        return (
            self.name,
            self.energy,
            self.mem_accesses,
            self.reg_accesses,
            self.registers_used,
            self.memory_addresses,
        )


#: Headers matching :meth:`SolutionMetrics.row`.
METRIC_HEADERS = (
    "solution",
    "energy",
    "mem acc",
    "reg acc",
    "regs",
    "addrs",
)


def metrics_of(result: Allocation | BaselineResult, name: str | None = None) -> SolutionMetrics:
    """Extract :class:`SolutionMetrics` from either result kind."""
    if isinstance(result, Allocation):
        label = name or "flow"
        return SolutionMetrics(
            name=label,
            energy=result.objective,
            mem_accesses=result.report.mem_accesses,
            reg_accesses=result.report.reg_accesses,
            registers_used=result.registers_used,
            memory_addresses=result.address_count,
        )
    return SolutionMetrics(
        name=name or result.name,
        energy=result.objective,
        mem_accesses=result.report.mem_accesses,
        reg_accesses=result.report.reg_accesses,
        registers_used=result.registers_used,
        memory_addresses=result.address_count,
    )


def improvement_factor(
    baseline: Allocation | BaselineResult | SolutionMetrics | float,
    candidate: Allocation | BaselineResult | SolutionMetrics | float,
) -> float:
    """``baseline energy / candidate energy`` (the paper's "X times")."""

    def energy(value) -> float:
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, SolutionMetrics):
            return value.energy
        return value.objective

    denominator = energy(candidate)
    if denominator <= 0:
        raise AllocationError(
            f"cannot compute improvement over energy {denominator}"
        )
    return energy(baseline) / denominator


def memory_location_switching(
    location_chains: Iterable[Iterable[Lifetime]],
    model: EnergyModel,
) -> float:
    """Total switching energy of memory data lines under a location layout.

    Each chain is the time-ordered sequence of variables sharing one
    address; ``model.reg_write`` supplies the value-replacement energy
    (figure 3's "switching activity in memory" metric).
    """
    total = 0.0
    for chain in location_chains:
        prev = None
        for lifetime in chain:
            total += model.reg_write(
                lifetime.variable, prev.variable if prev is not None else None
            )
            prev = lifetime
    return total
