"""Graphviz (DOT) exporters.

Render the two graphs people always want to *see* when working with this
technique: the dataflow graph of a basic block, and the allocation flow
network with its solved flow highlighted (segment arcs bold when register
resident, handoff arcs labelled with their energy cost).  Output is plain
DOT text — feed it to ``dot -Tsvg`` or any Graphviz viewer.
"""

from __future__ import annotations

from repro.core.allocation import Allocation
from repro.core.network_builder import BuiltNetwork
from repro.ir.basic_block import BasicBlock
from repro.ir.operations import OpCode

__all__ = ["block_to_dot", "network_to_dot"]


def _quote(name: object) -> str:
    return '"' + str(name).replace('"', '\\"') + '"'


def block_to_dot(block: BasicBlock) -> str:
    """DOT rendering of a basic block's dataflow graph.

    Sources are boxes, computations are ellipses, sinks are diamonds;
    edges are labelled with the variable they carry.
    """
    lines = [f"digraph {_quote(block.name)} {{", "  rankdir=TB;"]
    for op in block:
        if op.opcode in (OpCode.INPUT, OpCode.CONST):
            shape = "box"
        elif op.opcode is OpCode.OUTPUT:
            shape = "diamond"
        else:
            shape = "ellipse"
        label = (op.output or op.opcode.value) + "\\n" + op.opcode.value
        lines.append(
            f"  {_quote(op.name)} [shape={shape}, label={_quote(label)}];"
        )
    for producer, consumer in block.dependence_edges():
        variable = producer.output or ""
        lines.append(
            f"  {_quote(producer.name)} -> {_quote(consumer.name)} "
            f"[label={_quote(variable)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def network_to_dot(
    built: BuiltNetwork, allocation: Allocation | None = None
) -> str:
    """DOT rendering of the allocation flow network.

    Args:
        built: The constructed network.
        allocation: When given, arcs carrying flow are drawn bold red and
            labelled with their flow.

    Returns:
        DOT text (nodes ranked by time left to right).
    """
    flows = allocation.flow.flows if allocation is not None else None
    lines = [
        f"digraph {_quote(built.problem and 'allocation')} {{",
        "  rankdir=LR;",
        f"  {_quote('s')} [shape=circle, style=filled, fillcolor=lightblue];",
        f"  {_quote('t')} [shape=circle, style=filled, fillcolor=lightblue];",
    ]
    for node in built.network.nodes:
        if node in ("s", "t"):
            continue
        kind, name, index = node  # ("w"|"r", variable, segment)
        label = f"{kind}{index}({name})"
        lines.append(f"  {_quote(node)} [shape=box, label={_quote(label)}];")
    for arc in built.network.arcs:
        attributes = [f"label={_quote(f'{arc.cost:.2f}')}"]
        if arc.data and arc.data[0] == "segment":
            attributes.append("weight=10")
        if arc.lower > 0:
            attributes.append("color=darkorange")
        if flows is not None and flows[arc.index] > 0:
            attributes.append("penwidth=2.5")
            attributes.append("color=red")
        lines.append(
            f"  {_quote(arc.tail)} -> {_quote(arc.head)} "
            f"[{', '.join(attributes)}];"
        )
    lines.append("}")
    return "\n".join(lines)
