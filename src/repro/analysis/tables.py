"""Plain-text table rendering for benchmark and example output."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table"]


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: Column headers.
        rows: Row cell values (floats render with two decimals).
        title: Optional title line printed above the table.

    Returns:
        The rendered table as a single string.
    """
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
