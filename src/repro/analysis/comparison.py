"""Allocator comparison harness.

Runs the flow allocator against every baseline on the same instance under
the same energy model and collects :class:`SolutionMetrics` per contender —
the engine behind the improvement-sweep benchmark (the paper's headline
"1.4 to 2.5 times" claim) and the CLI ``compare`` command.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.analysis.metrics import (
    METRIC_HEADERS,
    SolutionMetrics,
    improvement_factor,
    metrics_of,
)
from repro.analysis.tables import format_table
from repro.baselines.graph_coloring import graph_coloring_allocate
from repro.baselines.greedy_partition import greedy_partition_allocate
from repro.baselines.left_edge import left_edge_allocate
from repro.baselines.two_phase import two_phase_allocate
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy.models import EnergyModel
from repro.lifetimes.intervals import Lifetime

__all__ = ["Comparison", "compare_allocators", "BASELINES"]

#: Baseline registry: name -> callable(lifetimes, horizon, R, model).
BASELINES: dict[str, Callable] = {
    "two-phase": two_phase_allocate,
    "left-edge": left_edge_allocate,
    "graph-coloring": graph_coloring_allocate,
    "greedy": greedy_partition_allocate,
}


@dataclass
class Comparison:
    """Results of one instance across all contenders.

    Attributes:
        flow: Metrics of the paper's flow allocator.
        baselines: Metrics per baseline name.
    """

    flow: SolutionMetrics
    baselines: dict[str, SolutionMetrics] = field(default_factory=dict)

    def improvement_over(self, baseline: str) -> float:
        """Energy improvement factor of the flow over *baseline*."""
        return improvement_factor(self.baselines[baseline], self.flow)

    def best_baseline(self) -> SolutionMetrics:
        """The strongest (lowest-energy) baseline."""
        return min(self.baselines.values(), key=lambda m: m.energy)

    def format(self, title: str | None = None) -> str:
        rows = [self.flow.row()]
        rows.extend(
            metrics.row() for metrics in self.baselines.values()
        )
        return format_table(METRIC_HEADERS, rows, title=title)


def compare_allocators(
    lifetimes: Mapping[str, Lifetime],
    horizon: int,
    register_count: int,
    model: EnergyModel,
    baselines: tuple[str, ...] = tuple(BASELINES),
    **problem_options,
) -> Comparison:
    """Run the flow allocator and the selected baselines on one instance.

    Args:
        lifetimes: The instance's lifetimes.
        horizon: Block length ``x``.
        register_count: Register-file size ``R``.
        model: Shared energy model.
        baselines: Baseline names from :data:`BASELINES` to include.
        **problem_options: Extra :class:`AllocationProblem` fields for the
            flow allocator (graph style, splitting, memory config).

    Returns:
        The populated :class:`Comparison`.
    """
    problem = AllocationProblem(
        lifetimes=lifetimes,
        register_count=register_count,
        horizon=horizon,
        energy_model=model,
        **problem_options,
    )
    flow_metrics = metrics_of(allocate(problem))
    comparison = Comparison(flow=flow_metrics)
    for name in baselines:
        runner = BASELINES[name]
        result = runner(lifetimes, horizon, register_count, model)
        comparison.baselines[name] = metrics_of(result)
    return comparison
