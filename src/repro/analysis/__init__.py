"""Analysis: solution metrics, allocator comparisons, table rendering."""

from repro.analysis.charts import allocation_chart, lifetime_chart
from repro.analysis.comparison import BASELINES, Comparison, compare_allocators
from repro.analysis.dot import block_to_dot, network_to_dot
from repro.analysis.exploration import (
    DesignPoint,
    ExplorationResult,
    StorageExplorationResult,
    StoragePoint,
    banked_grid,
    explore_design_space,
    explore_storage_space,
)
from repro.analysis.export import (
    allocation_to_dict,
    comparison_to_dict,
    report_to_dict,
    to_json,
)
from repro.analysis.metrics import (
    METRIC_HEADERS,
    SolutionMetrics,
    improvement_factor,
    memory_location_switching,
    metrics_of,
)
from repro.analysis.ports import (
    PortRequirement,
    PortUsage,
    port_usage,
    required_ports,
)
from repro.analysis.tables import format_table

__all__ = [
    "BASELINES",
    "Comparison",
    "DesignPoint",
    "ExplorationResult",
    "METRIC_HEADERS",
    "PortRequirement",
    "PortUsage",
    "SolutionMetrics",
    "StorageExplorationResult",
    "StoragePoint",
    "allocation_chart",
    "allocation_to_dict",
    "banked_grid",
    "block_to_dot",
    "compare_allocators",
    "comparison_to_dict",
    "explore_design_space",
    "explore_storage_space",
    "format_table",
    "improvement_factor",
    "lifetime_chart",
    "memory_location_switching",
    "metrics_of",
    "network_to_dot",
    "port_usage",
    "report_to_dict",
    "required_ports",
    "to_json",
]
