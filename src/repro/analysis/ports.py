"""Storage port analysis.

Section 7 of the paper: "The number of memory or register file ports is
determined from the solution of our network flow problem" — table 1's RSP
solutions need one memory read/write port at full and half speed but two
read ports plus one write port at quarter speed, because restricted access
times cluster the surviving memory traffic onto few steps.

This module recovers per-step access schedules from an
:class:`~repro.core.allocation.Allocation` and derives the port counts a
datapath would need to execute it.

Timing conventions (matching the rest of the package):

* a memory **definition write** of a memory-resident variable happens at
  its write step — or, under restricted access, at the first access step
  at or after it;
* a memory **read** happens at the read step it serves;
* a **spill** write happens at the end step of the register segment it
  evicts; a **reload** read at the start step of the segment it feeds;
* register reads/writes follow the same pattern on the register file;
* block-end pseudo-reads of live-out variables (step ``x + 1``) belong to
  the consuming task and are excluded from port counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.allocation import Allocation

__all__ = ["PortUsage", "PortRequirement", "port_usage", "required_ports"]


@dataclass
class PortUsage:
    """Per-step access counts of one allocation.

    Attributes:
        horizon: Block length ``x``; steps run 1..x.
        mem_reads / mem_writes: Memory accesses per step (index = step).
        reg_reads / reg_writes: Register-file accesses per step.
    """

    horizon: int
    mem_reads: list[int] = field(default_factory=list)
    mem_writes: list[int] = field(default_factory=list)
    reg_reads: list[int] = field(default_factory=list)
    reg_writes: list[int] = field(default_factory=list)

    def mem_accesses_at(self, step: int) -> int:
        return self.mem_reads[step] + self.mem_writes[step]

    def busiest_memory_step(self) -> int:
        """Step with the most simultaneous memory accesses."""
        return max(
            range(1, self.horizon + 1), key=self.mem_accesses_at, default=0
        )


@dataclass(frozen=True)
class PortRequirement:
    """Port counts needed to execute an allocation's access schedule.

    Attributes:
        mem_read_ports: Peak simultaneous memory reads in one step.
        mem_write_ports: Peak simultaneous memory writes in one step.
        mem_rw_ports: Peak total memory accesses in one step (the number
            of shared read/write ports that would suffice).
        reg_read_ports / reg_write_ports / reg_rw_ports: Same for the
            register file.
    """

    mem_read_ports: int
    mem_write_ports: int
    mem_rw_ports: int
    reg_read_ports: int
    reg_write_ports: int
    reg_rw_ports: int

    def describe_memory(self) -> str:
        """Table-1 style description, e.g. ``"2R + 1W"``."""
        return f"{self.mem_read_ports}R + {self.mem_write_ports}W"


def _first_access_at_or_after(
    step: int, access_times: frozenset[int] | None, horizon: int
) -> int:
    if access_times is None:
        return step
    candidates = [m for m in access_times if m >= step]
    return min(candidates) if candidates else horizon + 1


def port_usage(allocation: Allocation) -> PortUsage:
    """Recover the per-step access schedule of *allocation*."""
    problem = allocation.problem
    horizon = problem.horizon
    usage = PortUsage(
        horizon=horizon,
        mem_reads=[0] * (horizon + 2),
        mem_writes=[0] * (horizon + 2),
        reg_reads=[0] * (horizon + 2),
        reg_writes=[0] * (horizon + 2),
    )
    access = problem.access_times
    registered = set(allocation.residency)

    def in_block(step: int) -> bool:
        return 1 <= step <= horizon

    for name, segments in problem.segments.items():
        lifetime = problem.lifetimes[name]
        if segments[0].key not in registered:
            write_step = _first_access_at_or_after(
                lifetime.write_time, access, horizon
            )
            if in_block(write_step):
                usage.mem_writes[write_step] += 1
        for seg in segments:
            target = (
                usage.reg_reads
                if seg.key in registered
                else usage.mem_reads
            )
            for read in seg.reads:
                if in_block(read):
                    target[read] += 1

    for chain in allocation.chains:
        for position, seg in enumerate(chain):
            previous = chain[position - 1] if position else None
            intra = (
                previous is not None
                and previous.name == seg.name
                and previous.index + 1 == seg.index
            )
            if not intra:
                if in_block(seg.start):
                    usage.reg_writes[seg.start] += 1
                if not seg.is_first and seg.starts_at_access_cut:
                    if in_block(seg.start):
                        usage.mem_reads[seg.start] += 1  # reload
            exits_chain = (
                position + 1 == len(chain)
                or chain[position + 1].name != seg.name
                or chain[position + 1].index != seg.index + 1
            )
            if exits_chain and not seg.is_last:
                spill_step = _first_access_at_or_after(
                    seg.end, access, horizon
                )
                if in_block(spill_step):
                    usage.mem_writes[spill_step] += 1
    return usage


def required_ports(allocation: Allocation) -> PortRequirement:
    """Port counts implied by the allocation's access schedule."""
    usage = port_usage(allocation)
    steps = range(1, usage.horizon + 1)
    return PortRequirement(
        mem_read_ports=max((usage.mem_reads[s] for s in steps), default=0),
        mem_write_ports=max((usage.mem_writes[s] for s in steps), default=0),
        mem_rw_ports=max(
            (usage.mem_reads[s] + usage.mem_writes[s] for s in steps),
            default=0,
        ),
        reg_read_ports=max((usage.reg_reads[s] for s in steps), default=0),
        reg_write_ports=max((usage.reg_writes[s] for s in steps), default=0),
        reg_rw_ports=max(
            (usage.reg_reads[s] + usage.reg_writes[s] for s in steps),
            default=0,
        ),
    )
