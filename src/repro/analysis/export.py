"""Result serialisation.

Turns allocations, reports and comparison results into plain dictionaries
(JSON-ready) so downstream tools — RTL generators, design dashboards,
regression trackers — can consume them without importing this package's
types.  All exports are pure data: names, numbers, lists.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.comparison import Comparison
from repro.analysis.metrics import SolutionMetrics
from repro.core.allocation import Allocation
from repro.core.memory_realloc import MemoryLayout
from repro.energy.report import EnergyReport

__all__ = [
    "report_to_dict",
    "allocation_to_dict",
    "comparison_to_dict",
    "to_json",
]


def report_to_dict(report: EnergyReport) -> dict[str, Any]:
    """Access counts and energy components of a report."""
    return {
        "mem_reads": report.mem_reads,
        "mem_writes": report.mem_writes,
        "reg_reads": report.reg_reads,
        "reg_writes": report.reg_writes,
        "mem_energy": report.mem_energy,
        "reg_energy": report.reg_energy,
        "total_energy": report.total_energy,
        "notes": list(report.notes),
    }


def allocation_to_dict(
    allocation: Allocation, layout: MemoryLayout | None = None
) -> dict[str, Any]:
    """Full allocation export: problem summary, chains, residency,
    addresses, metrics."""
    problem = allocation.problem
    data: dict[str, Any] = {
        "problem": {
            "variables": len(problem.lifetimes),
            "horizon": problem.horizon,
            "register_count": problem.register_count,
            "max_density": problem.max_density,
            "graph_style": problem.graph_style,
            "memory_divisor": problem.memory.divisor,
            "memory_voltage": problem.memory.voltage,
        },
        "objective": allocation.objective,
        "registers_used": allocation.registers_used,
        "unused_registers": allocation.unused_registers,
        "address_count": allocation.address_count,
        "chains": [
            [
                {
                    "variable": seg.name,
                    "segment": seg.index,
                    "start": seg.start,
                    "end": seg.end,
                }
                for seg in chain
            ]
            for chain in allocation.chains
        ],
        "memory_addresses": dict(sorted(allocation.memory_addresses.items())),
        "report": report_to_dict(allocation.report),
    }
    if layout is not None:
        data["memory_layout"] = {
            "addresses": dict(sorted(layout.addresses.items())),
            "switching_energy": layout.switching_energy,
        }
    return data


def _metrics_to_dict(metrics: SolutionMetrics) -> dict[str, Any]:
    return {
        "energy": metrics.energy,
        "mem_accesses": metrics.mem_accesses,
        "reg_accesses": metrics.reg_accesses,
        "registers_used": metrics.registers_used,
        "memory_addresses": metrics.memory_addresses,
    }


def comparison_to_dict(comparison: Comparison) -> dict[str, Any]:
    """Comparison export: per-contender metrics and improvement factors."""
    flow = comparison.flow
    return {
        "flow": _metrics_to_dict(flow),
        "baselines": {
            name: {
                **_metrics_to_dict(metrics),
                "improvement_factor": metrics.energy / flow.energy
                if flow.energy
                else None,
            }
            for name, metrics in comparison.baselines.items()
        },
    }


def to_json(data: dict[str, Any], indent: int = 2) -> str:
    """Render an export dictionary as JSON text."""
    return json.dumps(data, indent=indent, sort_keys=True)
