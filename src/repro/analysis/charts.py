"""ASCII lifetime charts.

Renders the paper's figure-style interval diagrams in plain text: one
column per variable, one row per control step, with write/read events and
(optionally) the solved residency — register residents drawn solid,
memory residents dotted.  Used by the examples and handy in notebooks and
test failures.

Example output for figure 3 (one register)::

    step  a  b  c  d  e  f
       1  W        W
       2  |        R  W
       3  R  W        R  W
       4  |  R  W        :
       5  |     |        R
       6        R
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.allocation import Allocation
from repro.lifetimes.intervals import Lifetime

__all__ = ["lifetime_chart", "allocation_chart"]


def lifetime_chart(
    lifetimes: Mapping[str, Lifetime] | Iterable[Lifetime],
    horizon: int,
    in_register: frozenset[str] | set[str] | None = None,
) -> str:
    """Render lifetimes as a step-by-step ASCII chart.

    Args:
        lifetimes: The intervals to draw.
        horizon: Block length ``x`` (rows run 1 .. x+1 to show live-outs).
        in_register: Names drawn as register residents (``|`` spans);
            everything else is dotted (``:``) when the set is given, solid
            when it is ``None``.

    Returns:
        The chart as a string.
    """
    items = (
        list(lifetimes.values())
        if isinstance(lifetimes, Mapping)
        else list(lifetimes)
    )
    items.sort(key=lambda lt: (lt.start, lt.end, lt.name))
    width = max((len(lt.name) for lt in items), default=1)
    width = max(width, 1)

    def span_char(lt: Lifetime) -> str:
        if in_register is None or lt.name in in_register:
            return "|"
        return ":"

    header = "step  " + "  ".join(lt.name.rjust(width) for lt in items)
    lines = [header]
    for step in range(1, horizon + 2):
        cells = []
        for lt in items:
            if step == lt.write_time:
                mark = "W"
            elif step in lt.read_times:
                mark = "R"
            elif lt.write_time < step < lt.end:
                mark = span_char(lt)
            else:
                mark = ""
            cells.append(mark.rjust(width))
        lines.append(f"{step:4d}  " + "  ".join(cells))
    return "\n".join(line.rstrip() for line in lines)


def allocation_chart(allocation: Allocation) -> str:
    """Chart an allocation: register residents solid, memory dotted.

    A variable counts as a register resident when *all* its segments are
    register resident; partially resident (split) variables are marked
    dotted, with their register spans visible in
    :meth:`Allocation.format`.
    """
    problem = allocation.problem
    resident = {
        name
        for name in problem.lifetimes
        if allocation.in_register(name)
    }
    chart = lifetime_chart(
        problem.lifetimes, problem.horizon, in_register=resident
    )
    legend = (
        "legend: W write, R read, | register resident, : memory resident"
    )
    return f"{chart}\n{legend}"
