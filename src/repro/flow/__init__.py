"""Minimum-cost network flow substrate.

Implements, from scratch, everything the allocation core needs from network
flow theory (paper section 4): a bounded-arc network container, a
successive-shortest-path solver, the lower-bound transformation used by
split lifetimes, a cycle-cancelling cross-check solver, and solution
validators.
"""

from repro.flow.cycle_canceling import solve_by_cycle_canceling
from repro.flow.decompose import decompose_into_paths
from repro.flow.graph import Arc, FlowNetwork, FlowResult
from repro.flow.lower_bounds import solve, solve_with_lower_bounds
from repro.flow.ssp import max_flow_value, solve_min_cost_flow
from repro.flow.validate import FlowValidationError, check_flow, flow_cost

__all__ = [
    "Arc",
    "FlowNetwork",
    "FlowResult",
    "FlowValidationError",
    "check_flow",
    "decompose_into_paths",
    "flow_cost",
    "max_flow_value",
    "solve",
    "solve_by_cycle_canceling",
    "solve_min_cost_flow",
    "solve_with_lower_bounds",
]
