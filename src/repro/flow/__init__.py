"""Minimum-cost network flow substrate.

Implements, from scratch, everything the allocation core needs from network
flow theory (paper section 4): a struct-of-arrays network container, a
vectorized successive-shortest-path kernel, a warm-start cache for
cost-only re-solves, the lower-bound transformation used by split
lifetimes, a cycle-cancelling cross-check solver, a preserved per-object
reference solver, and solution validators.
"""

from repro.flow.cycle_canceling import solve_by_cycle_canceling
from repro.flow.decompose import decompose_into_paths
from repro.flow.graph import Arc, ArcArrays, FlowNetwork, FlowResult
from repro.flow.kernel import FlowKernel, KernelStats, ResidualCSR
from repro.flow.lower_bounds import solve, solve_with_lower_bounds
from repro.flow.reference import solve_min_cost_flow_reference
from repro.flow.ssp import max_flow_value, solve_min_cost_flow
from repro.flow.warm_start import WarmStartCache, solve_warm, topology_key
from repro.flow.validate import FlowValidationError, check_flow, flow_cost

__all__ = [
    "Arc",
    "ArcArrays",
    "FlowKernel",
    "FlowNetwork",
    "FlowResult",
    "FlowValidationError",
    "KernelStats",
    "ResidualCSR",
    "WarmStartCache",
    "check_flow",
    "decompose_into_paths",
    "flow_cost",
    "max_flow_value",
    "solve",
    "solve_by_cycle_canceling",
    "solve_min_cost_flow",
    "solve_min_cost_flow_reference",
    "solve_warm",
    "solve_with_lower_bounds",
    "topology_key",
]
