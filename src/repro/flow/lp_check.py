"""Linear-programming cross-check for minimum-cost flows.

Section 4 of the paper gives the LP formulation of the minimum-cost flow
problem and notes integral optima exist whenever capacities and the flow
value are integral.  This module solves exactly that LP (with scipy's
HiGHS backend when available) so the test suite can verify the
combinatorial solvers against an entirely independent optimisation method
— including the LP-relaxation integrality property itself.

scipy is an optional dependency of the test extra; importing this module
without it raises ``ImportError`` at call time, never at import time.
"""

from __future__ import annotations

from typing import Hashable

from repro.exceptions import InfeasibleFlowError
from repro.flow.graph import FlowNetwork

__all__ = ["lp_min_cost", "lp_flows"]


def _solve_lp(
    network: FlowNetwork,
    source: Hashable,
    sink: Hashable,
    flow_value: int,
):
    try:
        import numpy as np
        from scipy.optimize import linprog
    except ImportError as exc:  # pragma: no cover - env without scipy
        raise ImportError(
            "scipy is required for the LP cross-check"
        ) from exc

    nodes = list(network.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    arcs = network.arcs
    n, m = len(nodes), len(arcs)

    # Conservation: A x = b with b carrying the source/sink imbalance.
    A = np.zeros((n, m))
    for arc in arcs:
        A[index[arc.tail], arc.index] -= 1.0
        A[index[arc.head], arc.index] += 1.0
    b = np.zeros(n)
    b[index[source]] = -float(flow_value)
    b[index[sink]] = float(flow_value)

    c = np.array([arc.cost for arc in arcs])
    bounds = [(float(arc.lower), float(arc.capacity)) for arc in arcs]
    result = linprog(c, A_eq=A, b_eq=b, bounds=bounds, method="highs")
    if not result.success:
        raise InfeasibleFlowError(
            f"LP reports infeasibility: {result.message}"
        )
    return result


def lp_min_cost(
    network: FlowNetwork,
    source: Hashable,
    sink: Hashable,
    flow_value: int,
) -> float:
    """Optimal cost of the section-4 LP (no integrality imposed)."""
    return float(_solve_lp(network, source, sink, flow_value).fun)


def lp_flows(
    network: FlowNetwork,
    source: Hashable,
    sink: Hashable,
    flow_value: int,
) -> list[float]:
    """An optimal (possibly fractional) LP flow vector, arc-indexed."""
    return [float(x) for x in _solve_lp(network, source, sink, flow_value).x]
