"""Path decomposition of acyclic flows.

Any feasible ``s -> t`` flow on a DAG decomposes into ``value`` simple
paths; for the allocation networks each path is one physical register (or
one memory location in the reallocation pass).  The decomposition walks
greedily in arc-construction order, which makes results deterministic.
"""

from __future__ import annotations

from typing import Hashable

from repro.exceptions import GraphError
from repro.flow.graph import Arc, FlowNetwork, FlowResult

__all__ = ["decompose_into_paths"]


def decompose_into_paths(
    result: FlowResult,
    source: Hashable,
    sink: Hashable,
) -> list[list[Arc]]:
    """Split *result* into arc paths from *source* to *sink*.

    Returns:
        One list of arcs per flow unit, each tracing ``source -> sink``.

    Raises:
        GraphError: If the flow cannot be decomposed (cyclic flow or
            conservation violation — both indicate an invalid input).
    """
    network: FlowNetwork = result.network
    remaining = list(result.flows)
    # Materialise only the arcs that carry flow (the decomposition never
    # looks at the rest — on large instances that is almost all of them).
    positive = [i for i, f in enumerate(remaining) if f > 0]
    out_arcs: dict[Hashable, list[Arc]] = {}
    for index in positive:
        arc = network.arc(index)
        out_arcs.setdefault(arc.tail, []).append(arc)

    def next_arc(node: Hashable) -> Arc | None:
        for arc in out_arcs.get(node, ()):
            if remaining[arc.index] > 0:
                return arc
        return None

    paths: list[list[Arc]] = []
    guard = network.num_arcs + 2
    while True:
        first = next_arc(source)
        if first is None:
            break
        path: list[Arc] = []
        node = source
        hops = 0
        while node != sink:
            arc = next_arc(node)
            if arc is None:
                raise GraphError(
                    f"path decomposition stuck at {node!r}; "
                    "flow violates conservation"
                )
            remaining[arc.index] -= 1
            path.append(arc)
            node = arc.head
            hops += 1
            if hops > guard:
                raise GraphError("path decomposition found a cycle")
        paths.append(path)
    if any(remaining[index] for index in positive):
        raise GraphError(
            "flow units remain after decomposition; "
            "flow is cyclic or not source-sink"
        )
    return paths
