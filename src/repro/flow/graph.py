"""Directed flow-network data structure.

This module defines :class:`FlowNetwork`, the substrate every solver in
:mod:`repro.flow` operates on.  Arcs carry an integer capacity, an integer
lower bound and a real-valued cost, matching the minimum-cost network flow
formulation in section 4 of the paper (plus the lower bounds needed by the
split-lifetime extension in section 5.2).

Nodes are arbitrary hashable identifiers supplied by the caller; internally
each node also receives a dense integer index so that solvers can use flat
arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator

from repro.exceptions import GraphError

__all__ = ["Arc", "FlowNetwork", "FlowResult"]


@dataclass(frozen=True)
class Arc:
    """A directed arc ``tail -> head`` in a :class:`FlowNetwork`.

    Attributes:
        index: Dense identifier of the arc inside its network; flows returned
            by solvers are indexed by this value.
        tail: Node the arc leaves.
        head: Node the arc enters.
        capacity: Upper bound on flow (integer, ``>= lower``).
        lower: Lower bound on flow (integer, ``>= 0``).
        cost: Cost per unit of flow; may be negative (the allocation
            formulation uses negative costs to encode energy *savings*).
        data: Opaque caller payload (the allocator stores what the arc means,
            e.g. which variable segment or handoff it models).
    """

    index: int
    tail: Hashable
    head: Hashable
    capacity: int
    lower: int
    cost: float
    data: Any = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        bound = f"[{self.lower},{self.capacity}]"
        return f"{self.tail}->{self.head} {bound} @ {self.cost:g}"


class FlowNetwork:
    """A directed graph with arc capacities, lower bounds and costs.

    The class is a plain container: it validates construction-time invariants
    (non-negative integer bounds, known endpoints) and provides adjacency
    queries, but all optimisation lives in the solver modules.
    """

    def __init__(self) -> None:
        self._node_index: dict[Hashable, int] = {}
        self._nodes: list[Hashable] = []
        self._arcs: list[Arc] = []
        self._out: dict[Hashable, list[Arc]] = {}
        self._in: dict[Hashable, list[Arc]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Hashable) -> Hashable:
        """Register *node* (idempotent) and return it."""
        if node not in self._node_index:
            self._node_index[node] = len(self._nodes)
            self._nodes.append(node)
            self._out[node] = []
            self._in[node] = []
        return node

    def add_arc(
        self,
        tail: Hashable,
        head: Hashable,
        capacity: int,
        cost: float = 0.0,
        lower: int = 0,
        data: Any = None,
    ) -> Arc:
        """Add an arc and return it.

        Endpoints are auto-registered.  Raises :class:`GraphError` on
        self-loops or inconsistent bounds; parallel arcs are permitted.
        """
        if tail == head:
            raise GraphError(f"self-loop arcs are not supported: {tail!r}")
        if not isinstance(capacity, int) or not isinstance(lower, int):
            raise GraphError("capacity and lower bound must be integers")
        if lower < 0:
            raise GraphError(f"negative lower bound {lower} on {tail!r}->{head!r}")
        if capacity < lower:
            raise GraphError(
                f"capacity {capacity} below lower bound {lower} "
                f"on {tail!r}->{head!r}"
            )
        self.add_node(tail)
        self.add_node(head)
        arc = Arc(len(self._arcs), tail, head, capacity, lower, float(cost), data)
        self._arcs.append(arc)
        self._out[tail].append(arc)
        self._in[head].append(arc)
        return arc

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[Hashable, ...]:
        """All nodes in insertion order."""
        return tuple(self._nodes)

    @property
    def arcs(self) -> tuple[Arc, ...]:
        """All arcs in insertion order (``arc.index`` positions)."""
        return tuple(self._arcs)

    @property
    def num_nodes(self) -> int:
        """Number of registered nodes."""
        return len(self._nodes)

    @property
    def num_arcs(self) -> int:
        """Number of arcs."""
        return len(self._arcs)

    def has_node(self, node: Hashable) -> bool:
        """Whether *node* has been registered."""
        return node in self._node_index

    def node_index(self, node: Hashable) -> int:
        """Dense integer index of *node* (raises ``KeyError`` if unknown)."""
        return self._node_index[node]

    def arcs_from(self, node: Hashable) -> tuple[Arc, ...]:
        """Arcs leaving *node*."""
        return tuple(self._out[node])

    def arcs_into(self, node: Hashable) -> tuple[Arc, ...]:
        """Arcs entering *node*."""
        return tuple(self._in[node])

    def has_lower_bounds(self) -> bool:
        """True if any arc carries a non-zero lower bound."""
        return any(arc.lower > 0 for arc in self._arcs)

    def topological_order(self) -> list[Hashable] | None:
        """Kahn topological order of the nodes, or ``None`` if cyclic.

        Used by solvers to initialise node potentials in ``O(V + E)`` when
        the network is acyclic (always the case for allocation networks,
        whose arcs point forward in time).
        """
        indegree = {node: 0 for node in self._nodes}
        for arc in self._arcs:
            indegree[arc.head] += 1
        ready = [node for node, deg in indegree.items() if deg == 0]
        order: list[Hashable] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for arc in self._out[node]:
                indegree[arc.head] -= 1
                if indegree[arc.head] == 0:
                    ready.append(arc.head)
        if len(order) != len(self._nodes):
            return None
        return order

    def __iter__(self) -> Iterator[Arc]:
        return iter(self._arcs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowNetwork(nodes={self.num_nodes}, arcs={self.num_arcs})"


@dataclass
class FlowResult:
    """Solution of a minimum-cost flow problem.

    Attributes:
        network: The network the problem was solved on.
        flows: Integer flow per arc, indexed by ``arc.index``.
        value: Total flow shipped from source to sink.
        cost: Total cost ``sum(arc.cost * flow[arc])``.
    """

    network: FlowNetwork
    flows: list[int]
    value: int
    cost: float = field(default=0.0)

    def __post_init__(self) -> None:
        self.cost = sum(
            arc.cost * self.flows[arc.index]
            for arc in self.network.arcs
            if self.flows[arc.index]
        )

    def flow(self, arc: Arc) -> int:
        """Flow carried by *arc*."""
        return self.flows[arc.index]

    def saturated_arcs(self) -> list[Arc]:
        """Arcs carrying positive flow."""
        return [arc for arc in self.network.arcs if self.flows[arc.index] > 0]

    def outflow(self, node: Hashable) -> int:
        """Total flow leaving *node*."""
        return sum(self.flows[a.index] for a in self.network.arcs_from(node))

    def inflow(self, node: Hashable) -> int:
        """Total flow entering *node*."""
        return sum(self.flows[a.index] for a in self.network.arcs_into(node))


def iter_positive(result: FlowResult) -> Iterable[tuple[Arc, int]]:
    """Yield ``(arc, flow)`` pairs with positive flow (helper for reports)."""
    for arc in result.network.arcs:
        f = result.flows[arc.index]
        if f > 0:
            yield arc, f
