"""Directed flow-network data structure (struct-of-arrays layout).

This module defines :class:`FlowNetwork`, the substrate every solver in
:mod:`repro.flow` operates on.  Arcs carry an integer capacity, an integer
lower bound and a real-valued cost, matching the minimum-cost network flow
formulation in section 4 of the paper (plus the lower bounds needed by the
split-lifetime extension in section 5.2).

Storage layout (see DESIGN.md, "Performance model"):

* arcs live in parallel per-field sequences — tail index, head index,
  capacity, lower bound, cost, payload — not in per-arc objects;
* :meth:`FlowNetwork.arrays` exposes them as cached numpy arrays
  (``tails``/``heads``/``capacities``/``lowers`` as ``int64``, ``costs``
  as ``float64``), all indexed by arc id, which is what the vectorized
  kernel (:mod:`repro.flow.kernel`) and the bulk builder consume;
* the classic object API (:attr:`FlowNetwork.arcs`,
  :meth:`FlowNetwork.arcs_from`, ...) is a thin compatibility facade:
  :class:`Arc` dataclasses are materialised lazily and cached, so
  validators, decomposers, lint rules and certificates keep working
  unchanged while the hot solver paths never touch an object.

Nodes are arbitrary hashable identifiers supplied by the caller; internally
each node receives a dense integer index (``node_index``) and the arrays
store those indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator, NamedTuple, Sequence

import numpy as np

from repro.exceptions import GraphError

__all__ = ["Arc", "ArcArrays", "FlowNetwork", "FlowResult"]


@dataclass(frozen=True)
class Arc:
    """A directed arc ``tail -> head`` in a :class:`FlowNetwork`.

    Attributes:
        index: Dense identifier of the arc inside its network; flows returned
            by solvers are indexed by this value.
        tail: Node the arc leaves.
        head: Node the arc enters.
        capacity: Upper bound on flow (integer, ``>= lower``).
        lower: Lower bound on flow (integer, ``>= 0``).
        cost: Cost per unit of flow; may be negative (the allocation
            formulation uses negative costs to encode energy *savings*).
        data: Opaque caller payload (the allocator stores what the arc means,
            e.g. which variable segment or handoff it models).
    """

    index: int
    tail: Hashable
    head: Hashable
    capacity: int
    lower: int
    cost: float
    data: Any = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        bound = f"[{self.lower},{self.capacity}]"
        return f"{self.tail}->{self.head} {bound} @ {self.cost:g}"


class ArcArrays(NamedTuple):
    """The flat struct-of-arrays view of a network's arcs.

    All five arrays are indexed by arc id (``Arc.index``); ``tails`` and
    ``heads`` hold dense *node indices* (``FlowNetwork.node_index``), not
    node keys.  Treat the arrays as read-only — they are cached on the
    network and shared between callers.
    """

    tails: np.ndarray  #: int64[m] — tail node index per arc
    heads: np.ndarray  #: int64[m] — head node index per arc
    capacities: np.ndarray  #: int64[m] — upper bounds
    lowers: np.ndarray  #: int64[m] — lower bounds
    costs: np.ndarray  #: float64[m] — per-unit costs


class FlowNetwork:
    """A directed graph with arc capacities, lower bounds and costs.

    The class is a plain container: it validates construction-time invariants
    (non-negative integer bounds, known endpoints) and provides adjacency
    queries, but all optimisation lives in the solver modules.  Arcs are
    stored column-wise (struct of arrays); :class:`Arc` objects are built on
    demand for the compatibility API.
    """

    def __init__(self) -> None:
        self._node_index: dict[Hashable, int] = {}
        self._nodes: list[Hashable] = []
        # Parallel per-arc columns, indexed by arc id.
        self._tails: list[int] = []
        self._heads: list[int] = []
        self._caps: list[int] = []
        self._lowers: list[int] = []
        self._costs: list[float] = []
        self._data: list[Any] = []
        # Lazy payload blocks: (start, stop, factory) triples covering
        # bulk-appended ranges whose payloads are built on first access
        # (solvers touch payloads of a handful of arcs, not all of them).
        self._data_factories: list[tuple[int, int, Any]] = []
        self._has_lower = False
        # Lazily built caches, all invalidated by mutation.
        self._np: ArcArrays | None = None
        self._arc_cache: list[Arc | None] = []
        self._arc_tuple: tuple[Arc, ...] | None = None
        self._out_ids: dict[Hashable, list[int]] | None = None
        self._in_ids: dict[Hashable, list[int]] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Hashable) -> Hashable:
        """Register *node* (idempotent) and return it."""
        if node not in self._node_index:
            self._node_index[node] = len(self._nodes)
            self._nodes.append(node)
            if self._out_ids is not None:
                self._out_ids[node] = []
            if self._in_ids is not None:
                self._in_ids[node] = []
        return node

    def add_arc(
        self,
        tail: Hashable,
        head: Hashable,
        capacity: int,
        cost: float = 0.0,
        lower: int = 0,
        data: Any = None,
    ) -> Arc:
        """Add an arc and return it.

        Endpoints are auto-registered.  Raises :class:`GraphError` on
        self-loops or inconsistent bounds; parallel arcs are permitted.
        """
        if tail == head:
            raise GraphError(f"self-loop arcs are not supported: {tail!r}")
        if not isinstance(capacity, int) or not isinstance(lower, int):
            raise GraphError("capacity and lower bound must be integers")
        if lower < 0:
            raise GraphError(f"negative lower bound {lower} on {tail!r}->{head!r}")
        if capacity < lower:
            raise GraphError(
                f"capacity {capacity} below lower bound {lower} "
                f"on {tail!r}->{head!r}"
            )
        self.add_node(tail)
        self.add_node(head)
        index = len(self._tails)
        self._tails.append(self._node_index[tail])
        self._heads.append(self._node_index[head])
        self._caps.append(capacity)
        self._lowers.append(lower)
        self._costs.append(float(cost))
        self._data.append(data)
        self._has_lower = self._has_lower or lower > 0
        self._invalidate_appended(1)
        if self._out_ids is not None:
            self._out_ids[tail].append(index)
        if self._in_ids is not None:
            self._in_ids[head].append(index)
        return self.arc(index)

    def add_arcs_indexed(
        self,
        tails: np.ndarray,
        heads: np.ndarray,
        capacities: np.ndarray,
        costs: np.ndarray,
        lowers: np.ndarray | None = None,
        data: Sequence[Any] | None = None,
        data_factory: Any = None,
    ) -> int:
        """Bulk-append arcs given dense *node index* arrays; return the
        arc id of the first appended arc.

        This is the vectorized construction path used by
        :func:`repro.core.network_builder.build_network`: all endpoints
        must already be registered (their indices are the coordinates),
        and the per-field arrays are validated wholesale instead of
        per arc.  ``data`` may be ``None`` (all payloads ``None``) or a
        sequence of per-arc payloads; alternatively ``data_factory`` is a
        callable mapping the offset *within this batch* to the payload,
        invoked lazily on first access — the cheap choice for large
        batches whose payloads are rarely read.
        """
        if data is not None and data_factory is not None:
            raise GraphError("pass data or data_factory, not both")
        tails = np.asarray(tails, dtype=np.int64)
        heads = np.asarray(heads, dtype=np.int64)
        capacities = np.asarray(capacities, dtype=np.int64)
        costs = np.asarray(costs, dtype=np.float64)
        k = tails.shape[0]
        if lowers is None:
            lowers = np.zeros(k, dtype=np.int64)
        else:
            lowers = np.asarray(lowers, dtype=np.int64)
        shapes = {a.shape for a in (tails, heads, capacities, costs, lowers)}
        if shapes != {(k,)}:
            raise GraphError("add_arcs_indexed arrays must share one length")
        if data is not None and len(data) != k:
            raise GraphError("add_arcs_indexed data length mismatch")
        n = len(self._nodes)
        if k and (
            tails.min() < 0
            or heads.min() < 0
            or tails.max() >= n
            or heads.max() >= n
        ):
            raise GraphError("add_arcs_indexed endpoint index out of range")
        if np.any(tails == heads):
            where = int(np.argmax(tails == heads))
            raise GraphError(
                f"self-loop arcs are not supported: "
                f"{self._nodes[int(tails[where])]!r}"
            )
        if k and lowers.min() < 0:
            raise GraphError("negative lower bound in bulk arc batch")
        if np.any(capacities < lowers):
            raise GraphError("capacity below lower bound in bulk arc batch")
        start = len(self._tails)
        self._tails.extend(tails.tolist())
        self._heads.extend(heads.tolist())
        self._caps.extend(capacities.tolist())
        self._lowers.extend(lowers.tolist())
        self._costs.extend(costs.tolist())
        if data is None:
            self._data.extend([None] * k)
            if data_factory is not None and k:
                self._data_factories.append((start, start + k, data_factory))
        else:
            self._data.extend(data)
        if k:
            self._has_lower = self._has_lower or bool(lowers.max() > 0)
        self._invalidate_appended(k)
        if self._out_ids is not None or self._in_ids is not None:
            # Cheap to keep adjacency hot rather than rebuild it later.
            for offset, (ti, hi) in enumerate(
                zip(tails.tolist(), heads.tolist())
            ):
                if self._out_ids is not None:
                    self._out_ids[self._nodes[ti]].append(start + offset)
                if self._in_ids is not None:
                    self._in_ids[self._nodes[hi]].append(start + offset)
        return start

    def set_costs(self, costs: np.ndarray) -> None:
        """Replace every arc cost in place (topology untouched).

        This is the re-cost hook warm-started sweeps use: a cost-only
        perturbation keeps node ids, arc ids, capacities and lower bounds
        identical, so solvers may reuse structural caches while all
        cost-derived caches (materialised :class:`Arc` objects, the numpy
        cost column) are invalidated here.
        """
        costs = np.asarray(costs, dtype=np.float64)
        if costs.shape != (len(self._costs),):
            raise GraphError(
                f"set_costs expects {len(self._costs)} costs, "
                f"got shape {costs.shape}"
            )
        self._costs = costs.tolist()
        self._np = None
        self._arc_tuple = None
        self._arc_cache = []

    def _invalidate_appended(self, appended: int) -> None:
        """Refresh caches after *appended* arcs were added at the end.

        Appends never change existing arcs, so cached :class:`Arc`
        facades stay valid; only the array view and the all-arcs tuple
        are rebuilt lazily.
        """
        self._np = None
        self._arc_tuple = None
        if self._arc_cache:
            self._arc_cache.extend([None] * appended)

    # ------------------------------------------------------------------
    # flat-array access (the solver fast path)
    # ------------------------------------------------------------------
    def arrays(self) -> ArcArrays:
        """The cached struct-of-arrays view of all arcs.

        Returns an :class:`ArcArrays` named tuple of numpy arrays indexed
        by arc id; see the class docs for dtypes.  The arrays are cached
        until the next mutation — callers must not write to them.
        """
        if self._np is None:
            self._np = ArcArrays(
                tails=np.asarray(self._tails, dtype=np.int64),
                heads=np.asarray(self._heads, dtype=np.int64),
                capacities=np.asarray(self._caps, dtype=np.int64),
                lowers=np.asarray(self._lowers, dtype=np.int64),
                costs=np.asarray(self._costs, dtype=np.float64),
            )
        return self._np

    def arc(self, index: int) -> Arc:
        """Materialise (and cache) the :class:`Arc` facade of one arc id."""
        if not self._arc_cache:
            self._arc_cache = [None] * len(self._tails)
        cached = self._arc_cache[index]
        if cached is None:
            cached = Arc(
                index,
                self._nodes[self._tails[index]],
                self._nodes[self._heads[index]],
                self._caps[index],
                self._lowers[index],
                self._costs[index],
                self._payload(index),
            )
            self._arc_cache[index] = cached
        return cached

    def _payload(self, index: int) -> Any:
        """Arc payload, materialising it from a lazy block if needed."""
        value = self._data[index]
        if value is None and self._data_factories:
            for start, stop, factory in self._data_factories:
                if start <= index < stop:
                    value = factory(index - start)
                    self._data[index] = value
                    break
        return value

    def arc_data(self, index: int) -> Any:
        """The opaque payload of arc *index* without materialising it."""
        return self._payload(index)

    # ------------------------------------------------------------------
    # queries (compatibility facade)
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[Hashable, ...]:
        """All nodes in insertion order."""
        return tuple(self._nodes)

    @property
    def arcs(self) -> tuple[Arc, ...]:
        """All arcs in insertion order (``arc.index`` positions).

        Materialises every :class:`Arc` facade on first use; hot solver
        paths should prefer :meth:`arrays`.
        """
        if self._arc_tuple is None:
            self._arc_tuple = tuple(
                self.arc(i) for i in range(len(self._tails))
            )
        return self._arc_tuple

    @property
    def num_nodes(self) -> int:
        """Number of registered nodes."""
        return len(self._nodes)

    @property
    def num_arcs(self) -> int:
        """Number of arcs."""
        return len(self._tails)

    def has_node(self, node: Hashable) -> bool:
        """Whether *node* has been registered."""
        return node in self._node_index

    def node_index(self, node: Hashable) -> int:
        """Dense integer index of *node* (raises ``KeyError`` if unknown)."""
        return self._node_index[node]

    def _adjacency(self) -> None:
        """Build the out/in arc-id maps (one linear pass, then cached)."""
        out: dict[Hashable, list[int]] = {node: [] for node in self._nodes}
        into: dict[Hashable, list[int]] = {node: [] for node in self._nodes}
        nodes = self._nodes
        for index, (ti, hi) in enumerate(zip(self._tails, self._heads)):
            out[nodes[ti]].append(index)
            into[nodes[hi]].append(index)
        self._out_ids = out
        self._in_ids = into

    def arcs_from(self, node: Hashable) -> tuple[Arc, ...]:
        """Arcs leaving *node*."""
        if self._out_ids is None:
            self._adjacency()
        assert self._out_ids is not None
        return tuple(self.arc(i) for i in self._out_ids[node])

    def arcs_into(self, node: Hashable) -> tuple[Arc, ...]:
        """Arcs entering *node*."""
        if self._in_ids is None:
            self._adjacency()
        assert self._in_ids is not None
        return tuple(self.arc(i) for i in self._in_ids[node])

    def has_lower_bounds(self) -> bool:
        """True if any arc carries a non-zero lower bound."""
        return self._has_lower

    def topological_order(self) -> list[Hashable] | None:
        """Kahn topological order of the nodes, or ``None`` if cyclic.

        Used by solvers to initialise node potentials in ``O(V + E)`` when
        the network is acyclic (always the case for allocation networks,
        whose arcs point forward in time).
        """
        n = len(self._nodes)
        arrays = self.arrays()
        indegree = np.bincount(arrays.heads, minlength=n)
        out_by_node: list[list[int]] = [[] for _ in range(n)]
        for ti, hi in zip(self._tails, self._heads):
            out_by_node[ti].append(hi)
        ready = [u for u in range(n) if indegree[u] == 0]
        order: list[int] = []
        while ready:
            u = ready.pop()
            order.append(u)
            for v in out_by_node[u]:
                indegree[v] -= 1
                if indegree[v] == 0:
                    ready.append(v)
        if len(order) != n:
            return None
        return [self._nodes[u] for u in order]

    def __iter__(self) -> Iterator[Arc]:
        return iter(self.arcs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowNetwork(nodes={self.num_nodes}, arcs={self.num_arcs})"


@dataclass
class FlowResult:
    """Solution of a minimum-cost flow problem.

    Attributes:
        network: The network the problem was solved on.
        flows: Integer flow per arc, indexed by ``arc.index``.
        value: Total flow shipped from source to sink.
        cost: Total cost ``sum(arc.cost * flow[arc])``.
    """

    network: FlowNetwork
    flows: list[int]
    value: int
    cost: float = field(default=0.0)

    def __post_init__(self) -> None:
        costs = self.network.arrays().costs
        flows = np.asarray(self.flows, dtype=np.float64)
        self.cost = float(costs @ flows) if flows.size else 0.0

    def flow(self, arc: Arc) -> int:
        """Flow carried by *arc*."""
        return self.flows[arc.index]

    def saturated_arcs(self) -> list[Arc]:
        """Arcs carrying positive flow."""
        return [
            self.network.arc(i) for i, f in enumerate(self.flows) if f > 0
        ]

    def outflow(self, node: Hashable) -> int:
        """Total flow leaving *node*."""
        return sum(self.flows[a.index] for a in self.network.arcs_from(node))

    def inflow(self, node: Hashable) -> int:
        """Total flow entering *node*."""
        return sum(self.flows[a.index] for a in self.network.arcs_into(node))


def iter_positive(result: FlowResult) -> Iterable[tuple[Arc, int]]:
    """Yield ``(arc, flow)`` pairs with positive flow (helper for reports)."""
    for index, f in enumerate(result.flows):
        if f > 0:
            yield result.network.arc(index), f
