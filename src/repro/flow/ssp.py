"""Successive-shortest-path minimum-cost flow solver.

This is the primary solver used by the allocator.  It implements the classic
successive-shortest-path algorithm with node potentials:

1. Initialise potentials with one exact shortest-path pass that tolerates
   negative arc costs — a topological relaxation when the network is acyclic
   (allocation networks always are: every arc points forward in time), or
   Bellman-Ford otherwise.
2. Repeatedly run Dijkstra on reduced costs, augment along the shortest
   source→sink path, and update the potentials, until the requested flow
   value has been shipped.

With integer capacities the algorithm returns an integral flow, matching the
integrality guarantee the paper relies on (section 4).  Costs may be
arbitrary floats; reduced costs are clamped at zero within a small tolerance
to absorb floating-point drift.

The solver requires the network to contain no directed cycle of negative
total cost among its *forward* arcs (guaranteed for DAGs); under that
precondition each intermediate flow is optimal for its value, so the final
flow is a true minimum-cost flow.
"""

from __future__ import annotations

import heapq
from typing import Hashable

from repro.exceptions import GraphError, InfeasibleFlowError
from repro.flow.graph import FlowNetwork, FlowResult
from repro.flow.residual import Residual
from repro.obs import trace as obs

__all__ = ["solve_min_cost_flow", "max_flow_value"]

_INF = float("inf")
#: Tolerance for negative reduced costs caused by float rounding.
_EPS = 1e-9


def _initial_potentials(residual: Residual, source: int) -> list[float]:
    """Exact shortest-path distances from *source* over positive-capacity arcs.

    Uses a topological relaxation when the capacity-positive subgraph is
    acyclic, otherwise Bellman-Ford.  Unreachable nodes get ``inf`` (they can
    never lie on an augmenting path, because new residual arcs only appear
    along augmented paths inside the reachable set).
    """
    n = residual.num_nodes
    order = _topological_order(residual)
    dist = [_INF] * n
    dist[source] = 0.0
    if order is not None:
        for u in order:
            du = dist[u]
            if du == _INF:
                continue
            for rid in residual.adj[u]:
                if residual.cap[rid] <= 0:
                    continue
                v = residual.head[rid]
                nd = du + residual.cost[rid]
                if nd < dist[v] - _EPS:
                    dist[v] = nd
        return dist
    # Bellman-Ford fallback for cyclic networks.
    for iteration in range(n):
        changed = False
        for u in range(n):
            du = dist[u]
            if du == _INF:
                continue
            for rid in residual.adj[u]:
                if residual.cap[rid] <= 0:
                    continue
                v = residual.head[rid]
                nd = du + residual.cost[rid]
                if nd < dist[v] - _EPS:
                    dist[v] = nd
                    changed = True
        if not changed:
            return dist
    raise GraphError("network contains a negative-cost cycle")


def _topological_order(residual: Residual) -> list[int] | None:
    """Topological order over positive-capacity residual arcs, or ``None``."""
    n = residual.num_nodes
    indegree = [0] * n
    for u in range(n):
        for rid in residual.adj[u]:
            if residual.cap[rid] > 0:
                indegree[residual.head[rid]] += 1
    ready = [u for u in range(n) if indegree[u] == 0]
    order: list[int] = []
    while ready:
        u = ready.pop()
        order.append(u)
        for rid in residual.adj[u]:
            if residual.cap[rid] > 0:
                v = residual.head[rid]
                indegree[v] -= 1
                if indegree[v] == 0:
                    ready.append(v)
    return order if len(order) == n else None


def _dijkstra(
    residual: Residual, source: int, potential: list[float]
) -> tuple[list[float], list[int], int, int]:
    """Shortest distances on reduced costs plus predecessor residual arcs.

    Also returns the number of settled heap pops and of successful edge
    relaxations, for the solver counters (see :mod:`repro.obs`).
    """
    n = residual.num_nodes
    dist = [_INF] * n
    pred = [-1] * n
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    pops = 0
    relaxations = 0
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        pops += 1
        pot_u = potential[u]
        for rid in residual.adj[u]:
            if residual.cap[rid] <= 0:
                continue
            v = residual.head[rid]
            if potential[v] == _INF:
                continue
            reduced = residual.cost[rid] + pot_u - potential[v]
            if reduced < -_EPS * (1.0 + abs(residual.cost[rid])):
                # Should be impossible with valid potentials.
                reduced = 0.0
            elif reduced < 0.0:
                reduced = 0.0
            nd = d + reduced
            if nd < dist[v]:
                relaxations += 1
                dist[v] = nd
                pred[v] = rid
                heapq.heappush(heap, (nd, v))
    return dist, pred, pops, relaxations


def solve_min_cost_flow(
    network: FlowNetwork,
    source: Hashable,
    sink: Hashable,
    flow_value: int,
) -> FlowResult:
    """Ship exactly *flow_value* units from *source* to *sink* at minimum cost.

    Args:
        network: Network with integer capacities and real costs.  Arcs must
            not carry lower bounds (use
            :func:`repro.flow.lower_bounds.solve_with_lower_bounds` for
            those).
        source: Source node.
        sink: Sink node.
        flow_value: Exact amount of flow to ship (``>= 0``).

    Returns:
        A :class:`FlowResult` with integral arc flows.

    Raises:
        InfeasibleFlowError: If less than *flow_value* units fit through the
            network.
        GraphError: On lower-bounded arcs, unknown endpoints, or a
            negative-cost directed cycle.
    """
    if flow_value < 0:
        raise GraphError(f"flow value must be non-negative, got {flow_value}")
    if not network.has_node(source) or not network.has_node(sink):
        raise GraphError("source or sink is not a node of the network")
    if network.has_lower_bounds():
        raise GraphError(
            "network has lower-bounded arcs; use solve_with_lower_bounds()"
        )
    residual = Residual(network)
    s = residual.node_of(source)
    t = residual.node_of(sink)
    if flow_value == 0 or s == t:
        return FlowResult(network, [0] * network.num_arcs, 0)

    potential = _initial_potentials(residual, s)
    if potential[t] == _INF:
        raise InfeasibleFlowError(
            f"sink {sink!r} unreachable from source {source!r}"
        )
    shipped = 0
    pops = 0
    relaxations = 0
    paths = 0
    potential_updates = 0
    while shipped < flow_value:
        dist, pred, round_pops, round_relax = _dijkstra(residual, s, potential)
        pops += round_pops
        relaxations += round_relax
        if dist[t] == _INF:
            raise InfeasibleFlowError(
                f"only {shipped} of {flow_value} flow units fit "
                f"from {source!r} to {sink!r}"
            )
        # Bottleneck along the shortest path.
        bottleneck = flow_value - shipped
        v = t
        while v != s:
            rid = pred[v]
            bottleneck = min(bottleneck, residual.cap[rid])
            v = residual.tail(rid)
        v = t
        while v != s:
            rid = pred[v]
            residual.push(rid, bottleneck)
            v = residual.tail(rid)
        shipped += bottleneck
        paths += 1
        for u in range(residual.num_nodes):
            if dist[u] != _INF and potential[u] != _INF:
                potential[u] += dist[u]
                potential_updates += 1
            elif potential[u] != _INF:
                # Unreached this round: now permanently unreachable.
                potential[u] = _INF
    obs.count("ssp.solves")
    obs.count("ssp.dijkstra_pops", pops)
    obs.count("ssp.dijkstra_relaxations", relaxations)
    obs.count("ssp.augmenting_paths", paths)
    obs.count("ssp.potential_updates", potential_updates)
    return FlowResult(network, residual.flows(), shipped)


def max_flow_value(network: FlowNetwork, source: Hashable, sink: Hashable) -> int:
    """Maximum feasible flow value from *source* to *sink* (costs ignored).

    Implemented as BFS augmentation (Edmonds-Karp) on the residual network;
    used to size fixed-flow problems and by feasibility diagnostics.
    """
    if not network.has_node(source) or not network.has_node(sink):
        raise GraphError("source or sink is not a node of the network")
    residual = Residual(network)
    s = residual.node_of(source)
    t = residual.node_of(sink)
    if s == t:
        return 0
    total = 0
    while True:
        pred = [-1] * residual.num_nodes
        pred[s] = -2
        queue = [s]
        while queue and pred[t] == -1:
            next_queue: list[int] = []
            for u in queue:
                for rid in residual.adj[u]:
                    v = residual.head[rid]
                    if residual.cap[rid] > 0 and pred[v] == -1:
                        pred[v] = rid
                        next_queue.append(v)
            queue = next_queue
        if pred[t] == -1:
            return total
        bottleneck = None
        v = t
        while v != s:
            rid = pred[v]
            cap = residual.cap[rid]
            bottleneck = cap if bottleneck is None else min(bottleneck, cap)
            v = residual.tail(rid)
        assert bottleneck is not None and bottleneck > 0
        v = t
        while v != s:
            rid = pred[v]
            residual.push(rid, bottleneck)
            v = residual.tail(rid)
        total += bottleneck
