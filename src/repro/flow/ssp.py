"""Successive-shortest-path minimum-cost flow solver (vectorized).

This is the primary solver used by the allocator.  It drives the
struct-of-arrays kernel in :mod:`repro.flow.kernel`:

1. On acyclic networks (every allocation network) the kernel derives
   *exact* initial potentials in one Kahn-layered sweep, despite
   negative arc costs; otherwise a frontier label-correcting pass that
   tolerates negative reduced costs plays the same role.
2. Each pass then computes shortest paths over reduced costs (scipy
   Dijkstra when available, the label-correcting fallback otherwise),
   the shortest source→sink path is augmented, and the capped
   distances are folded into the potentials (THEORY.md §7), until the
   requested flow value has been shipped.

Array invariants: the solver reads the network through
:meth:`~repro.flow.graph.FlowNetwork.arrays` (``int64`` endpoint/bound
columns, ``float64`` costs, indexed by arc id) and the kernel's residual
layout (``rid 2i`` forward / ``2i + 1`` backward, ``rid ^ 1`` partner,
CSR adjacency sorted by tail).  No :class:`~repro.flow.graph.Arc` object
is materialised on this path.

With integer capacities the algorithm returns an integral flow, matching
the integrality guarantee the paper relies on (section 4).  Costs may be
arbitrary floats; relaxations use the shared :data:`repro.flow.tolerances.EPS`
slack.  The solver requires the network to contain no directed cycle of
negative total cost among its *forward* arcs (guaranteed for DAGs); under
that precondition each intermediate flow is optimal for its value, so the
final flow is a true minimum-cost flow.  The pre-kernel per-arc-object
implementation is preserved verbatim in :mod:`repro.flow.reference` as
the literate baseline the speedup bench compares against.
"""

from __future__ import annotations

from typing import Hashable

from repro.exceptions import GraphError, InfeasibleFlowError
from repro.flow.graph import FlowNetwork, FlowResult
from repro.flow.kernel import FlowKernel
from repro.flow.residual import Residual
from repro.obs import trace as obs

__all__ = ["solve_min_cost_flow", "max_flow_value"]


def solve_min_cost_flow(
    network: FlowNetwork,
    source: Hashable,
    sink: Hashable,
    flow_value: int,
) -> FlowResult:
    """Ship exactly *flow_value* units from *source* to *sink* at minimum cost.

    Args:
        network: Network with integer capacities and real costs.  Arcs must
            not carry lower bounds (use
            :func:`repro.flow.lower_bounds.solve_with_lower_bounds` for
            those).
        source: Source node.
        sink: Sink node.
        flow_value: Exact amount of flow to ship (``>= 0``).

    Returns:
        A :class:`FlowResult` with integral arc flows.

    Raises:
        InfeasibleFlowError: If less than *flow_value* units fit through the
            network.
        GraphError: On lower-bounded arcs, unknown endpoints, or a
            negative-cost directed cycle.
    """
    if flow_value < 0:
        raise GraphError(f"flow value must be non-negative, got {flow_value}")
    if not network.has_node(source) or not network.has_node(sink):
        raise GraphError("source or sink is not a node of the network")
    if network.has_lower_bounds():
        raise GraphError(
            "network has lower-bounded arcs; use solve_with_lower_bounds()"
        )
    s = network.node_index(source)
    t = network.node_index(sink)
    if flow_value == 0 or s == t:
        return FlowResult(network, [0] * network.num_arcs, 0)
    kernel = FlowKernel(network)
    flows, _, stats = kernel.solve(
        s, t, flow_value, labels=(source, sink)
    )
    obs.count("ssp.solves")
    obs.count("ssp.dijkstra_pops", stats.pops)
    obs.count("ssp.dijkstra_relaxations", stats.relaxations)
    obs.count("ssp.relax_rounds", stats.rounds)
    obs.count("ssp.augmenting_paths", stats.paths)
    obs.count("ssp.potential_updates", stats.potential_updates)
    return FlowResult(network, flows.tolist(), flow_value)


def max_flow_value(network: FlowNetwork, source: Hashable, sink: Hashable) -> int:
    """Maximum feasible flow value from *source* to *sink* (costs ignored).

    Implemented as BFS augmentation (Edmonds-Karp) on the residual network;
    used to size fixed-flow problems and by feasibility diagnostics.
    """
    if not network.has_node(source) or not network.has_node(sink):
        raise GraphError("source or sink is not a node of the network")
    residual = Residual(network)
    s = residual.node_of(source)
    t = residual.node_of(sink)
    if s == t:
        return 0
    total = 0
    while True:
        pred = [-1] * residual.num_nodes
        pred[s] = -2
        queue = [s]
        while queue and pred[t] == -1:
            next_queue: list[int] = []
            for u in queue:
                for rid in residual.adj[u]:
                    v = residual.head[rid]
                    if residual.cap[rid] > 0 and pred[v] == -1:
                        pred[v] = rid
                        next_queue.append(v)
            queue = next_queue
        if pred[t] == -1:
            return total
        bottleneck = None
        v = t
        while v != s:
            rid = pred[v]
            cap = residual.cap[rid]
            bottleneck = cap if bottleneck is None else min(bottleneck, cap)
            v = residual.tail(rid)
        assert bottleneck is not None and bottleneck > 0
        v = t
        while v != s:
            rid = pred[v]
            residual.push(rid, bottleneck)
            v = residual.tail(rid)
        total += bottleneck
