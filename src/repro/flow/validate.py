"""Validation utilities for flow solutions.

Every solver result can be checked against the mathematical-programming
formulation of section 4: conservation at interior nodes, bound compliance
on every arc, and the exact source/sink balance.  The allocator runs these
checks in its own debug mode and the test suite applies them to every
solution it produces.
"""

from __future__ import annotations

from typing import Hashable

from repro.exceptions import ReproError
from repro.flow.graph import FlowResult

__all__ = ["FlowValidationError", "check_flow", "flow_cost", "node_balances"]


class FlowValidationError(ReproError):
    """A flow violates conservation, bounds, or the required value."""


def node_balances(result: FlowResult) -> dict[Hashable, int]:
    """Net flow into each node of *result* (negative = net shipper).

    The single place the conservation arithmetic lives: both
    :func:`check_flow` and the :mod:`repro.verify` oracles (via
    ``check_flow``) consume this, so the sign convention cannot drift
    between the solver-side validator and the independent verifier.
    """
    network = result.network
    balance: dict[Hashable, int] = {node: 0 for node in network.nodes}
    for arc in network.arcs:
        f = result.flows[arc.index]
        balance[arc.tail] -= f
        balance[arc.head] += f
    return balance


def check_flow(
    result: FlowResult,
    source: Hashable,
    sink: Hashable,
    flow_value: int | None = None,
) -> None:
    """Validate *result* against the network it was solved on.

    Args:
        result: Solver output to validate.
        source: Source node of the problem.
        sink: Sink node of the problem.
        flow_value: Expected flow value; defaults to ``result.value``.

    Raises:
        FlowValidationError: Describing the first violated constraint.
    """
    network = result.network
    expected = result.value if flow_value is None else flow_value
    if len(result.flows) != network.num_arcs:
        raise FlowValidationError(
            f"flow vector has {len(result.flows)} entries for "
            f"{network.num_arcs} arcs"
        )
    for arc in network.arcs:
        f = result.flows[arc.index]
        if not isinstance(f, int):
            raise FlowValidationError(f"non-integral flow {f!r} on {arc}")
        if f < arc.lower or f > arc.capacity:
            raise FlowValidationError(
                f"flow {f} outside bounds [{arc.lower}, {arc.capacity}] on {arc}"
            )
    for node, net in node_balances(result).items():
        if node == source:
            if net != -expected:
                raise FlowValidationError(
                    f"source ships {-net} units, expected {expected}"
                )
        elif node == sink:
            if net != expected:
                raise FlowValidationError(
                    f"sink receives {net} units, expected {expected}"
                )
        elif net != 0:
            raise FlowValidationError(
                f"conservation violated at {node!r}: imbalance {net}"
            )


def flow_cost(result: FlowResult) -> float:
    """Recompute the total cost of *result* from scratch."""
    return sum(
        arc.cost * result.flows[arc.index]
        for arc in result.network.arcs
        if result.flows[arc.index]
    )
