"""Shared floating-point tolerances of the flow solvers.

Every solver in :mod:`repro.flow` compares path lengths and reduced
costs built from the same float arc costs, so they must agree on when a
difference is "real" and when it is accumulated rounding.  This module
is the single source of truth the docs cite (DESIGN.md, "Performance
model"):

* :data:`EPS` — absolute slack on shortest-path relaxations and on
  negative-cycle tests.  A relaxation (or a residual cycle) only counts
  when it improves by more than ``EPS``; this is what keeps
  label-correcting passes from ping-ponging on zero-cost cycles whose
  float sums differ by a few ULPs.
* :data:`COST_MATCH_TOLERANCE` — absolute slack when deciding whether
  two cost vectors of the same network are *identical* (the warm-start
  replay test in :mod:`repro.flow.warm_start`).

The certificate checker keeps its own, larger
:data:`repro.verify.certificates.DEFAULT_TOLERANCE` (1e-6): it bounds
drift over whole paths rather than single relaxations, and it must stay
independent so the verifier does not inherit solver assumptions.
"""

from __future__ import annotations

__all__ = ["EPS", "COST_MATCH_TOLERANCE"]

#: Absolute tolerance for shortest-path relaxations and residual-cycle
#: negativity tests, shared by :mod:`repro.flow.ssp` (via
#: :mod:`repro.flow.kernel`), :mod:`repro.flow.cycle_canceling` and
#: :mod:`repro.flow.reference`.
EPS = 1e-9

#: Absolute per-arc tolerance under which two cost vectors over the same
#: topology are treated as the same instance (warm-start replay).
COST_MATCH_TOLERANCE = 0.0
