"""Residual-network representation shared by the flow solvers.

The residual network stores, for every arc of the original network, a
forward residual arc (remaining capacity, original cost) and a backward
residual arc (flow that can be pushed back, negated cost).  Both are kept in
flat parallel arrays so Dijkstra / Bellman-Ford scans stay cheap in pure
Python.

Residual arc ``2*i`` is the forward image of original arc ``i`` and residual
arc ``2*i + 1`` is its backward image; ``rid ^ 1`` is always the partner.
"""

from __future__ import annotations

from typing import Hashable

from repro.flow.graph import FlowNetwork

__all__ = ["Residual"]


class Residual:
    """Mutable residual network over a :class:`FlowNetwork`.

    Lower bounds are ignored here; solvers that support them transform the
    problem first (see :mod:`repro.flow.lower_bounds`).
    """

    def __init__(self, network: FlowNetwork) -> None:
        self.network = network
        n = network.num_nodes
        m = network.num_arcs
        self.num_nodes = n
        # Parallel arrays over residual arc ids (2 per original arc).
        self.head: list[int] = [0] * (2 * m)
        self.cap: list[int] = [0] * (2 * m)
        self.cost: list[float] = [0.0] * (2 * m)
        self.adj: list[list[int]] = [[] for _ in range(n)]
        arrays = network.arrays()
        for index, (u, v, cap, cost) in enumerate(
            zip(
                arrays.tails.tolist(),
                arrays.heads.tolist(),
                arrays.capacities.tolist(),
                arrays.costs.tolist(),
            )
        ):
            fid = 2 * index
            bid = fid + 1
            self.head[fid] = v
            self.cap[fid] = cap
            self.cost[fid] = cost
            self.head[bid] = u
            self.cap[bid] = 0
            self.cost[bid] = -cost
            self.adj[u].append(fid)
            self.adj[v].append(bid)

    def tail(self, rid: int) -> int:
        """Tail node index of residual arc *rid*."""
        return self.head[rid ^ 1]

    def push(self, rid: int, amount: int) -> None:
        """Push *amount* units along residual arc *rid*."""
        self.cap[rid] -= amount
        self.cap[rid ^ 1] += amount

    def flows(self) -> list[int]:
        """Current flow on each original arc (backward residual capacity)."""
        return [self.cap[2 * i + 1] for i in range(self.network.num_arcs)]

    def node_of(self, node: Hashable) -> int:
        """Dense index of an original-network node."""
        return self.network.node_index(node)
