"""Cycle-cancelling minimum-cost flow solver.

An intentionally independent second implementation used to cross-check the
successive-shortest-path solver in tests: it first establishes *any* feasible
flow of the requested value (Edmonds-Karp augmentation, ignoring costs), then
repeatedly finds a negative-cost cycle in the residual network with
Bellman-Ford and cancels it, until no negative cycle remains — the classic
Klein algorithm.  It is slower than SSP but makes no acyclicity assumption
and shares no search code with it.
"""

from __future__ import annotations

from typing import Hashable

from repro.exceptions import GraphError, InfeasibleFlowError
from repro.flow.graph import FlowNetwork, FlowResult
from repro.flow.residual import Residual
from repro.flow.tolerances import EPS as _EPS
from repro.obs import trace as obs

__all__ = ["solve_by_cycle_canceling"]


def _establish_flow(residual: Residual, s: int, t: int, flow_value: int) -> None:
    """Push *flow_value* units from ``s`` to ``t`` ignoring costs (BFS)."""
    shipped = 0
    augmentations = 0
    while shipped < flow_value:
        pred = [-1] * residual.num_nodes
        pred[s] = -2
        queue = [s]
        while queue and pred[t] == -1:
            next_queue: list[int] = []
            for u in queue:
                for rid in residual.adj[u]:
                    v = residual.head[rid]
                    if residual.cap[rid] > 0 and pred[v] == -1:
                        pred[v] = rid
                        next_queue.append(v)
            queue = next_queue
        if pred[t] == -1:
            raise InfeasibleFlowError(
                f"only {shipped} of {flow_value} flow units are feasible"
            )
        bottleneck = flow_value - shipped
        v = t
        while v != s:
            rid = pred[v]
            bottleneck = min(bottleneck, residual.cap[rid])
            v = residual.tail(rid)
        v = t
        while v != s:
            rid = pred[v]
            residual.push(rid, bottleneck)
            v = residual.tail(rid)
        shipped += bottleneck
        augmentations += 1
    obs.count("cycle_canceling.augmentations", augmentations)


def _find_negative_cycle(residual: Residual) -> list[int] | None:
    """Residual arc ids of one negative-cost cycle, or ``None``.

    Bellman-Ford from a virtual super node connected to every node with a
    zero-cost arc; a node relaxed on the ``n``-th pass lies on or reaches a
    negative cycle, which is then recovered by walking predecessors.
    """
    n = residual.num_nodes
    dist = [0.0] * n
    pred_arc = [-1] * n
    pred_node = [-1] * n
    updated = -1
    for iteration in range(n):
        updated = -1
        for u in range(n):
            du = dist[u]
            for rid in residual.adj[u]:
                if residual.cap[rid] <= 0:
                    continue
                v = residual.head[rid]
                nd = du + residual.cost[rid]
                if nd < dist[v] - _EPS:
                    dist[v] = nd
                    pred_arc[v] = rid
                    pred_node[v] = u
                    updated = v
        if updated == -1:
            obs.count("cycle_canceling.bellman_ford_passes", iteration + 1)
            return None
    obs.count("cycle_canceling.bellman_ford_passes", n)
    # Walk back n steps to land inside the cycle, then collect it.
    node = updated
    for _ in range(n):
        node = pred_node[node]
    cycle: list[int] = []
    current = node
    while True:
        rid = pred_arc[current]
        cycle.append(rid)
        current = pred_node[current]
        if current == node:
            break
    cycle.reverse()
    return cycle


def solve_by_cycle_canceling(
    network: FlowNetwork,
    source: Hashable,
    sink: Hashable,
    flow_value: int,
) -> FlowResult:
    """Minimum-cost flow of exactly *flow_value* units via cycle cancelling.

    Accepts the same inputs as
    :func:`repro.flow.ssp.solve_min_cost_flow` (no lower bounds) and returns
    an equivalent :class:`FlowResult`.  Intended for validation on small and
    medium instances.
    """
    if flow_value < 0:
        raise GraphError(f"flow value must be non-negative, got {flow_value}")
    if network.has_lower_bounds():
        raise GraphError(
            "cycle cancelling does not handle lower bounds; transform first"
        )
    if not network.has_node(source) or not network.has_node(sink):
        raise GraphError("source or sink is not a node of the network")
    residual = Residual(network)
    s = residual.node_of(source)
    t = residual.node_of(sink)
    if flow_value and s != t:
        _establish_flow(residual, s, t, flow_value)
    cycles = 0
    while True:
        cycle = _find_negative_cycle(residual)
        if cycle is None:
            break
        bottleneck = min(residual.cap[rid] for rid in cycle)
        for rid in cycle:
            residual.push(rid, bottleneck)
        cycles += 1
    obs.count("cycle_canceling.solves")
    obs.count("cycle_canceling.cycles_canceled", cycles)
    return FlowResult(network, residual.flows(), flow_value)
