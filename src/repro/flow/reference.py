"""Reference per-arc-object successive-shortest-path solver.

This is the pre-kernel implementation of
:func:`repro.flow.ssp.solve_min_cost_flow`, preserved verbatim (minus the
observability counters) as a *literate baseline*:

* the solver-scaling bench measures the vectorized kernel's speedup
  against it on identical networks (``benchmarks/test_bench_solver_scaling.py``);
* the kernel parity tests cross-check flows costs against it on random
  networks (``tests/flow/test_kernel.py``) — an independent oracle that
  shares no array code with the production path.

It follows the classic textbook structure: exact potential
initialisation (topological relaxation on DAGs, Bellman-Ford otherwise),
then heap-based Dijkstra on clamped reduced costs per augmentation, all
over the per-arc :class:`~repro.flow.residual.Residual` lists.  Do not
use it in hot paths; it exists to stay readable and slow.
"""

from __future__ import annotations

import heapq
from typing import Hashable

from repro.exceptions import GraphError, InfeasibleFlowError
from repro.flow.graph import FlowNetwork, FlowResult
from repro.flow.residual import Residual
from repro.flow.tolerances import EPS as _EPS

__all__ = ["solve_min_cost_flow_reference"]

_INF = float("inf")


def _initial_potentials(residual: Residual, source: int) -> list[float]:
    """Exact shortest-path distances from *source* over positive-capacity arcs.

    Uses a topological relaxation when the capacity-positive subgraph is
    acyclic, otherwise Bellman-Ford.  Unreachable nodes get ``inf`` (they can
    never lie on an augmenting path, because new residual arcs only appear
    along augmented paths inside the reachable set).
    """
    n = residual.num_nodes
    order = _topological_order(residual)
    dist = [_INF] * n
    dist[source] = 0.0
    if order is not None:
        for u in order:
            du = dist[u]
            if du == _INF:
                continue
            for rid in residual.adj[u]:
                if residual.cap[rid] <= 0:
                    continue
                v = residual.head[rid]
                nd = du + residual.cost[rid]
                if nd < dist[v] - _EPS:
                    dist[v] = nd
        return dist
    # Bellman-Ford fallback for cyclic networks.
    for iteration in range(n):
        changed = False
        for u in range(n):
            du = dist[u]
            if du == _INF:
                continue
            for rid in residual.adj[u]:
                if residual.cap[rid] <= 0:
                    continue
                v = residual.head[rid]
                nd = du + residual.cost[rid]
                if nd < dist[v] - _EPS:
                    dist[v] = nd
                    changed = True
        if not changed:
            return dist
    raise GraphError("network contains a negative-cost cycle")


def _topological_order(residual: Residual) -> list[int] | None:
    """Topological order over positive-capacity residual arcs, or ``None``."""
    n = residual.num_nodes
    indegree = [0] * n
    for u in range(n):
        for rid in residual.adj[u]:
            if residual.cap[rid] > 0:
                indegree[residual.head[rid]] += 1
    ready = [u for u in range(n) if indegree[u] == 0]
    order: list[int] = []
    while ready:
        u = ready.pop()
        order.append(u)
        for rid in residual.adj[u]:
            if residual.cap[rid] > 0:
                v = residual.head[rid]
                indegree[v] -= 1
                if indegree[v] == 0:
                    ready.append(v)
    return order if len(order) == n else None


def _dijkstra(
    residual: Residual, source: int, potential: list[float]
) -> tuple[list[float], list[int]]:
    """Shortest distances on reduced costs plus predecessor residual arcs."""
    n = residual.num_nodes
    dist = [_INF] * n
    pred = [-1] * n
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        pot_u = potential[u]
        for rid in residual.adj[u]:
            if residual.cap[rid] <= 0:
                continue
            v = residual.head[rid]
            if potential[v] == _INF:
                continue
            reduced = residual.cost[rid] + pot_u - potential[v]
            if reduced < 0.0:
                reduced = 0.0
            nd = d + reduced
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = rid
                heapq.heappush(heap, (nd, v))
    return dist, pred


def solve_min_cost_flow_reference(
    network: FlowNetwork,
    source: Hashable,
    sink: Hashable,
    flow_value: int,
) -> FlowResult:
    """Ship *flow_value* units at minimum cost — per-arc-object baseline.

    Same contract as :func:`repro.flow.ssp.solve_min_cost_flow` (no lower
    bounds, integral result, :class:`InfeasibleFlowError` when the value
    does not fit), implemented with pure-Python heaps and lists.
    """
    if flow_value < 0:
        raise GraphError(f"flow value must be non-negative, got {flow_value}")
    if not network.has_node(source) or not network.has_node(sink):
        raise GraphError("source or sink is not a node of the network")
    if network.has_lower_bounds():
        raise GraphError(
            "network has lower-bounded arcs; use solve_with_lower_bounds()"
        )
    residual = Residual(network)
    s = residual.node_of(source)
    t = residual.node_of(sink)
    if flow_value == 0 or s == t:
        return FlowResult(network, [0] * network.num_arcs, 0)

    potential = _initial_potentials(residual, s)
    if potential[t] == _INF:
        raise InfeasibleFlowError(
            f"sink {sink!r} unreachable from source {source!r}"
        )
    shipped = 0
    while shipped < flow_value:
        dist, pred = _dijkstra(residual, s, potential)
        if dist[t] == _INF:
            raise InfeasibleFlowError(
                f"only {shipped} of {flow_value} flow units fit "
                f"from {source!r} to {sink!r}"
            )
        bottleneck = flow_value - shipped
        v = t
        while v != s:
            rid = pred[v]
            bottleneck = min(bottleneck, residual.cap[rid])
            v = residual.tail(rid)
        v = t
        while v != s:
            rid = pred[v]
            residual.push(rid, bottleneck)
            v = residual.tail(rid)
        shipped += bottleneck
        for u in range(residual.num_nodes):
            if dist[u] != _INF and potential[u] != _INF:
                potential[u] += dist[u]
            elif potential[u] != _INF:
                potential[u] = _INF
    return FlowResult(network, residual.flows(), shipped)
