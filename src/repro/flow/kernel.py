"""Vectorized minimum-cost-flow kernel over flat residual arrays.

This is the numeric engine behind :func:`repro.flow.ssp.solve_min_cost_flow`
and :mod:`repro.flow.warm_start`.  It operates exclusively on the
struct-of-arrays view of a :class:`~repro.flow.graph.FlowNetwork`
(:meth:`~repro.flow.graph.FlowNetwork.arrays`) and never materialises an
:class:`~repro.flow.graph.Arc`.

Residual layout (DESIGN.md, "Performance model"):

* residual arc ``2*i`` is the forward image of original arc ``i`` and
  ``2*i + 1`` its backward image; ``rid ^ 1`` is always the partner;
* ``res_tail``/``res_head`` (``int64[2m]``) are dense node indices,
  ``res_cost`` (``float64[2m]``) carries ``+cost``/``-cost`` and
  ``res_cap`` (``int64[2m]``) the residual capacities (forward starts at
  ``capacity``, backward at the current flow);
* adjacency is CSR-style: ``csr_order`` holds the residual arc ids
  stably sorted by tail and ``csr_indptr[u] : csr_indptr[u + 1]`` slices
  the out-arcs of node ``u``.  The CSR pair depends on topology only, so
  warm starts reuse it across cost perturbations.

Shortest paths dispatch on the sign of the reduced costs.  The fast path
stages ``cost + pot[tail] - pot[head]`` (plus an additive saturation
blocker, ``inf`` on zero-capacity arcs) into a persistent
``scipy.sparse.csr_array`` sharing the CSR layout above and runs
``scipy.sparse.csgraph.dijkstra`` with an adaptive distance ``limit``
(2x the historic sink distance, escalating to unbounded if the sink is
not reached); distances are capped at ``dist[sink]`` before the
potential fold, which THEORY.md §7 shows preserves non-negative reduced
costs.  When reduced costs go negative (stale warm-start potentials) or
scipy is absent, a frontier label-correcting scheme (vectorized
Bellman-Ford with a work list, ``np.minimum.at`` scatter) takes over —
potential quality affects the number of rounds, never the distances.  A
round count exceeding ``2n`` there exposes a negative-cost residual
cycle, mirroring the classic Bellman-Ford argument.  Cold starts on
acyclic residuals skip the question entirely: one Kahn-layered sweep
(:meth:`FlowKernel._initial_potentials`) yields exact initial
potentials.  Work is reported through
:class:`KernelStats` into the ``ssp.*`` counters (``dijkstra_pops``,
``dijkstra_relaxations``, ``relax_rounds``, ``augmenting_paths``,
``potential_updates``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.exceptions import GraphError, InfeasibleFlowError
from repro.flow.graph import FlowNetwork
from repro.flow.tolerances import EPS

try:  # pragma: no cover - exercised via both branches in CI images
    from scipy.sparse import csr_array as _csr_array
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra
except ImportError:  # scipy is optional: SPFA covers every call
    _csr_array = None
    _scipy_dijkstra = None

__all__ = ["FlowKernel", "KernelStats", "ResidualCSR"]

_INF = float("inf")


@dataclass(frozen=True)
class ResidualCSR:
    """Topology-only CSR adjacency of a residual network.

    Attributes:
        order: ``int64[2m]`` residual arc ids stably sorted by tail node.
        indptr: ``int64[n + 1]`` slice bounds: the out-arcs of node ``u``
            are ``order[indptr[u] : indptr[u + 1]]``.

    Depends only on ``tails``/``heads`` (never on capacities or costs),
    so a warm-start cache may pin it across cost-only re-solves.
    """

    order: np.ndarray
    indptr: np.ndarray


@dataclass
class KernelStats:
    """Work counters of one kernel invocation (fed into ``repro.obs``).

    Attributes:
        pops: Frontier node expansions across all shortest-path rounds
            (the vectorized analogue of Dijkstra heap pops).
        relaxations: Successful distance improvements.
        rounds: Label-correcting rounds run.
        paths: Augmenting paths pushed.
        potential_updates: Node-potential entries rewritten.
        cancellations: Negative residual cycles cancelled (incremental
            re-solve only).
        bf_passes: Bellman-Ford passes run by the incremental re-solve.
    """

    pops: int = 0
    relaxations: int = 0
    rounds: int = 0
    paths: int = 0
    potential_updates: int = 0
    cancellations: int = 0
    bf_passes: int = 0


class FlowKernel:
    """Mutable flat residual network with vectorized solve primitives.

    Lower bounds are not handled here; callers transform them away first
    (:mod:`repro.flow.lower_bounds`).  Construction is O(m log m) for the
    CSR sort unless a cached :class:`ResidualCSR` is supplied.
    """

    def __init__(
        self, network: FlowNetwork, csr: ResidualCSR | None = None
    ) -> None:
        arrays = network.arrays()
        n = network.num_nodes
        m = network.num_arcs
        self.network = network
        self.num_nodes = n
        self.num_arcs = m
        res_tail = np.empty(2 * m, dtype=np.int64)
        res_head = np.empty(2 * m, dtype=np.int64)
        res_cost = np.empty(2 * m, dtype=np.float64)
        res_cap = np.empty(2 * m, dtype=np.int64)
        res_tail[0::2] = arrays.tails
        res_tail[1::2] = arrays.heads
        res_head[0::2] = arrays.heads
        res_head[1::2] = arrays.tails
        res_cost[0::2] = arrays.costs
        res_cost[1::2] = -arrays.costs
        res_cap[0::2] = arrays.capacities
        res_cap[1::2] = 0
        self.res_tail = res_tail
        self.res_head = res_head
        self.res_cost = res_cost
        self.res_cap = res_cap
        self._active = int(np.count_nonzero(res_cap))
        if csr is None:
            counts = np.bincount(res_tail, minlength=n)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            # Narrow keys let numpy's stable sort pick radix, which is
            # several times faster than comparison sorting here.
            keys = res_tail.astype(np.int16) if n < 2**15 else res_tail
            order = np.argsort(keys, kind="stable").astype(np.int64)
            csr = ResidualCSR(order=order, indptr=indptr)
        self.csr = csr
        # Order-space (CSR-sorted) companions used by the Dijkstra fast
        # path.  Tails/heads/costs are static per kernel; capacities are
        # kept in sync with ``res_cap`` through ``_push`` (the ``_rank``
        # inverse permutation maps residual arc ids to order positions).
        order = csr.order
        self._rank = np.empty_like(order)
        self._rank[order] = np.arange(order.size)
        self._o_tail = res_tail[order]
        self._o_head = res_head[order]
        self._o_cost = res_cost[order]
        self._o_cap = res_cap[order]
        # Additive blocker: 0.0 on active arcs, inf on saturated ones.
        # Adding it to a weight vector masks inactive arcs in one pass.
        self._o_block = np.where(self._o_cap > 0, 0.0, _INF)
        if _csr_array is not None:
            idx_dtype = np.int32 if n < 2**31 - 1 else np.int64
            # One persistent scipy graph whose data buffer is rewritten
            # with fresh reduced costs before every Dijkstra call; the
            # int32 index arrays skip scipy's per-call downcast copy.
            self._gdata = np.zeros(2 * m)
            self._graph = _csr_array(
                (
                    self._gdata,
                    self._o_head.astype(idx_dtype),
                    csr.indptr.astype(idx_dtype),
                ),
                shape=(n, n),
            )
            self._gdata = self._graph.data
            self._pot_tail = np.empty(2 * m)
            self._pot_head = np.empty(2 * m)
        # Adaptive Dijkstra search limit (see _dijkstra): distances past
        # the sink never matter, so searches stop early once a typical
        # sink distance is known; a miss falls back to an unlimited run.
        self._limit_guess = _INF
        self._max_sink_dist = 0.0
        self._recent_sink: list[float] = []
        # Identity of the last potential vector proven non-negative on
        # every active arc (folding Dijkstra distances preserves this).
        self._vetted_potential: np.ndarray | None = None

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def load_flows(self, flows: np.ndarray) -> None:
        """Install a feasible flow as the residual state.

        ``flows`` is per original arc; forward residual capacity becomes
        ``capacity - flow`` and backward capacity ``flow``.  Used by the
        warm-start path to resume from a previously optimal flow.
        """
        flows = np.asarray(flows, dtype=np.int64)
        caps = self.network.arrays().capacities
        if flows.shape != caps.shape:
            raise GraphError("flow vector length mismatch")
        if flows.min(initial=0) < 0 or np.any(flows > caps):
            raise GraphError("flow vector violates capacities")
        self.res_cap[0::2] = caps - flows
        self.res_cap[1::2] = flows
        self._o_cap[:] = self.res_cap[self.csr.order]
        self._o_block = np.where(self._o_cap > 0, 0.0, _INF)
        self._active = int(np.count_nonzero(self.res_cap))

    def _push(self, rids: np.ndarray, amount: int) -> None:
        """Push *amount* units through residual arcs *rids* (in order).

        Updates the rid-space capacities plus their order-space mirror
        and blocker (so the Dijkstra fast path never has to re-gather)
        and the active arc tally.
        """
        partners = rids ^ 1
        activated = int(np.count_nonzero(self.res_cap[partners] == 0))
        self.res_cap[rids] -= amount
        self.res_cap[partners] += amount
        self._active += activated - int(
            np.count_nonzero(self.res_cap[rids] == 0)
        )
        pos = self._rank[rids]
        ppos = self._rank[partners]
        self._o_cap[pos] -= amount
        self._o_cap[ppos] += amount
        self._o_block[pos] = np.where(self._o_cap[pos] > 0, 0.0, _INF)
        self._o_block[ppos] = 0.0

    def flows(self) -> np.ndarray:
        """Current per-arc flow (the backward residual capacities)."""
        return self.res_cap[1::2].copy()

    # ------------------------------------------------------------------
    # shortest paths (vectorized label-correcting)
    # ------------------------------------------------------------------
    def shortest_paths(
        self,
        source: int,
        sink: int,
        potential: np.ndarray,
        stats: KernelStats,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact shortest distances from *source* on reduced costs.

        Dispatches to C-speed Dijkstra (:mod:`scipy.sparse.csgraph`)
        whenever every active reduced cost is non-negative — the common
        case once potentials are valid — and to the vectorized
        label-correcting fallback otherwise (stale warm-start
        potentials, negative costs before initialisation, or a scipy-less
        environment).  Both produce identical distances.

        Args:
            source: Dense source node index.
            sink: Dense sink node index (lets the fast path stop early
                and recover predecessor arcs along the sink path only).
            potential: ``float64[n]`` node potentials; entries may be
                stale (warm start) or ``inf`` (known-unreachable).
                Negative reduced costs are handled, not clamped.
            stats: Work counters, updated in place.

        Returns:
            ``(dist, pred)`` — reduced-cost distances and the
            predecessor residual arc id per node (``-1`` where absent).
            The Dijkstra fast path caps distances at ``dist[sink]`` —
            still a valid potential update (THEORY.md §7) — and fills
            ``pred`` only along the ``source -> sink`` path; the
            fallback returns uncapped distances (``inf`` where
            unreachable) and a full predecessor tree.

        Raises:
            GraphError: When label-correcting rounds exceed ``2n + 4``,
                which (by the Bellman-Ford argument, with slack for the
                ``EPS`` relaxation margin) proves a negative-cost
                residual cycle.
        """
        if _scipy_dijkstra is None:
            return self._spfa(source, potential, stats)
        finite = np.isfinite(potential)
        w = self._gdata
        if finite.all():
            np.take(potential, self._o_tail, out=self._pot_tail)
            np.take(potential, self._o_head, out=self._pot_head)
            np.add(self._o_cost, self._pot_tail, out=w)
            np.subtract(w, self._pot_head, out=w)
            np.add(w, self._o_block, out=w)
            # A vector already vetted here and folded only with Dijkstra
            # distances stays non-negative (THEORY.md §7): skip the scan.
            if self._vetted_potential is not potential:
                wmin = float(w.min()) if w.size else _INF
                if wmin < -EPS:
                    return self._spfa(source, potential, stats)
                self._vetted_potential = potential
            np.maximum(w, 0.0, out=w)
            stats.relaxations += self._active
            return self._dijkstra(source, sink, stats)
        # Some nodes are known-unreachable (infinite potential): mask
        # every arc touching them out of the graph entirely.
        valid = self._o_cap > 0
        valid &= finite[self._o_tail]
        valid &= finite[self._o_head]
        pot_t = potential[self._o_tail]
        pot_h = potential[self._o_head]
        w.fill(_INF)
        np.add(self._o_cost, pot_t, out=w, where=valid)
        np.subtract(w, pot_h, out=w, where=valid)
        if valid.any() and float(w[valid].min()) < -EPS:
            return self._spfa(source, potential, stats)
        np.maximum(w, 0.0, out=w)
        stats.relaxations += int(valid.sum())
        return self._dijkstra(source, sink, stats)

    def _dijkstra(
        self, source: int, sink: int, stats: KernelStats
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dijkstra over the persistent CSR graph (weights pre-staged).

        The caller has already written the clamped reduced costs into
        the shared ``self._graph`` data buffer, with ``inf`` marking
        inactive arcs — scipy never relaxes through an infinite weight,
        and duplicate ``(u, v)`` entries act as parallel edges, so the
        fixed structure survives every augmentation.

        Two sink-directed optimisations, both distance-preserving:

        * the search runs under an adaptive ``limit`` (a multiple of the
          largest sink distance seen); if the sink is not reached within
          it, one unlimited retry settles reachability;
        * returned distances are capped at ``dist[sink]`` — nodes the
          limited search never finalised are exactly the ones whose true
          distance is ``>= dist[sink]``, so the cap keeps every active
          reduced cost non-negative after the potential fold (THEORY.md
          §7) while letting later searches stop early too.
        """
        n = self.num_nodes
        # Escalating search limits: the tight guess (recent sink
        # distances) almost always holds; a miss climbs to the largest
        # distance ever seen, then to an unbounded search.
        ladder = [self._limit_guess]
        if np.isfinite(self._limit_guess):
            historic = 2.0 * self._max_sink_dist + 1.0
            if historic > self._limit_guess:
                ladder.append(historic)
            ladder.append(_INF)
        for limit in ladder:
            dist, pred_nodes = _scipy_dijkstra(
                self._graph,
                indices=source,
                return_predecessors=True,
                limit=limit,
            )
            if np.isfinite(dist[sink]):
                break
        stats.rounds += 1
        stats.pops += int(np.isfinite(dist).sum())
        pred = np.full(n, -1, dtype=np.int64)
        d_sink = float(dist[sink])
        if np.isfinite(d_sink):
            # Recover predecessor *arc ids* along the sink path only (the
            # augmentation walk touches nothing else): within u's CSR
            # slice the tree arc into v is active and tight.
            w = self._gdata
            indptr = self.csr.indptr
            v = sink
            while v != source:
                u = int(pred_nodes[v])
                lo, hi = int(indptr[u]), int(indptr[u + 1])
                cand = np.nonzero(
                    (self._o_head[lo:hi] == v)
                    & (self._o_cap[lo:hi] > 0)
                    & (np.abs(w[lo:hi] - (dist[v] - dist[u])) <= EPS)
                )[0]
                assert cand.size, "Dijkstra predecessor arc lost"
                pred[v] = int(self.csr.order[lo + int(cand[0])])
                v = u
            np.minimum(dist, d_sink, out=dist)
            self._max_sink_dist = max(self._max_sink_dist, d_sink)
            recent = self._recent_sink
            recent.append(d_sink)
            if len(recent) > 3:
                del recent[0]
            self._limit_guess = min(
                2.0 * self._max_sink_dist, 4.0 * max(recent)
            ) + 1.0
        return dist, pred

    def _spfa(
        self, source: int, potential: np.ndarray, stats: KernelStats
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized label-correcting fallback (handles negative costs)."""
        n = self.num_nodes
        order = self.csr.order
        indptr = self.csr.indptr
        dist = np.full(n, _INF)
        dist[source] = 0.0
        pred = np.full(n, -1, dtype=np.int64)
        frontier = np.array([source], dtype=np.int64)
        max_rounds = 2 * n + 4
        rounds = 0
        while frontier.size:
            rounds += 1
            stats.rounds += 1
            if rounds > max_rounds:
                raise GraphError("network contains a negative-cost cycle")
            stats.pops += int(frontier.size)
            starts = indptr[frontier]
            degs = indptr[frontier + 1] - starts
            total = int(degs.sum())
            if total == 0:
                break
            # Ragged expansion of the frontier's CSR slices.
            run_starts = np.cumsum(degs) - degs
            pos = np.repeat(starts - run_starts, degs) + np.arange(total)
            rids = order[pos]
            u = np.repeat(frontier, degs)
            live = self.res_cap[rids] > 0
            rids = rids[live]
            u = u[live]
            v = self.res_head[rids]
            pot_v = potential[v]
            known = np.isfinite(pot_v)
            if not known.all():
                rids = rids[known]
                u = u[known]
                v = v[known]
                pot_v = pot_v[known]
            reduced = self.res_cost[rids] + potential[u] - pot_v
            nd = dist[u] + reduced
            better = nd < dist[v] - EPS
            if not better.any():
                break
            v2 = v[better]
            nd2 = nd[better]
            r2 = rids[better]
            stats.relaxations += int(v2.size)
            np.minimum.at(dist, v2, nd2)
            win = nd2 <= dist[v2]
            winners = v2[win]
            pred[winners] = r2[win]
            frontier = np.unique(winners)
        return dist, pred

    def _initial_potentials(self, source: int) -> np.ndarray | None:
        """Exact cold-start potentials when the active residual is a DAG.

        Allocation networks are acyclic, so the exact shortest distances
        from *source* — the ideal initial potentials — fall out of one
        Kahn-layered relaxation sweep that touches every active arc
        exactly once (negative costs included: a node's distance is final
        before its out-arcs are relaxed).  Returns ``None`` when the
        active residual contains a cycle; the caller then starts from
        zeros and the label-correcting pass takes over (and detects
        negative cycles).  Unreachable nodes get ``inf``, matching the
        "known unreachable" potential convention used everywhere else.
        """
        n = self.num_nodes
        # The order-space views are already tail-sorted, so compressing
        # them by the active mask yields grouped adjacency with no sort.
        mask = self._o_cap > 0
        u = self._o_tail[mask]
        v_s = self._o_head[mask]
        c_s = self._o_cost[mask]
        counts = np.bincount(u, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indeg = np.bincount(v_s, minlength=n)
        dist = np.full(n, _INF)
        dist[source] = 0.0
        frontier = np.nonzero(indeg == 0)[0]
        processed = 0
        while frontier.size:
            processed += int(frontier.size)
            starts = indptr[frontier]
            degs = indptr[frontier + 1] - starts
            total = int(degs.sum())
            if total == 0:
                break
            run_starts = np.cumsum(degs) - degs
            pos = np.repeat(starts - run_starts, degs) + np.arange(total)
            uu = np.repeat(frontier, degs)
            vv = v_s[pos]
            nd = dist[uu] + c_s[pos]
            reached = np.isfinite(nd)
            np.minimum.at(dist, vv[reached], nd[reached])
            np.subtract.at(indeg, vv, 1)
            frontier = np.unique(vv[indeg[vv] == 0])
        if (indeg > 0).any():
            return None  # cycle among active arcs: fall back to zeros
        return dist

    # ------------------------------------------------------------------
    # successive shortest paths
    # ------------------------------------------------------------------
    def solve(
        self,
        source: int,
        sink: int,
        flow_value: int,
        potential: np.ndarray | None = None,
        labels: tuple[Any, Any] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, KernelStats]:
        """Ship exactly *flow_value* units at minimum cost.

        Runs successive shortest paths from the current residual state.
        With ``potential=None`` (cold start) potentials are initialised
        by the one-sweep DAG relaxation of :meth:`_initial_potentials`
        (zeros when the residual is cyclic); a warm ``potential`` vector
        merely changes how much work the searches do (THEORY.md §7 —
        correctness never depends on potential quality).

        Args:
            source: Dense source node index.
            sink: Dense sink node index.
            flow_value: Units to ship (``> 0``).
            potential: Optional warm-start potentials (copied).
            labels: Original source/sink keys for error messages.

        Returns:
            ``(flows, potential, stats)`` — per-arc flows, the final
            (feasible) potentials and the work counters.

        Raises:
            InfeasibleFlowError: If the network cannot carry *flow_value*
                units from source to sink.
            GraphError: On a negative-cost residual cycle.
        """
        n = self.num_nodes
        if potential is None:
            initial = self._initial_potentials(source)
            potential = np.zeros(n) if initial is None else initial
        else:
            potential = np.asarray(potential, dtype=np.float64).copy()
        src_label, dst_label = labels if labels is not None else (source, sink)
        stats = KernelStats()
        shipped = 0
        while shipped < flow_value:
            dist, pred = self.shortest_paths(source, sink, potential, stats)
            if not np.isfinite(dist[sink]):
                if shipped == 0:
                    raise InfeasibleFlowError(
                        f"sink {dst_label!r} unreachable from "
                        f"source {src_label!r}"
                    )
                raise InfeasibleFlowError(
                    f"only {shipped} of {flow_value} flow units fit "
                    f"from {src_label!r} to {dst_label!r}"
                )
            # Bottleneck along the predecessor path (short python walk).
            path: list[int] = []
            v = sink
            bottleneck = flow_value - shipped
            while v != source:
                rid = int(pred[v])
                path.append(rid)
                cap = int(self.res_cap[rid])
                if cap < bottleneck:
                    bottleneck = cap
                v = int(self.res_tail[rid])
            rids = np.asarray(path, dtype=np.int64)
            self._push(rids, bottleneck)
            shipped += bottleneck
            stats.paths += 1
            # Fold the exact distances into the potentials: reduced costs
            # become non-negative again for the next round.
            reached = np.isfinite(dist)
            finite_pot = np.isfinite(potential)
            update = reached & finite_pot
            potential[update] += dist[update]
            stats.potential_updates += int(update.sum())
            potential[finite_pot & ~reached] = _INF
        return self.flows(), potential, stats

    # ------------------------------------------------------------------
    # incremental re-solve (warm start, cost-only perturbations)
    # ------------------------------------------------------------------
    def reoptimize(
        self, potential: np.ndarray, stats: KernelStats | None = None
    ) -> tuple[np.ndarray, KernelStats]:
        """Re-optimise the *current* residual flow after a cost change.

        The loaded flow (see :meth:`load_flows`) stays feasible under any
        cost-only perturbation — capacities, lower bounds and the shipped
        value are untouched — so by Klein's optimality condition it is
        optimal again as soon as its residual network has no negative
        cycle.  This cancels negative reduced-cost cycles (vectorized
        Bellman-Ford sweeps seeded at zero, i.e. a virtual super-source)
        until the converged pass itself *is* the optimality proof.

        Args:
            potential: Previous potentials; non-finite entries are
                treated as zero.  Near-valid potentials make most arcs'
                reduced costs non-negative, so sweeps converge in a few
                passes proportional to the perturbation's reach.
            stats: Optional counters to update in place.

        Returns:
            ``(flows, potential, stats)`` — the re-optimised per-arc
            flows and refreshed potentials: the converged Bellman-Ford
            distances ``d`` satisfy ``d[v] <= d[u] + rc(u, v)`` on every
            active residual arc, so ``potential + d`` certifies the new
            optimum (THEORY.md §7) and seeds the next re-solve.

        Raises:
            GraphError: If cancellation fails to converge (only possible
                on inputs whose costs admit no optimum, e.g. a negative
                cycle of infinite capacity — impossible here since all
                capacities are finite).
        """
        n = self.num_nodes
        stats = stats if stats is not None else KernelStats()
        pot = np.where(np.isfinite(potential), potential, 0.0)
        max_cancels = 2 * self.num_arcs + 8
        # Costs and potentials never change inside a re-solve, only the
        # capacity pattern does — so the order-space reduced costs are
        # computed once and shared by every round below.
        w = self._o_cost + pot[self._o_tail] - pot[self._o_head]
        neg_cost = w < -EPS
        indptr = self.csr.indptr
        order = self.csr.order
        fmask = np.zeros(n, dtype=bool)
        while True:  # one round per batch of cancelled cycles
            dist = np.zeros(n)
            pred = np.full(n, -1, dtype=np.int64)
            # Seeding every node at distance zero (a virtual super-source)
            # means only strictly negative active arcs can improve first;
            # later passes only need the out-arcs of nodes whose distance
            # just dropped, exactly like the label-correcting fallback.
            neg = np.nonzero(neg_cost & (self._o_cap > 0))[0]
            stats.bf_passes += 1
            stats.relaxations += int(neg.size)
            if neg.size == 0:
                return self.flows(), pot + dist, stats
            v = self._o_head[neg]
            nd = w[neg]
            np.minimum.at(dist, v, nd)
            win = nd <= dist[v]
            winners = v[win]
            pred[winners] = order[neg[win]]
            fmask[winners] = True
            frontier = np.nonzero(fmask)[0]
            fmask[frontier] = False
            converged = False
            cancelled = False
            for sweep in range(n + 2):
                # A cycle in the predecessor graph is always a negative
                # reduced-cost cycle (each pred arc was a strict
                # improvement when assigned, so the cycle's weights sum
                # below zero).  Checking the pred graph every few passes
                # finds cycles in ~cycle-length passes instead of burning
                # an ``n + 1``-pass detection budget per cancellation.
                if not frontier.size or sweep % 4 == 3:
                    cycles = self._pred_cycles(pred)
                    if cycles:
                        # Node-disjoint cycles use distinct pred arcs,
                        # and a push only *raises* the partner arcs'
                        # capacity, so every cycle found can be cancelled
                        # in one go.
                        for rids in cycles:
                            bottleneck = int(self.res_cap[rids].min())
                            self._push(rids, bottleneck)
                            stats.cancellations += 1
                        cancelled = True
                        break
                if not frontier.size:
                    converged = True
                    break
                stats.bf_passes += 1
                starts = indptr[frontier]
                degs = indptr[frontier + 1] - starts
                total = int(degs.sum())
                if total == 0:
                    converged = True
                    break
                run_starts = np.cumsum(degs) - degs
                pos = np.repeat(starts - run_starts, degs) + np.arange(total)
                u = np.repeat(frontier, degs)
                live = self._o_cap[pos] > 0
                pos = pos[live]
                u = u[live]
                v = self._o_head[pos]
                nd = dist[u] + w[pos]
                better = nd < dist[v] - EPS
                stats.relaxations += int(pos.size)
                v2 = v[better]
                nd2 = nd[better]
                p2 = pos[better]
                np.minimum.at(dist, v2, nd2)
                win = nd2 <= dist[v2]
                winners = v2[win]
                pred[winners] = order[p2[win]]
                fmask[winners] = True
                frontier = np.nonzero(fmask)[0]
                fmask[frontier] = False
            if converged:
                return self.flows(), pot + dist, stats
            if not cancelled or stats.cancellations > max_cancels:
                raise GraphError(
                    "incremental re-solve failed to converge "
                    "(cycle cancellation bound exceeded)"
                )

    def _pred_cycles(self, pred: np.ndarray) -> list[np.ndarray]:
        """Extract the node-disjoint cycles of a predecessor-arc forest.

        ``pred[v]`` is the residual arc id currently entering *v* (or
        ``-1``).  Every node has at most one such arc, so the "follow your
        predecessor's tail" graph is functional: iteratively peeling
        nodes that nobody points at (or whose successor was peeled)
        leaves exactly the nodes lying on cycles, and each surviving
        cycle's arcs are the ``pred`` entries of its nodes.
        """
        n = self.num_nodes
        alive = pred >= 0
        if not alive.any():
            return []
        succ = np.where(alive, self.res_tail[np.where(alive, pred, 0)], 0)
        while True:
            ok = alive & alive[succ]
            indeg = np.bincount(succ[ok], minlength=n)
            new_alive = ok & (indeg > 0)
            if new_alive.sum() == alive.sum():
                break
            alive = new_alive
            if not alive.any():
                return []
        cycles: list[np.ndarray] = []
        seen = np.zeros(n, dtype=bool)
        for start in np.nonzero(alive)[0]:
            vtx = int(start)
            if seen[vtx]:
                continue
            rids: list[int] = []
            while not seen[vtx]:
                seen[vtx] = True
                rids.append(int(pred[vtx]))
                vtx = int(succ[vtx])
            cycles.append(np.asarray(rids, dtype=np.int64))
        return cycles
