"""Minimum-cost flow with arc lower bounds.

The split-lifetime extension (paper section 5.2) forces certain variable
segments into the register file by placing a lower bound of 1 on their flow
arcs.  This module reduces the lower-bounded fixed-value problem to a plain
minimum-cost flow via the standard excess/deficit transformation:

* every arc ``u -> v`` with lower bound ``l`` pre-ships ``l`` units, leaving
  residual capacity ``capacity - l`` and creating an excess of ``l`` at ``v``
  and a deficit of ``l`` at ``u``;
* the fixed source→sink value ``F`` is modelled as a virtual ``t -> s`` arc
  with ``lower == capacity == F``, i.e. pure excess at ``s`` and deficit at
  ``t``;
* a super-source feeds all excesses and a super-sink drains all deficits;
  shipping the total excess through the transformed network at minimum cost
  yields (after adding the lower bounds back) a minimum-cost feasible flow of
  the original problem.

Because the transformation only *removes* the ``t -> s`` arc (its residual
capacity is zero) and adds arcs incident to the fresh super terminals, an
acyclic input network stays acyclic, so the successive-shortest-path solver
remains exact despite negative arc costs.

The transformation is exposed as :func:`transform_lower_bounds` so that
independent solvers (e.g. the cycle-cancelling cross-check used by
:mod:`repro.verify.differential`) can be run on the very same transformed
instance and mapped back with :meth:`LowerBoundTransform.recover`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.exceptions import InfeasibleFlowError
from repro.flow.graph import FlowNetwork, FlowResult
from repro.flow.ssp import solve_min_cost_flow
from repro.flow.warm_start import WarmStartCache, solve_warm

__all__ = [
    "LowerBoundTransform",
    "transform_lower_bounds",
    "solve_with_lower_bounds",
    "solve",
]

_SUPER_SOURCE = ("__repro_super__", "source")
_SUPER_SINK = ("__repro_super__", "sink")


@dataclass(frozen=True)
class LowerBoundTransform:
    """The excess/deficit reduction of one lower-bounded instance.

    Attributes:
        original: The lower-bounded input network.
        source / sink: Terminals of the original fixed-value problem.
        flow_value: The fixed source→sink value of the original problem.
        network: The transformed network (no lower bounds; original arcs
            carry their original index in ``data``).
        super_source / super_sink: Terminals of the transformed problem.
        demand: Flow value the transformed problem must ship (the total
            excess); shipping less means the original bounds are
            infeasible.
    """

    original: FlowNetwork
    source: Hashable
    sink: Hashable
    flow_value: int
    network: FlowNetwork
    super_source: Hashable
    super_sink: Hashable
    demand: int

    def recover(self, inner: FlowResult) -> FlowResult:
        """Map a solution of the transformed problem back to the original.

        Args:
            inner: A flow of :attr:`demand` units on :attr:`network`.

        Returns:
            A :class:`FlowResult` over :attr:`original` with the lower
            bounds added back in.

        Raises:
            InfeasibleFlowError: If the recovered flow does not ship
                :attr:`flow_value` units (the bounds are unsatisfiable).
        """
        flows = [0] * self.original.num_arcs
        for t_arc in self.network.arcs:
            if isinstance(t_arc.data, int):
                flows[t_arc.data] = inner.flows[t_arc.index]
        for arc in self.original.arcs:
            flows[arc.index] += arc.lower
        result = FlowResult(self.original, flows, self.flow_value)
        _check_value(
            result, self.original, self.source, self.sink, self.flow_value
        )
        return result


def transform_lower_bounds(
    network: FlowNetwork,
    source: Hashable,
    sink: Hashable,
    flow_value: int,
) -> LowerBoundTransform:
    """Build the excess/deficit reduction of a lower-bounded instance.

    Args:
        network: Network whose arcs may carry lower bounds.
        source: Source node of the fixed-value problem.
        sink: Sink node of the fixed-value problem.
        flow_value: Exact source→sink flow value.

    Returns:
        The :class:`LowerBoundTransform` describing the equivalent
        plain minimum-cost flow problem.
    """
    excess: dict[Hashable, int] = {}
    transformed = FlowNetwork()
    for node in network.nodes:
        transformed.add_node(node)
    for arc in network.arcs:
        transformed.add_arc(
            arc.tail,
            arc.head,
            capacity=arc.capacity - arc.lower,
            cost=arc.cost,
            data=arc.index,
        )
        if arc.lower:
            excess[arc.head] = excess.get(arc.head, 0) + arc.lower
            excess[arc.tail] = excess.get(arc.tail, 0) - arc.lower
    # Virtual t -> s arc carrying exactly flow_value units.
    excess[source] = excess.get(source, 0) + flow_value
    excess[sink] = excess.get(sink, 0) - flow_value

    transformed.add_node(_SUPER_SOURCE)
    transformed.add_node(_SUPER_SINK)
    demand = 0
    for node, value in excess.items():
        if value > 0:
            transformed.add_arc(_SUPER_SOURCE, node, capacity=value, cost=0.0)
            demand += value
        elif value < 0:
            transformed.add_arc(node, _SUPER_SINK, capacity=-value, cost=0.0)
    return LowerBoundTransform(
        original=network,
        source=source,
        sink=sink,
        flow_value=flow_value,
        network=transformed,
        super_source=_SUPER_SOURCE,
        super_sink=_SUPER_SINK,
        demand=demand,
    )


def solve_with_lower_bounds(
    network: FlowNetwork,
    source: Hashable,
    sink: Hashable,
    flow_value: int,
    warm_cache: WarmStartCache | None = None,
) -> FlowResult:
    """Minimum-cost flow of exactly *flow_value* units honouring lower bounds.

    Args:
        network: Network whose arcs may carry lower bounds.
        source: Source node.
        sink: Sink node.
        flow_value: Exact source→sink flow value.
        warm_cache: Optional :class:`~repro.flow.warm_start.WarmStartCache`
            consulted for replay/incremental re-solves.  A lower-bounded
            instance is cached under its *transformed* network's topology
            key: a cost-only perturbation of the original induces a
            cost-only perturbation of the transform (the fresh super
            arcs always cost zero), so warm starts stay sound.

    Returns:
        A :class:`FlowResult` over the *original* network (lower bounds
        already added back into the reported flows).

    Raises:
        InfeasibleFlowError: If no feasible flow meets the bounds and value.
    """
    if not network.has_lower_bounds():
        if warm_cache is not None:
            return solve_warm(network, source, sink, flow_value, warm_cache)
        return solve_min_cost_flow(network, source, sink, flow_value)
    transform = transform_lower_bounds(network, source, sink, flow_value)
    if warm_cache is not None:
        inner = solve_warm(
            transform.network,
            transform.super_source,
            transform.super_sink,
            transform.demand,
            warm_cache,
        )
    else:
        inner = solve_min_cost_flow(
            transform.network,
            transform.super_source,
            transform.super_sink,
            transform.demand,
        )
    return transform.recover(inner)


def _check_value(
    result: FlowResult,
    network: FlowNetwork,
    source: Hashable,
    sink: Hashable,
    flow_value: int,
) -> None:
    """Sanity-check the recovered flow actually ships *flow_value* units."""
    net_out = result.outflow(source) - result.inflow(source)
    net_in = result.inflow(sink) - result.outflow(sink)
    if net_out != flow_value or net_in != flow_value:
        raise InfeasibleFlowError(
            f"recovered flow ships {net_out}/{net_in} units, "
            f"expected {flow_value} (bounds make the problem infeasible)"
        )


def solve(
    network: FlowNetwork,
    source: Hashable,
    sink: Hashable,
    flow_value: int,
    warm_cache: WarmStartCache | None = None,
) -> FlowResult:
    """Dispatch to the plain or lower-bounded solver as appropriate.

    This is the entry point the allocator uses: it transparently supports
    networks with and without lower bounds, and threads an optional
    warm-start cache down to the kernel.
    """
    return solve_with_lower_bounds(
        network, source, sink, flow_value, warm_cache=warm_cache
    )
